"""MetricSpec: spec-driven construction, serialisation, validation."""

import pickle

import pytest

from repro.core.config import FewKConfig, QLOVEConfig
from repro.core.qlove import QLOVEPolicy
from repro.service import MetricSpec
from repro.sketches.registry import available_policies
from repro.streaming.windows import CountWindow

WINDOW = {"size": 240, "period": 60}


def spec_dict(**overrides):
    base = {"name": "rtt", "quantiles": [0.5, 0.99], "window": dict(WINDOW)}
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# Construction through the registry
# ----------------------------------------------------------------------
def test_every_registered_policy_is_constructible_without_imports():
    for name in available_policies():
        spec = MetricSpec.from_dict(spec_dict(policy=name))
        policy = spec.build_policy()
        assert policy.name == name
        assert policy.phis == (0.5, 0.99)
        assert policy.window == CountWindow(size=240, period=60)


def test_quantiles_are_canonicalised_sorted_unique():
    spec = MetricSpec(name="m", quantiles=[0.99, 0.5, 0.99], window=WINDOW)
    assert spec.quantiles == (0.5, 0.99)


def test_window_accepts_prebuilt_countwindow():
    window = CountWindow(size=240, period=60)
    assert MetricSpec(name="m", quantiles=[0.5], window=window).window is window


def test_qlove_flat_params_resolve_to_config():
    spec = MetricSpec.from_dict(
        spec_dict(policy_params={
            "quantize_digits": 2,
            "backend": "tree",
            "fewk": {"samplek_fraction": 0.05, "burst_detection": False},
        })
    )
    policy = spec.build_policy()
    assert isinstance(policy, QLOVEPolicy)
    assert policy.config == QLOVEConfig(
        quantize_digits=2,
        backend="tree",
        fewk=FewKConfig(samplek_fraction=0.05, burst_detection=False),
    )


def test_qlove_fewk_true_enables_defaults():
    spec = MetricSpec.from_dict(spec_dict(policy_params={"fewk": True}))
    assert spec.build_policy().config.fewk == FewKConfig()


def test_qlove_config_object_accepted():
    config = QLOVEConfig(quantize_digits=2)
    spec = MetricSpec(
        name="m", quantiles=[0.5], window=WINDOW, policy_params={"config": config}
    )
    assert spec.build_policy().config is config


def test_non_qlove_params_forwarded():
    spec = MetricSpec.from_dict(
        spec_dict(policy="cmqs", policy_params={"epsilon": 0.05})
    )
    assert spec.build_policy().epsilon == 0.05
    spec = MetricSpec.from_dict(spec_dict(policy="moment", policy_params={"k": 8}))
    assert spec.build_policy().name == "moment"


def test_policy_factory_builds_fresh_instances_and_pickles():
    spec = MetricSpec.from_dict(spec_dict(policy="exact"))
    factory = spec.policy_factory()
    a, b = factory(), factory()
    assert a is not b and type(a) is type(b)
    rebuilt = pickle.loads(pickle.dumps(factory))
    assert rebuilt().name == "exact"


# ----------------------------------------------------------------------
# Serialisation round trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "params, policy",
    [
        ({}, "qlove"),
        ({"quantize_digits": 2, "fewk": {"topk_fraction": 0.5}}, "qlove"),
        ({"backend": "dict"}, "exact"),
        ({"epsilon": 0.04}, "am"),
        ({"k": 6, "method": "quadrature"}, "moment"),
    ],
)
def test_to_dict_from_dict_round_trip(params, policy):
    spec = MetricSpec.from_dict(spec_dict(policy=policy, policy_params=params))
    clone = MetricSpec.from_dict(spec.to_dict())
    assert clone.name == spec.name
    assert clone.quantiles == spec.quantiles
    assert clone.window == spec.window
    assert clone.policy == spec.policy
    assert clone.resolved_params() == spec.resolved_params()


def test_to_dict_is_plain_json():
    import json

    spec = MetricSpec.from_dict(
        spec_dict(policy_params={"fewk": {"samplek_fraction": 0.01}})
    )
    json.dumps(spec.to_dict())  # must not raise


# ----------------------------------------------------------------------
# Validation: every error is actionable and raised at construction
# ----------------------------------------------------------------------
def test_empty_quantiles_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        MetricSpec(name="m", quantiles=[], window=WINDOW)


@pytest.mark.parametrize("phi", [0.0, 1.0, -0.1, 1.5, 99.0])
def test_out_of_range_quantile_rejected(phi):
    with pytest.raises(ValueError, match=r"outside \(0, 1\)"):
        MetricSpec(name="m", quantiles=[phi], window=WINDOW)


def test_quantiles_must_be_a_sequence():
    with pytest.raises(ValueError, match="sequence"):
        MetricSpec(name="m", quantiles=0.5, window=WINDOW)


def test_period_not_dividing_size_rejected():
    with pytest.raises(ValueError, match="multiple of the period"):
        MetricSpec(name="m", quantiles=[0.5], window={"size": 100, "period": 33})


def test_period_larger_than_size_rejected():
    with pytest.raises(ValueError, match="at least the period"):
        MetricSpec(name="m", quantiles=[0.5], window={"size": 10, "period": 20})


def test_window_missing_keys_rejected():
    with pytest.raises(ValueError, match="missing"):
        MetricSpec(name="m", quantiles=[0.5], window={"size": 100})


def test_window_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown window key"):
        MetricSpec(
            name="m", quantiles=[0.5], window={"size": 100, "period": 50, "slide": 1}
        )


def test_unknown_policy_rejected_with_available_list():
    with pytest.raises(ValueError, match="available.*exact"):
        MetricSpec(name="m", quantiles=[0.5], window=WINDOW, policy="tdigest")


def test_empty_name_rejected():
    with pytest.raises(ValueError, match="non-empty string"):
        MetricSpec(name="", quantiles=[0.5], window=WINDOW)


def test_policy_params_must_be_mapping():
    with pytest.raises(ValueError, match="mapping"):
        MetricSpec(name="m", quantiles=[0.5], window=WINDOW, policy_params=[1])


def test_unknown_qlove_param_rejected():
    with pytest.raises(ValueError, match="unknown QLOVE parameter"):
        MetricSpec(
            name="m", quantiles=[0.5], window=WINDOW, policy_params={"epsilon": 0.1}
        )


def test_qlove_config_and_flat_keys_conflict():
    with pytest.raises(ValueError, match="not both"):
        MetricSpec(
            name="m",
            quantiles=[0.5],
            window=WINDOW,
            policy_params={"config": QLOVEConfig(), "backend": "dict"},
        )


def test_bad_fewk_keys_rejected():
    with pytest.raises(ValueError, match="few-k parameter"):
        MetricSpec(
            name="m",
            quantiles=[0.5],
            window=WINDOW,
            policy_params={"fewk": {"samplek": 0.1}},
        )


def test_unknown_param_for_non_qlove_policy_rejected():
    with pytest.raises(ValueError, match="does not accept"):
        MetricSpec(
            name="m",
            quantiles=[0.5],
            window=WINDOW,
            policy="exact",
            policy_params={"epsilon": 0.1},
        )


def test_from_dict_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown metric-spec key"):
        MetricSpec.from_dict(spec_dict(windoww=WINDOW))


def test_from_dict_missing_required_keys_rejected():
    with pytest.raises(ValueError, match="missing required"):
        MetricSpec.from_dict({"name": "m"})
