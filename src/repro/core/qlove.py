"""The QLOVE policy: two-level quantile approximation with few-k merging.

This assembles the pieces of Sections 3 and 4 behind the shared
:class:`~repro.sketches.base.QuantilePolicy` interface:

- per element: quantize and accumulate into the Level-1 frequency map;
- per period: seal the sub-window into a summary (exact sub-window
  quantiles + few-k tails), feed Level 2 and the burst detectors;
- per window slide: deaccumulate one whole summary (two subtractions per
  quantile — the cheap expiry that lets QLOVE scale);
- per query: Level-2 averages, overridden per high quantile by top-k or
  sample-k merging when statistical inefficiency or bursts call for it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence

from repro import serde
from repro.core.compression import Quantizer
from repro.core.config import QLOVEConfig
from repro.core.fewk import SOURCE_LEVEL2, FewKMerger
from repro.core.level2 import Level2Aggregator
from repro.core.summary import SubWindowBuilder, SubWindowSummary
from repro.sketches.base import QuantilePolicy
from repro.streaming.windows import CountWindow


class QLOVEPolicy(QuantilePolicy):
    """Approximate quantiles with low value error (the paper's algorithm)."""

    name = "qlove"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        config: Optional[QLOVEConfig] = None,
    ) -> None:
        super().__init__(phis, window)
        self.config = config if config is not None else QLOVEConfig()
        quantizer = Quantizer(self.config.quantize_digits)
        self._builder = SubWindowBuilder(
            self.phis, window, quantizer, self.config.fewk, self.config.backend
        )
        self._level2 = Level2Aggregator(self.phis)
        self._summaries: Deque[SubWindowSummary] = deque()
        self._stored_space = 0
        self._mergers: Dict[float, FewKMerger] = {}
        if self.config.fewk is not None:
            for phi in self.phis:
                merger = FewKMerger(phi, window, self.config.fewk)
                if merger.relevant:
                    self._mergers[phi] = merger
        # Hot-path aliases: the engine calls accumulate once per element
        # (or accumulate_batch once per chunk), so skip one frame of
        # indirection (the methods below stay for readability and
        # subclassing).
        self.accumulate = self._builder.add  # type: ignore[method-assign]
        self.accumulate_batch = self._builder.extend  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def accumulate(self, value: float) -> None:
        self._builder.add(value)

    def accumulate_batch(self, values) -> None:
        self._builder.extend(values)

    def seal_subwindow(self) -> None:
        self.record_space()
        summary = self._builder.seal()
        self._summaries.append(summary)
        self._stored_space += summary.space_variables()
        self._level2.accumulate(summary)
        for merger in self._mergers.values():
            merger.on_seal(summary)

    def expire_subwindow(self) -> None:
        if not self._summaries:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        summary = self._summaries.popleft()
        self._stored_space -= summary.space_variables()
        self._level2.deaccumulate(summary)
        for merger in self._mergers.values():
            merger.on_expire()

    def merge(self, other: "QLOVEPolicy") -> None:
        """Fold another QLOVE policy's state into this one.

        Sealed summaries append (Level 2 composes by addition, few-k
        merging pools the union of retained tails — the Section 7
        distributed story); the in-flight Level-1 frequency maps merge as
        multisets, which keeps sharded ingestion bit-identical to a
        single instance regardless of how elements were partitioned.
        """
        self._require_compatible(other)
        if other.config != self.config:
            raise ValueError("merge requires the same QLOVE configuration")
        for summary in other._summaries:
            self._summaries.append(summary)
            self._stored_space += summary.space_variables()
            self._level2.accumulate(summary)
        for phi, merger in self._mergers.items():
            merger.merge_from(other._mergers[phi])
        self._builder.merge_from(other._builder)

    def composable_over_time(self) -> bool:
        """Composable unless a stateful burst detector is active.

        The default configuration (no few-k merging) composes bit-exactly:
        merging per-period deltas re-accumulates each summary into Level 2
        in time order — the same floating-point addition order a
        sequential run performs.  With few-k sample-k *and* burst
        detection enabled, each delta runs a fresh
        :class:`~repro.core.burst.BurstDetector` whose EWMA baseline never
        saw earlier periods, so burst flags (and hence tail estimates) can
        diverge from a sequential detector's.
        """
        return not any(
            merger._detector is not None for merger in self._mergers.values()
        )

    def reset(self) -> None:
        self._builder.reset()
        self._level2 = Level2Aggregator(self.phis)
        self._summaries.clear()
        self._stored_space = 0
        for merger in self._mergers.values():
            merger.reset()
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Configuration plus every stateful layer, JSON-safe.

        Level-2 sums are persisted verbatim (not recomputed from the
        summaries), so the restored averages — accumulated in the same
        order — stay bit-identical to the original run's.
        """
        state = self._state_header()
        state["config"] = self.config.to_dict()
        state["builder_map"] = self._builder.map_state()
        state["level2"] = self._level2.to_state()
        state["summaries"] = [summary.to_state() for summary in self._summaries]
        state["mergers"] = serde.pairs(
            {phi: merger.to_state() for phi, merger in self._mergers.items()}
        )
        return state

    @classmethod
    def from_state(cls, state: dict) -> "QLOVEPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state,
            ("config", "builder_map", "level2", "summaries", "mergers"),
            "qlove policy",
        )
        try:
            config = QLOVEConfig.from_dict(state["config"])
        except (TypeError, ValueError) as exc:
            raise serde.StateError(
                f"qlove policy: cannot rebuild QLOVEConfig from state: {exc}"
            ) from None
        policy = cls(phis, window, config=config)
        policy._builder.restore_map(state["builder_map"])
        policy._level2 = Level2Aggregator.from_state(state["level2"])
        policy._summaries = deque(
            SubWindowSummary.from_state(entry) for entry in state["summaries"]
        )
        policy._stored_space = sum(
            summary.space_variables() for summary in policy._summaries
        )
        merger_states = serde.mapping_from_pairs(state["mergers"])
        if set(merger_states) != set(policy._mergers):
            raise serde.StateError(
                "qlove policy: few-k merger set in state "
                f"({sorted(merger_states)}) does not match the configured "
                f"quantile plan ({sorted(policy._mergers)}); the state was "
                "written under a different config (spec/state mismatch)"
            )
        for phi, merger in policy._mergers.items():
            merger.restore_state(merger_states[phi])
        policy._restore_header(state)
        return policy

    def query(self) -> Dict[float, float]:
        if not self._summaries:
            raise ValueError("query() before any sealed sub-window")
        results = self._level2.results()
        summaries = tuple(self._summaries)
        for phi, merger in self._mergers.items():
            results[phi] = merger.estimate(summaries, results[phi])
        return results

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def result_sources(self) -> Dict[float, str]:
        """Provenance of the last answer per quantile
        (``level2`` / ``topk`` / ``samplek``)."""
        sources = {phi: SOURCE_LEVEL2 for phi in self.phis}
        for phi, merger in self._mergers.items():
            sources[phi] = merger.last_source
        return sources

    def live_summaries(self) -> int:
        """Number of sealed sub-windows currently aggregated."""
        return len(self._summaries)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def space_variables(self) -> int:
        # _stored_space is maintained incrementally: summing over all live
        # summaries here would add an O(N/P) instrumentation cost per seal,
        # distorting the scalability experiments.
        return (
            self._stored_space
            + self._builder.space_variables()
            + self._level2.space_variables()
        )

    @classmethod
    def analytical_space(cls, window: CountWindow, **params: float) -> Optional[int]:
        """l (N / P) + O(P): summaries plus the in-flight tree (Section 3.2)."""
        l = int(params.get("num_phis", 4))
        return l * window.subwindow_count + 2 * window.period
