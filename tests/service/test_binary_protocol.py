"""The length-prefixed binary wire: framing, codecs, negotiation.

Unit coverage for ``repro.service.binary`` — header round-trips, raw
float64 observe payloads carrying every IEEE-754 bit pattern, the
recoverable oversized-frame semantics — plus live-server negotiation:
the ``hello`` handshake, JSON fallback for clients that never (or
unsuccessfully) negotiate, and heterogeneous JSON + binary connections
sharing one server.
"""

import io
import math
import socket
import struct

import numpy as np
import pytest

from repro.service import Monitor, TelemetryClient, TelemetryServer, binary
from repro.service.protocol import (
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    encode_message,
    recv_message,
)

SPEC = {
    "name": "rtt",
    "quantiles": [0.5, 0.99],
    "window": {"size": 2000, "period": 500},
    "policy": "qlove",
}


def make_monitor() -> Monitor:
    monitor = Monitor()
    monitor.register(SPEC)
    return monitor


@pytest.fixture
def server():
    with TelemetryServer(make_monitor()) as srv:
        yield srv


class TestFraming:
    @pytest.mark.parametrize(
        "opcode",
        [binary.OP_JSON, binary.OP_OBSERVE, binary.OP_ACK, binary.OP_ERROR,
         binary.OP_STATE],
    )
    def test_frame_round_trip(self, opcode):
        payload = b"\x00\x01payload\xff"
        stream = io.BytesIO(binary.encode_frame(opcode, payload))
        assert binary.recv_frame(stream) == (opcode, payload)

    def test_empty_payload_round_trip(self):
        stream = io.BytesIO(binary.encode_frame(binary.OP_JSON, b""))
        assert binary.recv_frame(stream) == (binary.OP_JSON, b"")

    def test_multiple_frames_read_in_order(self):
        stream = io.BytesIO(
            binary.encode_frame(binary.OP_ERROR, b"one")
            + binary.encode_frame(binary.OP_ERROR, b"two")
        )
        assert binary.recv_frame(stream) == (binary.OP_ERROR, b"one")
        assert binary.recv_frame(stream) == (binary.OP_ERROR, b"two")
        assert binary.recv_frame(stream) is None

    def test_clean_eof_returns_none(self):
        assert binary.recv_frame(io.BytesIO(b"")) is None

    def test_eof_mid_header_raises_connection_closed(self):
        with pytest.raises(ConnectionClosed, match="mid-frame header"):
            binary.recv_frame(io.BytesIO(b"QW\x01"))

    def test_eof_mid_payload_raises_connection_closed(self):
        frame = binary.encode_frame(binary.OP_ERROR, b"truncated away")
        with pytest.raises(ConnectionClosed, match="mid-frame payload"):
            binary.recv_frame(io.BytesIO(frame[:-4]))

    def test_bad_magic_raises_protocol_error(self):
        # A JSON peer that never negotiated is the expected offender.
        with pytest.raises(ProtocolError, match="bad frame magic"):
            binary.recv_frame(io.BytesIO(b'{"op":"ping"}\n'))

    def test_unknown_version_raises_protocol_error(self):
        frame = binary._HEADER.pack(binary.MAGIC, 99, binary.OP_JSON, 0)
        with pytest.raises(ProtocolError, match="version 99"):
            binary.recv_frame(io.BytesIO(frame))

    def test_unknown_opcode_raises_protocol_error(self):
        frame = binary._HEADER.pack(binary.MAGIC, binary.BINARY_VERSION, 200, 0)
        with pytest.raises(ProtocolError, match="opcode 200"):
            binary.recv_frame(io.BytesIO(frame))

    def test_oversized_frame_is_drained_and_recoverable(self, monkeypatch):
        """The length prefix lets the receiver skip an oversized payload
        and keep the connection — unlike the JSON wire, which must close."""
        monkeypatch.setattr(binary, "MAX_MESSAGE_BYTES", 64)
        oversized = binary._HEADER.pack(
            binary.MAGIC, binary.BINARY_VERSION, binary.OP_JSON, 200
        ) + b"x" * 200
        follower = binary.encode_frame(binary.OP_ERROR, b"still in sync")
        stream = io.BytesIO(oversized + follower)
        with pytest.raises(FrameTooLarge, match="exceeds 64") as excinfo:
            binary.recv_frame(stream)
        assert excinfo.value.recoverable is True
        # The stream re-synchronised: the next frame parses cleanly.
        assert binary.recv_frame(stream) == (binary.OP_ERROR, b"still in sync")

    def test_oversized_frame_truncated_mid_drain_is_connection_closed(
        self, monkeypatch
    ):
        monkeypatch.setattr(binary, "MAX_MESSAGE_BYTES", 64)
        header = binary._HEADER.pack(
            binary.MAGIC, binary.BINARY_VERSION, binary.OP_JSON, 500
        )
        with pytest.raises(ConnectionClosed, match="mid-oversized-frame"):
            binary.recv_frame(io.BytesIO(header + b"x" * 100))

    def test_send_side_cap_enforced(self, monkeypatch):
        monkeypatch.setattr(binary, "MAX_MESSAGE_BYTES", 64)
        with pytest.raises(FrameTooLarge, match="smaller blocks"):
            binary.encode_frame(binary.OP_JSON, b"x" * 65)


class TestObserveCodec:
    def test_full_round_trip(self):
        values = np.array([1.5, -2.25, 1e-300, 2.0**53 - 1])
        frame = binary.encode_observe(
            "rtt", values, seq=7, labels={"host": "a", "region": "eu"}
        )
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_OBSERVE
        request = binary.decode_observe(payload)
        assert request["op"] == "observe"
        assert request["metric"] == "rtt"
        assert request["seq"] == 7
        assert request["labels"] == {"host": "a", "region": "eu"}
        assert request["values"].dtype == binary.WIRE_DTYPE
        assert request["values"].tobytes() == values.tobytes()

    def test_minimal_round_trip_without_seq_or_labels(self):
        request = binary.decode_observe(
            binary.recv_frame(
                io.BytesIO(binary.encode_observe("m", [3.0]))
            )[1]
        )
        assert request == {
            "op": "observe",
            "metric": "m",
            "values": request["values"],
        }
        assert request["values"].tolist() == [3.0]

    def test_empty_block_round_trips(self):
        request = binary.decode_observe(
            binary.recv_frame(
                io.BytesIO(binary.encode_observe("m", np.empty(0), seq=4))
            )[1]
        )
        assert request["seq"] == 4
        assert request["values"].size == 0

    def test_non_finite_and_signed_zero_survive_bit_for_bit(self):
        """The binary wire's reason to exist for NaN/Inf: IEEE-754
        payloads travel untouched, where JSON has no representation."""
        values = np.array(
            [float("nan"), float("inf"), float("-inf"), -0.0, 5e-324]
        )
        request = binary.decode_observe(
            binary.recv_frame(io.BytesIO(binary.encode_observe("m", values)))[1]
        )
        assert request["values"].tobytes() == values.tobytes()
        assert math.isnan(request["values"][0])
        assert np.signbit(request["values"][3])

    def test_declared_count_must_match_payload(self):
        frame = binary.encode_observe("m", [1.0, 2.0])
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        with pytest.raises(ProtocolError, match="declares"):
            binary.decode_observe(payload[:-8])

    def test_truncated_metric_name_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            binary.decode_observe(b"\x00\xff\xff")

    def test_ack_round_trip(self):
        opcode, payload = binary.recv_frame(
            io.BytesIO(binary.encode_ack(True, 12345))
        )
        assert opcode == binary.OP_ACK
        assert binary.decode_ack(payload) == {
            "ok": True,
            "accepted": True,
            "events": 12345,
        }

    def test_error_round_trip(self):
        opcode, payload = binary.recv_frame(
            io.BytesIO(binary.encode_error("unknown metric 'x'"))
        )
        assert opcode == binary.OP_ERROR
        assert binary.decode_error(payload) == {
            "ok": False,
            "error": "unknown metric 'x'",
        }

    def test_state_round_trip(self):
        state = {"type": "monitor", "version": 2, "metrics": [{"seen": 9}]}
        opcode, payload = binary.recv_frame(
            io.BytesIO(binary.encode_state("merge", state))
        )
        assert opcode == binary.OP_STATE
        assert binary.decode_state(payload) == ("merge", state)


class TestDispatch:
    def test_observe_request_uses_observe_frame(self):
        frame = binary.encode_request(
            {"op": "observe", "metric": "rtt", "values": [1.0], "seq": 0}
        )
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_OBSERVE
        assert binary.decode_request(opcode, payload)["metric"] == "rtt"

    def test_merge_request_uses_state_frame(self):
        frame = binary.encode_request({"op": "merge", "state": {"a": 1}})
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_STATE
        assert binary.decode_request(opcode, payload) == {
            "op": "merge",
            "state": {"a": 1},
        }

    def test_other_requests_ride_json_frames(self):
        frame = binary.encode_request({"op": "snapshot"})
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_JSON
        assert binary.decode_request(opcode, payload) == {"op": "snapshot"}

    def test_observe_response_uses_ack_frame(self):
        frame = binary.encode_response(
            {"ok": True, "accepted": True, "events": 3}, "observe"
        )
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_ACK
        assert binary.decode_response(opcode, payload)["events"] == 3

    def test_error_response_uses_error_frame(self):
        frame = binary.encode_response({"ok": False, "error": "nope"}, "observe")
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_ERROR
        assert binary.decode_response(opcode, payload) == {
            "ok": False,
            "error": "nope",
        }

    def test_state_response_uses_state_frame(self):
        frame = binary.encode_response(
            {"ok": True, "state": {"v": 2}, "drained": True}, "state"
        )
        opcode, payload = binary.recv_frame(io.BytesIO(frame))
        assert opcode == binary.OP_STATE
        assert binary.decode_response(opcode, payload)["state"] == {"v": 2}


class TestNegotiation:
    def test_hello_switches_connection_to_binary(self, server):
        host, port = server.address
        with TelemetryClient(host, port) as client:
            assert client.protocol == "json"
            response = client.hello("binary")
            assert response["protocol"] == "binary"
            assert response["version"] == binary.BINARY_VERSION
            assert client.protocol == "binary"
            # The whole op vocabulary works over the binary framing.
            assert client.ping() == ["rtt"]
            ack = client.observe("rtt", np.arange(2500.0), seq=0)
            assert ack == {"ok": True, "accepted": True, "events": 2500}
            assert client.snapshot()["rtt"] is not None

    def test_protocol_kwarg_negotiates_at_connect(self, server):
        host, port = server.address
        with TelemetryClient(host, port, protocol="binary") as client:
            assert client.protocol == "binary"
            assert client.ping() == ["rtt"]

    def test_unknown_protocol_keeps_connection_on_json(self, server):
        host, port = server.address
        with TelemetryClient(host, port) as client:
            with pytest.raises(Exception, match="unknown protocol"):
                client.hello("msgpack")
            assert client.protocol == "json"
            assert client.ping() == ["rtt"]  # still speaking JSON fine

    def test_unknown_version_keeps_connection_on_json(self, server):
        host, port = server.address
        with TelemetryClient(host, port) as client:
            with pytest.raises(Exception, match="version"):
                client.hello("binary", version=99)
            assert client.protocol == "json"
            assert client.ping() == ["rtt"]

    def test_negotiating_back_to_json_works(self, server):
        host, port = server.address
        with TelemetryClient(host, port, protocol="binary") as client:
            client.hello("json")
            assert client.protocol == "json"
            assert client.ping() == ["rtt"]

    def test_json_and_binary_clients_share_one_server(self, server):
        host, port = server.address
        values = np.linspace(1.0, 900.0, 1200)
        with TelemetryClient(host, port) as text, TelemetryClient(
            host, port, protocol="binary"
        ) as raw:
            text.observe("rtt", values[:600], seq=0)
            raw.observe("rtt", values[600:], seq=1)
            assert text.snapshot() == raw.snapshot()

    def test_oversized_binary_frame_keeps_connection_alive(
        self, server, monkeypatch
    ):
        """Server side of the recoverable-cap semantics: an oversized
        binary frame is answered with an error and the connection keeps
        serving (the JSON wire drops it instead)."""
        monkeypatch.setattr(binary, "MAX_MESSAGE_BYTES", 1024)
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            stream = sock.makefile("rb")
            sock.sendall(encode_message({"op": "hello", "protocol": "binary"}))
            assert recv_message(stream)["ok"] is True
            oversized = binary._HEADER.pack(
                binary.MAGIC, binary.BINARY_VERSION, binary.OP_JSON, 4096
            ) + b"x" * 4096
            sock.sendall(oversized)
            opcode, payload = binary.recv_frame(stream)
            assert opcode == binary.OP_ERROR
            assert "exceeds 1024" in binary.decode_error(payload)["error"]
            # Same connection, next request still answered.
            sock.sendall(binary.encode_request({"op": "ping"}))
            opcode, payload = binary.recv_frame(stream)
            assert binary.decode_response(opcode, payload)["pong"] is True
        finally:
            sock.close()

    def test_json_clients_need_no_negotiation(self, server):
        """The compatibility guarantee: a peer that never sends hello
        keeps speaking JSON, byte-for-byte as before."""
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            stream = sock.makefile("rb")
            sock.sendall(b'{"op":"ping"}\n')
            response = recv_message(stream)
            assert response["ok"] is True and response["pong"] is True
        finally:
            sock.close()


class TestStateOps:
    def test_state_pull_matches_monitor_to_state(self, server):
        host, port = server.address
        with TelemetryClient(host, port, protocol="binary") as client:
            client.observe("rtt", np.arange(700.0), seq=0)
            client.flush()
            pulled = client.pull_state()
        with server._monitor_lock:
            assert pulled == server.monitor.to_state()

    def test_state_identical_across_protocols(self, server):
        host, port = server.address
        with TelemetryClient(host, port) as client:
            client.observe("rtt", np.arange(700.0), seq=0)
        with TelemetryClient(host, port) as text, TelemetryClient(
            host, port, protocol="binary"
        ) as raw:
            assert text.pull_state() == raw.pull_state()

    def test_merge_requires_state_object(self, server):
        from repro.service import ServerError

        host, port = server.address
        with TelemetryClient(host, port) as client:
            with pytest.raises(ServerError, match="'merge' needs 'state'"):
                client.request({"op": "merge"})

    def test_merge_rejects_garbage_state(self, server):
        from repro.service import ServerError

        host, port = server.address
        with TelemetryClient(host, port, protocol="binary") as client:
            with pytest.raises(ServerError, match="bad monitor state"):
                client.push_merge({"type": "nonsense"})

    def test_non_finite_state_needs_the_binary_wire(self):
        """The moment policy's serialized state carries ±inf whenever its
        in-flight sub-window is empty (its min/max sit at their
        identities) — the strict JSON encoder refuses it with a pointer
        at the binary protocol, which ships the same state as an opaque
        frame."""
        monitor = Monitor()
        monitor.register(
            {
                "name": "m",
                "quantiles": [0.5],
                "window": {"size": 1000, "period": 500},
                "policy": "moment",
            }
        )
        # 1500 = 3 whole periods: the in-flight sub-window is empty, so
        # its min/max are +inf/-inf in the serialized state.
        monitor.observe_batch("m", np.arange(1.0, 1501.0))
        with TelemetryServer(monitor) as srv:
            host, port = srv.address
            with TelemetryClient(host, port) as text:
                with pytest.raises(Exception, match="binary"):
                    text.pull_state()
                assert text.ping() == ["m"]  # connection survived
            with TelemetryClient(host, port, protocol="binary") as raw:
                pulled = raw.pull_state()
        assert Monitor.from_state(pulled).snapshot() == monitor.snapshot()

    def test_merge_rejects_unregistered_metrics(self, server):
        from repro.service import ServerError

        other = Monitor()
        other.register(
            {
                "name": "other.metric",
                "quantiles": [0.5],
                "window": {"size": 1000, "period": 500},
                "policy": "exact",
            }
        )
        host, port = server.address
        with TelemetryClient(host, port) as client:
            with pytest.raises(ServerError, match="not registered"):
                client.push_merge(other.to_state())
