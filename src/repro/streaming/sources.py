"""Adapters turning raw values and datasets into event streams.

Telemetry arrives at the engine either as :class:`~repro.streaming.event.Event`
objects (one Python object per measurement) or, on the batched fast path, as
:class:`Chunk` objects wrapping contiguous numpy arrays.  These helpers wrap
numpy arrays, Python iterables and multiple concurrent probes (merged by
timestamp) into event iterators, and slice arrays into chunk streams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.streaming.event import Event


def value_stream(
    values: Iterable[float],
    start: float = 0.0,
    dt: float = 1.0,
    error_code: int = 0,
    source: Optional[str] = None,
) -> Iterator[Event]:
    """Wrap plain values into events with evenly spaced timestamps.

    The default spacing of one time unit per element makes count windows and
    time windows coincide, which simplifies cross-checking the two engines.

    Timestamps are computed as ``start + i * dt`` (not accumulated), so they
    are bit-identical to the arrays :func:`chunk_stream` produces and free of
    repeated-addition rounding drift on long streams.
    """
    for i, value in enumerate(values):
        yield Event(
            timestamp=start + i * dt,
            value=float(value),
            error_code=error_code,
            source=source,
        )


def events_from_values(
    values: Sequence[float],
    timestamps: Optional[Sequence[float]] = None,
    error_codes: Optional[Sequence[int]] = None,
    source: Optional[str] = None,
) -> list[Event]:
    """Materialise an event list from parallel value/timestamp sequences."""
    if timestamps is not None and len(timestamps) != len(values):
        raise ValueError("timestamps must align with values")
    if error_codes is not None and len(error_codes) != len(values):
        raise ValueError("error_codes must align with values")
    events = []
    for i, value in enumerate(values):
        events.append(
            Event(
                timestamp=float(timestamps[i]) if timestamps is not None else float(i),
                value=float(value),
                error_code=int(error_codes[i]) if error_codes is not None else 0,
                source=source,
            )
        )
    return events


def merge_sources(*streams: Iterable[Event]) -> Iterator[Event]:
    """Merge timestamp-ordered event streams into one ordered stream.

    Models a monitoring pipeline ingesting many probes at once ("a large
    stream of data may originate from different sources to be processed by
    a streaming engine", Section 6).  Each input must itself be ordered.
    """
    return heapq.merge(*streams)


def map_values(
    stream: Iterable[Event], transform: Callable[[float], float]
) -> Iterator[Event]:
    """Apply a value transform to every event (e.g. unit conversion)."""
    for event in stream:
        yield event.with_value(transform(event.value))


# ----------------------------------------------------------------------
# Chunked (batched) sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Chunk:
    """A contiguous run of stream elements stored as numpy arrays.

    The batched ingestion path moves data through the engine one chunk at a
    time instead of one :class:`Event` at a time, which removes the dominant
    cost of the pure-Python hot loop (object construction and per-element
    method dispatch).  ``timestamps`` and ``error_codes`` are optional:
    count-windowed queries never need timestamps, time-windowed queries do.

    Arrays are held by reference (chunk slicing produces views), so callers
    must not mutate them after handing a chunk to the engine.
    """

    values: np.ndarray
    timestamps: Optional[np.ndarray] = None
    error_codes: Optional[np.ndarray] = None
    source: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=np.float64)
        )
        if self.values.ndim != 1:
            raise ValueError("chunk values must be a 1-D array")
        for name in ("timestamps", "error_codes"):
            array = getattr(self, name)
            if array is not None:
                array = np.asarray(array)
                if array.shape != self.values.shape:
                    raise ValueError(f"{name} must align with values")
                object.__setattr__(self, name, array)

    def __len__(self) -> int:
        return len(self.values)

    def slice(self, start: int, stop: int) -> "Chunk":
        """Zero-copy sub-chunk covering ``values[start:stop]``."""
        return Chunk(
            values=self.values[start:stop],
            timestamps=None if self.timestamps is None else self.timestamps[start:stop],
            error_codes=None if self.error_codes is None else self.error_codes[start:stop],
            source=self.source,
        )

    def slice_strided(self, start: int, step: int) -> "Chunk":
        """Zero-copy sub-chunk of every ``step``-th element from ``start``.

        The round-robin partitioner uses this to hand shard ``k`` its
        interleaved elements as a strided view, with no copying.
        """
        return Chunk(
            values=self.values[start::step],
            timestamps=None if self.timestamps is None else self.timestamps[start::step],
            error_codes=None if self.error_codes is None else self.error_codes[start::step],
            source=self.source,
        )

    def compress(self, mask: np.ndarray) -> "Chunk":
        """Keep only the elements where ``mask`` is True (vectorised Where)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.values.shape:
            raise ValueError("mask must align with values")
        return Chunk(
            values=self.values[mask],
            timestamps=None if self.timestamps is None else self.timestamps[mask],
            error_codes=None if self.error_codes is None else self.error_codes[mask],
            source=self.source,
        )

    def with_values(self, values: np.ndarray) -> "Chunk":
        """Copy of this chunk carrying projected values (vectorised Select)."""
        return Chunk(
            values=values,
            timestamps=self.timestamps,
            error_codes=self.error_codes,
            source=self.source,
        )

    def events(self, start: float = 0.0, dt: float = 1.0) -> Iterator[Event]:
        """Expand into per-element events (the slow-path fallback).

        When the chunk carries no timestamps, synthetic ones are generated
        from ``start`` with spacing ``dt`` — fine for count windows, which
        ignore them; time-windowed queries must provide real timestamps.
        """
        values = self.values.tolist()
        if self.timestamps is not None:
            timestamps = self.timestamps.tolist()
        else:
            timestamps = [start + i * dt for i in range(len(values))]
        if self.error_codes is not None:
            codes = self.error_codes.tolist()
        else:
            codes = [0] * len(values)
        for timestamp, value, code in zip(timestamps, values, codes):
            yield Event(
                timestamp=float(timestamp),
                value=value,
                error_code=int(code),
                source=self.source,
            )


#: Anything the chunked engine accepts as one batch of elements.
ChunkLike = Union[Chunk, np.ndarray]


def as_chunk(obj: ChunkLike) -> Chunk:
    """Normalise a raw numpy array (or Chunk) into a :class:`Chunk`."""
    if isinstance(obj, Chunk):
        return obj
    return Chunk(values=obj)


def chunk_stream(
    values: Sequence[float],
    chunk_size: int = 65_536,
    start: float = 0.0,
    dt: float = 1.0,
    with_timestamps: bool = False,
    source: Optional[str] = None,
) -> Iterator[Chunk]:
    """Slice an array into zero-copy chunks (the batched ``value_stream``).

    With ``with_timestamps=True`` each chunk carries evenly spaced
    timestamps matching what :func:`value_stream` would have produced, so
    the same query can run on either path with identical results.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    values = np.asarray(values, dtype=np.float64)
    for offset in range(0, len(values), chunk_size):
        block = values[offset : offset + chunk_size]
        timestamps = None
        if with_timestamps:
            timestamps = start + dt * np.arange(offset, offset + len(block), dtype=np.float64)
        yield Chunk(values=block, timestamps=timestamps, source=source)


def events_of_chunks(chunks: Iterable[ChunkLike]) -> Iterator[Event]:
    """Expand a chunk stream into events (glue for per-event operators).

    Chunks without timestamps get synthetic ones continuing across chunk
    boundaries (global element index), so the expansion of
    ``chunk_stream(values)`` equals ``value_stream(values)``.
    """
    position = 0
    for raw in chunks:
        chunk = as_chunk(raw)
        yield from chunk.events(start=float(position))
        position += len(chunk)
