"""NetMon: synthetic datacenter network RTTs calibrated to the paper.

The real NetMon dataset (round-trip times between servers of a large
datacenter, integer microseconds) is proprietary.  The paper publishes
enough of its distribution to rebuild a faithful synthetic twin:

- median (Q0.5) around 798 us,
- more than 90% of latencies below 1,247 us,
- Q0.99 around 1,874 us,
- a very long tail reaching 74,265 us in a 100K-element window,
- values dominated by a small set of recurring (integer) values — only
  ~0.08% of elements in a one-hour window are unique,
- the Figure-1 shape: a dense body below ~2,000 us and a sparse tail.

We use a lognormal body (median 798, sigma fitted so Q0.9 = 1,247) mixed
with a Pareto tail (weight ~1.2%, shape 1.05) truncated at 100,000 us,
rounded to integer microseconds.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: Body parameters: exp(mu) is the median; sigma solves Q0.9 = 1,247.
_BODY_MEDIAN = 798.0
_BODY_SIGMA = math.log(1247.0 / 798.0) / 1.2815515655446004  # z_{0.9}
#: Tail mixture: probability, Pareto scale/shape, hard cap.
_TAIL_WEIGHT = 0.012
_TAIL_SCALE = 1500.0
_TAIL_SHAPE = 1.05
_TAIL_CAP = 100_000.0
#: Physical floor: no RTT below 50 us.
_FLOOR = 50.0


def generate_netmon(
    size: int,
    seed: Optional[int] = 0,
    tail_weight: float = _TAIL_WEIGHT,
) -> np.ndarray:
    """Generate ``size`` NetMon-like RTTs in integer microseconds.

    ``tail_weight`` adjusts the Pareto mixture probability (the default
    reproduces the paper's quantile anchors; see tests for tolerances).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if not 0.0 <= tail_weight < 1.0:
        raise ValueError("tail_weight must be in [0, 1)")
    rng = np.random.default_rng(seed)
    body = rng.lognormal(mean=math.log(_BODY_MEDIAN), sigma=_BODY_SIGMA, size=size)
    is_tail = rng.random(size) < tail_weight
    n_tail = int(is_tail.sum())
    if n_tail:
        tail = _TAIL_SCALE * (1.0 + rng.pareto(_TAIL_SHAPE, size=n_tail))
        body[is_tail] = np.minimum(tail, _TAIL_CAP)
    values = np.clip(np.round(body), _FLOOR, _TAIL_CAP)
    return values.astype(np.float64)
