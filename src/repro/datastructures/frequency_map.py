"""Frequency-map summaries: the compressed ``{value, count}`` Level-1 state.

Section 3.1 of the paper stores in-flight sub-window data as a frequency
distribution instead of a value distribution, exploiting the high data
redundancy of telemetry streams (only ~0.08% of NetMon elements in an hour
are unique).  Two interchangeable backends implement the same contract:

- :class:`TreeFrequencyMap` — the faithful red-black-tree backend from the
  paper (ordered at all times; quantiles via in-order traversal).
- :class:`DictFrequencyMap` — an engineering fast path for CPython: O(1)
  dict accumulation with sort-on-demand at result computation.  The sort is
  amortised over the (few) unique values, which is exactly the regime the
  paper's redundancy insight creates.

Both expose ``quantiles()`` implementing Algorithm 1's single-pass
multi-quantile traversal with the paper's rank convention r = ceil(phi * n).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro import serde

#: State-format version written by :meth:`FrequencyMap.to_state`.
FREQUENCY_MAP_STATE_VERSION = 1


class FrequencyMap(ABC):
    """Abstract compressed multiset of stream values.

    Concrete classes keep ``(value, frequency)`` pairs and answer rank and
    quantile queries against the weighted, sorted sequence they induce.
    """

    #: Registry name of the concrete backend (used by serialization).
    backend_name: ClassVar[str] = "abstract"

    @abstractmethod
    def add(self, value: float, count: int = 1) -> None:
        """Accumulate ``count`` occurrences of ``value``."""

    @abstractmethod
    def discard(self, value: float, count: int = 1) -> None:
        """Deaccumulate ``count`` occurrences of ``value``.

        Raises ``KeyError`` when the value is absent or under-counted.
        """

    @property
    @abstractmethod
    def total(self) -> int:
        """Number of elements in the multiset (with multiplicity)."""

    @property
    @abstractmethod
    def unique_count(self) -> int:
        """Number of distinct values currently stored."""

    @abstractmethod
    def items_sorted(self) -> Iterator[Tuple[float, int]]:
        """Iterate ``(value, frequency)`` in increasing value order."""

    @abstractmethod
    def items_descending(self) -> Iterator[Tuple[float, int]]:
        """Iterate ``(value, frequency)`` in decreasing value order."""

    @abstractmethod
    def clear(self) -> None:
        """Remove all entries."""

    # ------------------------------------------------------------------
    # Shared rank / quantile logic (Algorithm 1, ComputeResult)
    # ------------------------------------------------------------------
    def value_at_rank(self, rank: int) -> float:
        """Value of the ``rank``-th smallest element (1-based, weighted)."""
        if rank < 1 or rank > self.total:
            raise IndexError(f"rank {rank} out of range 1..{self.total}")
        running = 0
        for value, freq in self.items_sorted():
            running += freq
            if running >= rank:
                return value
        raise AssertionError("unreachable: rank within total but not found")

    def quantile(self, phi: float) -> float:
        """Exact ``phi``-quantile of the stored multiset."""
        return self.quantiles([phi])[0]

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        """Exact quantiles for all ``phis`` in a single in-order pass.

        Implements ComputeResult of Algorithm 1: quantiles are sorted in
        non-decreasing order, the tree is walked once, and each requested
        rank ``ceil(phi * count)`` is answered as the running frequency
        crosses it.  Results are returned in the original ``phis`` order.
        """
        total = self.total
        if total == 0:
            raise ValueError("quantiles() on an empty summary")
        for phi in phis:
            if not 0.0 < phi <= 1.0:
                raise ValueError(f"phi must be in (0, 1], got {phi}")
        order = sorted(range(len(phis)), key=lambda i: phis[i])
        results: List[float] = [math.nan] * len(phis)
        running = 0
        idx = 0
        rank = max(1, math.ceil(phis[order[idx]] * total))
        iterator = self.items_sorted()
        for value, freq in iterator:
            running += freq
            while running >= rank:
                results[order[idx]] = value
                idx += 1
                if idx == len(order):
                    return results
                rank = max(1, math.ceil(phis[order[idx]] * total))
        raise AssertionError("unreachable: ranks exceed total")

    def top_values(self, k: int) -> List[float]:
        """The ``k`` largest elements (with multiplicity), descending."""
        if k < 0:
            raise ValueError("k must be non-negative")
        out: List[float] = []
        for value, freq in self.items_descending():
            take = min(freq, k - len(out))
            out.extend([value] * take)
            if len(out) == k:
                break
        return out

    def extend(self, values: Iterable[float]) -> None:
        """Accumulate every value from an iterable."""
        for value in values:
            self.add(value)

    def merge_from(self, other: "FrequencyMap") -> None:
        """Fold another map's multiset into this one.

        Frequency maps are trivially mergeable (multiset union by count
        addition), which is what makes the Level-1 state of QLOVE and the
        Exact baseline shard-invariant: any partition of a stream merges
        back to the identical multiset.  Backends may differ between the
        two maps.
        """
        add = self.add
        for value, count in other.items_sorted():
            add(value, count)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot of the multiset.

        The ``(value, count)`` pairs are stored in increasing value order;
        :func:`frequency_map_from_state` rebuilds an identical multiset on
        either backend (the contract is value-set semantics, not internal
        layout).
        """
        state = serde.header("frequency_map", FREQUENCY_MAP_STATE_VERSION)
        state["backend"] = self.backend_name
        state["items"] = [
            [float(value), int(count)] for value, count in self.items_sorted()
        ]
        return state

    # ------------------------------------------------------------------
    # Bulk (batched) updates
    # ------------------------------------------------------------------
    def extend_array(self, values: np.ndarray) -> None:
        """Accumulate a whole array in one shot.

        Collapses the array to ``(unique value, count)`` pairs first (a C
        routine), so the per-element Python cost drops to one ``add`` per
        *distinct* value — on redundant telemetry chunks that is orders of
        magnitude fewer calls.  The resulting multiset is identical to
        per-element accumulation.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        uniques, counts = np.unique(values, return_counts=True)
        add = self.add
        for value, count in zip(uniques.tolist(), counts.tolist()):
            add(value, count)

    def discard_array(self, values: np.ndarray) -> None:
        """Deaccumulate a whole array in one shot (multiset removal)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        uniques, counts = np.unique(values, return_counts=True)
        discard = self.discard
        for value, count in zip(uniques.tolist(), counts.tolist()):
            discard(value, count)


class TreeFrequencyMap(FrequencyMap):
    """Red-black-tree backend — the paper's Level-1 structure."""

    __slots__ = ("_tree",)

    backend_name = "tree"

    def __init__(self, values: Iterable[float] = ()) -> None:
        from repro.datastructures.rbtree import RedBlackTree

        self._tree = RedBlackTree()
        self.extend(values)

    def add(self, value: float, count: int = 1) -> None:
        self._tree.insert(value, count)

    def discard(self, value: float, count: int = 1) -> None:
        self._tree.remove(value, count)

    @property
    def total(self) -> int:
        return self._tree.total

    @property
    def unique_count(self) -> int:
        return len(self._tree)

    def items_sorted(self) -> Iterator[Tuple[float, int]]:
        return self._tree.items()

    def items_descending(self) -> Iterator[Tuple[float, int]]:
        return self._tree.items_descending()

    def value_at_rank(self, rank: int) -> float:
        # O(log n) via the augmented subtree weights.
        return self._tree.select(rank)

    def clear(self) -> None:
        self._tree.clear()


class DictFrequencyMap(FrequencyMap):
    """Dict backend with a lazily maintained sorted key cache.

    ``add``/``discard`` are O(1); the sorted order is rebuilt only when a
    query runs after the key set changed.  With the high value redundancy of
    telemetry data the key set is small and rarely grows, so the amortised
    cost matches the tree while being much faster in CPython.
    """

    backend_name = "dict"

    __slots__ = ("_counts", "_total", "_sorted_keys", "_dirty")

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._counts: dict[float, int] = {}
        self._total = 0
        self._sorted_keys: List[float] = []
        self._dirty = False
        self.extend(values)

    def add(self, value: float, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        counts = self._counts
        if value in counts:
            counts[value] += count
        else:
            counts[value] = count
            self._dirty = True
        self._total += count

    def discard(self, value: float, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        current = self._counts.get(value, 0)
        if current < count:
            raise KeyError(f"value {value!r} has only {current} occurrences")
        if current == count:
            del self._counts[value]
            self._dirty = True
        else:
            self._counts[value] = current - count
        self._total -= count

    @property
    def total(self) -> int:
        return self._total

    @property
    def unique_count(self) -> int:
        return len(self._counts)

    def _ensure_sorted(self) -> List[float]:
        if self._dirty:
            self._sorted_keys = sorted(self._counts)
            self._dirty = False
        return self._sorted_keys

    def items_sorted(self) -> Iterator[Tuple[float, int]]:
        counts = self._counts
        for key in self._ensure_sorted():
            yield key, counts[key]

    def items_descending(self) -> Iterator[Tuple[float, int]]:
        counts = self._counts
        for key in reversed(self._ensure_sorted()):
            yield key, counts[key]

    _VECTORISE_ABOVE = 2048

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        """Single-pass quantiles with a numpy fast path for large key sets.

        Semantics are identical to :meth:`FrequencyMap.quantiles`; above
        ``_VECTORISE_ABOVE`` unique keys the cumulative-frequency scan is
        vectorised, which matters for the Exact baseline on low-redundancy
        workloads (e.g. the Uniform-floats scalability dataset).
        """
        if len(self._counts) <= self._VECTORISE_ABOVE:
            return super().quantiles(phis)
        total = self._total
        for phi in phis:
            if not 0.0 < phi <= 1.0:
                raise ValueError(f"phi must be in (0, 1], got {phi}")
        size = len(self._counts)
        keys = np.fromiter(self._counts.keys(), dtype=np.float64, count=size)
        counts = np.fromiter(self._counts.values(), dtype=np.int64, count=size)
        order = np.argsort(keys, kind="stable")
        cumulative = np.cumsum(counts[order])
        sorted_keys = keys[order]
        results: List[float] = []
        for phi in phis:
            rank = max(1, math.ceil(phi * total))
            idx = int(np.searchsorted(cumulative, rank, side="left"))
            results.append(float(sorted_keys[idx]))
        return results

    def clear(self) -> None:
        self._counts.clear()
        self._total = 0
        self._sorted_keys = []
        self._dirty = False


_BACKENDS = {"tree": TreeFrequencyMap, "dict": DictFrequencyMap}


def make_frequency_map(backend: str = "dict") -> FrequencyMap:
    """Create a frequency map by backend name (``"tree"`` or ``"dict"``)."""
    try:
        factory = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return factory()


def frequency_map_from_state(state: dict) -> FrequencyMap:
    """Rebuild a frequency map from :meth:`FrequencyMap.to_state` output."""
    serde.check_state(
        state, "frequency_map", FREQUENCY_MAP_STATE_VERSION, "frequency map"
    )
    serde.require_fields(state, ("backend", "items"), "frequency map")
    restored = make_frequency_map(state["backend"])
    add = restored.add
    for value, count in state["items"]:
        add(float(value), int(count))
    return restored
