"""``SegmentStore``: an append-only, time-indexed store of sketch segments.

The durable half of the historical quantile layer (see
``docs/history.md``).  One directory holds:

- ``MANIFEST.json`` — store format tag and version (atomic write);
- one ``<metric>.seg`` log per metric — a spec record followed by
  segment records, each a CRC-framed line (:mod:`repro.store.segment`).

**Append-only discipline.**  Normal operation only ever appends whole
framed lines and flushes them; the bytes of committed records are never
rewritten in place.  The two mutating maintenance operations —
:meth:`compact` and :meth:`prune` — rewrite a metric's log into a temp
file and ``os.replace`` it (the same atomic idiom ``Monitor.save`` uses),
so a crash at any instant leaves either the old or the new log, both
intact.

**Crash safety.**  On open, every log is scanned record by record; the
first torn record (bad CRC, missing newline, undecodable body) marks the
end of committed history — the in-memory index stops there and the file
is truncated back to the last intact byte before new appends.  There is
no separate index file to desync: the index is always rebuilt from the
data, which is what makes ``kill -9`` mid-append recoverable.

**Idempotent re-append.**  A writer resuming from a checkpoint may replay
periods whose segments were already committed (the store outlived the
crash; the checkpoint is older).  ``append`` skips a segment whose period
range is already covered, counting it in ``duplicates_skipped`` — replay
is safe by construction.
"""

from __future__ import annotations

import bisect
import json
import os
import tempfile
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import serde
from repro.store.segment import (
    Segment,
    TornRecord,
    decode_line,
    encode_line,
    read_spec_record,
    spec_record,
)

#: File-format tag written into ``MANIFEST.json``.
STORE_FORMAT = "repro-history-store"

#: Store layout version (directory structure + record framing).
STORE_VERSION = 1

#: Suffix of per-metric segment logs.
LOG_SUFFIX = ".seg"


class StoreError(ValueError):
    """A store operation that cannot proceed (bad directory, bad query)."""


@dataclass(frozen=True)
class RetentionPolicy:
    """How much history to keep and how to coarsen it.

    Parameters
    ----------
    max_periods:
        Keep at most this many trailing periods per metric; segments
        falling entirely before ``newest_end - max_periods`` are dropped
        by :meth:`SegmentStore.prune`.  ``None`` keeps everything.
    rollup_periods:
        Target width (in periods) of compacted rollup segments; runs of
        adjacent fine segments compact into rollups of this many periods.
        ``None`` disables compaction.
    rollup_min_age:
        Only periods at least this far behind the newest committed period
        are eligible for compaction — the recent tail stays fine-grained
        so point-in-time queries over fresh history keep period
        resolution.
    """

    max_periods: Optional[int] = None
    rollup_periods: Optional[int] = None
    rollup_min_age: int = 0

    def __post_init__(self) -> None:
        for name in ("max_periods", "rollup_periods"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ValueError(
                    f"retention {name} must be a positive int or None, got {value!r}"
                )
        age = self.rollup_min_age
        if not isinstance(age, int) or isinstance(age, bool) or age < 0:
            raise ValueError(
                f"retention rollup_min_age must be a non-negative int, got {age!r}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetentionPolicy":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a retention policy must be a mapping, got {type(data).__name__}"
            )
        known = ("max_periods", "rollup_periods", "rollup_min_age")
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown retention key(s) {unknown}; accepted: {list(known)}"
            )
        return cls(
            max_periods=data.get("max_periods"),
            rollup_periods=data.get("rollup_periods"),
            rollup_min_age=data.get("rollup_min_age", 0),
        )


def _metric_filename(metric: str) -> str:
    """A filesystem-safe log name for a metric (percent-encoded)."""
    return urllib.parse.quote(metric, safe="") + LOG_SUFFIX


def _metric_from_filename(filename: str) -> str:
    return urllib.parse.unquote(filename[: -len(LOG_SUFFIX)])


class _MetricLog:
    """In-memory index of one metric's segment log."""

    __slots__ = ("spec_dict", "segments", "starts", "valid_bytes")

    def __init__(self, spec_dict: Dict[str, Any]) -> None:
        self.spec_dict = spec_dict
        self.segments: List[Segment] = []
        #: Sorted start_period of each indexed segment (bisect key).
        self.starts: List[int] = []
        self.valid_bytes = 0

    @property
    def next_period(self) -> int:
        """First period not yet covered by a committed segment."""
        return self.segments[-1].end_period if self.segments else 0


class SegmentStore:
    """A directory of per-metric, time-indexed segment logs.

    Parameters
    ----------
    directory:
        The store directory; created (parents included) when missing.
    retention:
        Default :class:`RetentionPolicy` (or its dict form) applied by
        :meth:`maintain`; ``None`` keeps all history at full resolution.
    """

    def __init__(
        self,
        directory: str,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        if isinstance(retention, Mapping):
            retention = RetentionPolicy.from_dict(retention)
        if retention is not None and not isinstance(retention, RetentionPolicy):
            raise StoreError(
                f"retention must be a RetentionPolicy or its dict form, got "
                f"{type(retention).__name__}"
            )
        self.directory = os.path.abspath(directory)
        self.retention = retention
        self.duplicates_skipped = 0
        self.torn_records_dropped = 0
        self._logs: Dict[str, _MetricLog] = {}
        self._handles: Dict[str, Any] = {}
        self._open_directory()

    # ------------------------------------------------------------------
    # Opening / recovery
    # ------------------------------------------------------------------
    def _open_directory(self) -> None:
        manifest_path = os.path.join(self.directory, "MANIFEST.json")
        if os.path.isfile(self.directory):
            raise StoreError(
                f"history store path {self.directory!r} is a file, not a "
                "directory; pass a directory path"
            )
        os.makedirs(self.directory, exist_ok=True)
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"{manifest_path}: unreadable store manifest ({exc}); the "
                    "directory is not a history store or its manifest is corrupted"
                ) from None
            if not isinstance(manifest, dict) or manifest.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{manifest_path}: not a history-store manifest (expected "
                    f"format {STORE_FORMAT!r}); pass a directory created by "
                    "SegmentStore or an empty/new path"
                )
            version = manifest.get("version")
            if not isinstance(version, int) or version < 1 or version > STORE_VERSION:
                raise StoreError(
                    f"{manifest_path}: unknown store version {version!r}; this "
                    f"build reads versions 1..{STORE_VERSION} — the store was "
                    "written by a newer release (upgrade this installation)"
                )
        else:
            if any(name.endswith(LOG_SUFFIX) for name in os.listdir(self.directory)):
                raise StoreError(
                    f"{self.directory}: contains segment logs but no manifest; "
                    "the store was only partially created or the manifest was "
                    "deleted — restore MANIFEST.json or move the logs aside"
                )
            self._write_atomic(
                manifest_path,
                json.dumps(
                    {"format": STORE_FORMAT, "version": STORE_VERSION},
                    separators=(",", ":"),
                )
                + "\n",
            )
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(LOG_SUFFIX):
                self._load_log(_metric_from_filename(name))

    def _load_log(self, metric: str) -> None:
        """Scan one log, rebuild its index, truncate any torn tail."""
        path = self._log_path(metric)
        log: Optional[_MetricLog] = None
        valid_bytes = 0
        with open(path, "rb") as handle:
            while True:
                line = handle.readline()
                if not line:
                    break
                try:
                    record = decode_line(line)
                    kind = record.get("kind") if isinstance(record, dict) else None
                    if log is None:
                        log = _MetricLog(read_spec_record(record))
                    elif kind == "segment":
                        segment = Segment.from_record(record)
                        if segment.metric != metric:
                            raise serde.StateError(
                                f"segment for metric {segment.metric!r} found in "
                                f"{metric!r}'s log"
                            )
                        self._index_segment(log, segment)
                    else:
                        raise serde.StateError(
                            f"unexpected record kind {kind!r} in segment log"
                        )
                except (TornRecord, serde.StateError):
                    # Committed history ends at the last intact record; the
                    # torn/foreign tail is dropped (and truncated below).
                    self.torn_records_dropped += 1
                    break
                valid_bytes += len(line)
        if log is None:
            # Even the spec record is torn: nothing of this metric was
            # durably committed. Drop the file entirely.
            os.unlink(path)
            return
        log.valid_bytes = valid_bytes
        actual = os.path.getsize(path)
        if actual > valid_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        self._logs[metric] = log

    @staticmethod
    def _index_segment(log: _MetricLog, segment: Segment) -> None:
        if log.segments and segment.start_period < log.segments[-1].end_period:
            # Replayed history after a checkpoint resume: already covered.
            raise _Duplicate()
        log.segments.append(segment)
        log.starts.append(segment.start_period)

    # ------------------------------------------------------------------
    # Registration / append
    # ------------------------------------------------------------------
    def register(self, spec: Any) -> None:
        """Ensure a metric's log exists and its spec matches ``spec``.

        ``spec`` is a :class:`~repro.service.spec.MetricSpec` or its dict
        form.  Registering an existing metric verifies spec equality — a
        store must not silently mix segments of differently-configured
        metrics under one name.
        """
        from repro.service.spec import MetricSpec

        if isinstance(spec, Mapping):
            spec = MetricSpec.from_dict(spec)
        if not isinstance(spec, MetricSpec):
            raise StoreError(
                f"register() takes a MetricSpec or its dict form, got "
                f"{type(spec).__name__}"
            )
        spec_dict = spec.to_dict()
        existing = self._logs.get(spec.name)
        if existing is not None:
            if existing.spec_dict != spec_dict:
                raise StoreError(
                    f"metric {spec.name!r} is already stored with a different "
                    "configuration; open a fresh store directory or use the "
                    "spec the store was created with (spec/store mismatch)"
                )
            return
        log = _MetricLog(spec_dict)
        line = encode_line(spec_record(spec.name, spec_dict))
        handle = self._handle(spec.name)
        handle.write(line)
        handle.flush()
        log.valid_bytes = len(line)
        self._logs[spec.name] = log

    def append(self, segment: Segment) -> bool:
        """Durably append one segment; returns whether it was new.

        Segments must arrive in time order per metric (``start_period ==``
        the log's next period).  A segment that is already covered is
        skipped idempotently (checkpoint-replay discipline, see the module
        docstring); a gap or overlap that is *not* a clean replay raises.
        """
        log = self._require_metric(segment.metric)
        if not log.segments:
            # An empty log accepts any starting period: a recorder attached
            # mid-life (e.g. after resuming a pre-history checkpoint) begins
            # committed history wherever it first observes a full period.
            line = encode_line(segment.to_record())
            handle = self._handle(segment.metric)
            handle.write(line)
            handle.flush()
            log.valid_bytes += len(line)
            self._index_segment(log, segment)
            return True
        next_period = log.next_period
        if segment.end_period <= next_period:
            self.duplicates_skipped += 1
            return False
        if segment.start_period != next_period:
            if segment.start_period < next_period:
                raise StoreError(
                    f"metric {segment.metric!r}: segment "
                    f"[{segment.start_period}, {segment.end_period}) overlaps "
                    f"committed history (next period is {next_period}); "
                    "segments must replay exactly or continue the log"
                )
            raise StoreError(
                f"metric {segment.metric!r}: segment starts at period "
                f"{segment.start_period} but the log's next period is "
                f"{next_period}; history must be gap-free — replay the "
                "missing periods first"
            )
        line = encode_line(segment.to_record())
        handle = self._handle(segment.metric)
        handle.write(line)
        handle.flush()
        log.valid_bytes += len(line)
        self._index_segment(log, segment)
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def metrics(self) -> List[str]:
        """Stored metric names, sorted."""
        return sorted(self._logs)

    def spec_dict(self, metric: str) -> Dict[str, Any]:
        """The canonical spec dict the metric's log was created with."""
        return dict(self._require_metric(metric).spec_dict)

    def spec(self, metric: str):
        """The metric's :class:`~repro.service.spec.MetricSpec`."""
        from repro.service.spec import MetricSpec

        return MetricSpec.from_dict(self.spec_dict(metric))

    def segments(self, metric: str) -> List[Segment]:
        """All committed segments of a metric, in time order."""
        return list(self._require_metric(metric).segments)

    def coverage(self, metric: str) -> Tuple[int, int]:
        """The committed period range ``[first, next)`` of a metric."""
        log = self._require_metric(metric)
        if not log.segments:
            return (0, 0)
        return (log.segments[0].start_period, log.next_period)

    def covering(self, metric: str, start: int, end: int) -> List[Segment]:
        """The segments whose union is exactly periods ``[start, end)``.

        Raises :class:`StoreError` with an actionable message when the
        range is outside committed history, spans a retention gap, or cuts
        through a rollup segment (compaction coarsened those periods; the
        error names the achievable boundaries).
        """
        log = self._require_metric(metric)
        if not isinstance(start, int) or not isinstance(end, int) or isinstance(
            start, bool
        ) or isinstance(end, bool):
            raise StoreError(
                f"period range bounds must be ints, got [{start!r}, {end!r})"
            )
        if end <= start:
            raise StoreError(
                f"period range [{start}, {end}) is empty; end must exceed start"
            )
        first, nxt = self.coverage(metric)
        if not log.segments or start < first or end > nxt:
            raise StoreError(
                f"metric {metric!r}: periods [{start}, {end}) are outside "
                f"committed history [{first}, {nxt}); older periods may have "
                "been dropped by retention"
            )
        index = bisect.bisect_right(log.starts, start) - 1
        chosen: List[Segment] = []
        cursor = start
        while cursor < end:
            segment = log.segments[index]
            if segment.start_period != cursor:
                boundaries = self._boundaries_near(log, start, end)
                raise StoreError(
                    f"metric {metric!r}: period {cursor} falls inside the "
                    f"compacted segment [{segment.start_period}, "
                    f"{segment.end_period}); ranges must align with segment "
                    f"boundaries — nearest achievable: {boundaries}"
                )
            if segment.end_period > end:
                boundaries = self._boundaries_near(log, start, end)
                raise StoreError(
                    f"metric {metric!r}: period range [{start}, {end}) ends "
                    f"inside the compacted segment [{segment.start_period}, "
                    f"{segment.end_period}); ranges must align with segment "
                    f"boundaries — nearest achievable: {boundaries}"
                )
            chosen.append(segment)
            cursor = segment.end_period
            index += 1
        return chosen

    @staticmethod
    def _boundaries_near(log: _MetricLog, start: int, end: int) -> List[int]:
        """A handful of valid segment boundaries around a failed range."""
        boundaries = sorted(
            {log.segments[0].start_period}
            | {segment.end_period for segment in log.segments}
        )
        lo = bisect.bisect_left(boundaries, start) - 2
        hi = bisect.bisect_right(boundaries, end) + 2
        return boundaries[max(0, lo) : hi]

    # ------------------------------------------------------------------
    # Retention + compaction
    # ------------------------------------------------------------------
    def compact(
        self,
        metric: Optional[str] = None,
        *,
        rollup_periods: Optional[int] = None,
        min_age: Optional[int] = None,
    ) -> int:
        """Roll fine segments into coarser rollups; returns rollups built.

        Runs of adjacent segments older than ``min_age`` periods behind
        the newest committed period merge into rollup segments covering
        ``rollup_periods`` periods each (runs shorter than a full rollup
        stay as they are — compaction never changes committed coverage,
        only its granularity).  Defaults come from the store's
        :class:`RetentionPolicy`.
        """
        policy = self.retention or RetentionPolicy()
        rollup = rollup_periods if rollup_periods is not None else policy.rollup_periods
        age = min_age if min_age is not None else policy.rollup_min_age
        if rollup is None:
            return 0
        if not isinstance(rollup, int) or isinstance(rollup, bool) or rollup < 2:
            raise StoreError(
                f"rollup_periods must be an int >= 2, got {rollup!r}"
            )
        names = [metric] if metric is not None else self.metrics()
        built = 0
        for name in names:
            built += self._compact_metric(name, rollup, age)
        return built

    def _compact_metric(self, metric: str, rollup: int, min_age: int) -> int:
        from repro.store.query import merge_segments

        log = self._require_metric(metric)
        if not log.segments:
            return 0
        horizon = log.next_period - min_age
        rewritten: List[Segment] = []
        run: List[Segment] = []
        built = 0

        def flush_run() -> None:
            nonlocal built
            while len(run) and run[0].periods >= rollup:
                rewritten.append(run.pop(0))
            while run:
                batch: List[Segment] = []
                width = 0
                while run and width + run[0].periods <= rollup:
                    width += run[0].periods
                    batch.append(run.pop(0))
                if not batch:
                    # A single segment wider than the target: keep as-is.
                    rewritten.append(run.pop(0))
                    continue
                if width < rollup or len(batch) == 1:
                    # A remnant shorter than a full rollup (or already one
                    # segment): leave fine-grained for a later pass.
                    rewritten.extend(batch)
                    continue
                rewritten.append(merge_segments(batch, kind="rollup"))
                built += 1

        for segment in log.segments:
            if segment.end_period <= horizon:
                run.append(segment)
            else:
                flush_run()
                rewritten.append(segment)
        flush_run()
        if built:
            self._rewrite_log(metric, rewritten)
        return built

    def prune(self, metric: Optional[str] = None, *, max_periods: Optional[int] = None) -> int:
        """Drop segments outside the retention horizon; returns drops.

        A segment is dropped only when it lies *entirely* before
        ``newest_end - max_periods`` — retention never truncates inside a
        segment, so surviving history stays queryable at its boundaries.
        """
        policy = self.retention or RetentionPolicy()
        keep = max_periods if max_periods is not None else policy.max_periods
        if keep is None:
            return 0
        if not isinstance(keep, int) or isinstance(keep, bool) or keep < 1:
            raise StoreError(f"max_periods must be a positive int, got {keep!r}")
        names = [metric] if metric is not None else self.metrics()
        dropped = 0
        for name in names:
            log = self._require_metric(name)
            horizon = log.next_period - keep
            kept = [s for s in log.segments if s.end_period > horizon]
            if len(kept) != len(log.segments):
                dropped += len(log.segments) - len(kept)
                self._rewrite_log(name, kept)
        return dropped

    def maintain(self) -> Dict[str, int]:
        """One retention pass: compact then prune, per the store policy."""
        return {"rollups_built": self.compact(), "segments_dropped": self.prune()}

    def _rewrite_log(self, metric: str, segments: List[Segment]) -> None:
        """Atomically replace a metric's log with the given segments."""
        log = self._logs[metric]
        path = self._log_path(metric)
        handle = self._handles.pop(metric, None)
        if handle is not None:
            handle.close()
        lines = [encode_line(spec_record(metric, log.spec_dict))]
        lines.extend(encode_line(segment.to_record()) for segment in segments)
        payload = b"".join(lines)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as tmp:
                tmp.write(payload)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        log.segments = list(segments)
        log.starts = [segment.start_period for segment in segments]
        log.valid_bytes = len(payload)

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close every open log handle (the store stays usable;
        handles reopen lazily on the next append)."""
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._handles.clear()

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Store-level accounting (per-metric segment/period counts)."""
        metrics = {}
        for name, log in self._logs.items():
            first, nxt = self.coverage(name)
            metrics[name] = {
                "segments": len(log.segments),
                "rollups": sum(1 for s in log.segments if s.kind == "rollup"),
                "first_period": first,
                "next_period": nxt,
                "events": sum(s.count for s in log.segments),
                "bytes": log.valid_bytes,
            }
        return {
            "directory": self.directory,
            "metrics": metrics,
            "duplicates_skipped": self.duplicates_skipped,
            "torn_records_dropped": self.torn_records_dropped,
        }

    def _log_path(self, metric: str) -> str:
        return os.path.join(self.directory, _metric_filename(metric))

    def _handle(self, metric: str):
        handle = self._handles.get(metric)
        if handle is None:
            handle = open(self._log_path(metric), "ab")
            self._handles[metric] = handle
        return handle

    def _require_metric(self, metric: str) -> _MetricLog:
        try:
            return self._logs[metric]
        except KeyError:
            raise StoreError(
                f"metric {metric!r} is not in this store; stored: "
                f"{self.metrics() or '(none)'}"
            ) from None

    @staticmethod
    def _write_atomic(path: str, payload: str) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


class _Duplicate(Exception):
    """Internal: an indexed segment that replays committed coverage."""
