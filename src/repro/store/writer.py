"""``HistoryWriter``: the sink wiring Monitor period boundaries to a store.

The glue between the live layer and the durable one: attach a writer to a
:class:`~repro.service.monitor.Monitor` and every metric's per-period
delta state (a fresh shadow policy sealed at each boundary — see
:meth:`MetricChannel.attach_recorder
<repro.service.monitor.MetricChannel.attach_recorder>`) is appended to a
:class:`~repro.store.store.SegmentStore` as one durable segment.  The
``python -m repro monitor --history DIR`` path and the TelemetryServer's
``--history`` flag both run through here, so offline and live ingestion
write byte-compatible stores.

Checkpoint/resume composes: the recorder's mid-period state rides in the
monitor checkpoint, and :meth:`SegmentStore.append
<repro.store.store.SegmentStore.append>` skips already-committed periods
idempotently, so a crash between a segment append and the next checkpoint
replays harmlessly on resume.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.store.segment import Segment
from repro.store.store import RetentionPolicy, SegmentStore


class HistoryWriter:
    """Persists every attached metric's period deltas as segments.

    Parameters
    ----------
    store:
        An open :class:`~repro.store.store.SegmentStore`, or a directory
        path to open one at (created when missing).
    retention:
        :class:`~repro.store.store.RetentionPolicy` (or its dict form)
        for the opened store — only valid with a path; an existing store
        keeps its own policy.
    maintain_every:
        Run :meth:`SegmentStore.maintain` (compaction + pruning) after
        every this-many appended segments; ``None`` leaves maintenance to
        explicit :meth:`maintain` calls.
    """

    def __init__(
        self,
        store: Union[SegmentStore, str],
        *,
        retention: Optional[RetentionPolicy] = None,
        maintain_every: Optional[int] = None,
    ) -> None:
        if isinstance(store, SegmentStore):
            if retention is not None:
                raise ValueError(
                    "pass retention only with a directory path; an open "
                    "SegmentStore already carries its policy"
                )
            self.store = store
        elif isinstance(store, str):
            self.store = SegmentStore(store, retention=retention)
        else:
            raise TypeError(
                f"store must be a SegmentStore or a directory path, got "
                f"{type(store).__name__}"
            )
        if maintain_every is not None and (
            not isinstance(maintain_every, int)
            or isinstance(maintain_every, bool)
            or maintain_every < 1
        ):
            raise ValueError(
                f"maintain_every must be a positive int or None, got "
                f"{maintain_every!r}"
            )
        self.maintain_every = maintain_every
        self.segments_written = 0
        self._since_maintenance = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, monitor) -> None:
        """Record every metric registered on ``monitor`` into the store.

        Registers each spec with the store (spec equality is enforced for
        metrics the store already holds) and attaches a per-period
        recorder to each channel.  Call once, after the monitor's metrics
        are registered — metrics registered later need their own
        :meth:`attach_metric` call.
        """
        for spec in monitor.specs():
            self.attach_metric(monitor, spec.name)

    def attach_metric(self, monitor, name: str) -> None:
        """Record one of ``monitor``'s metrics into the store.

        A labeled metric attaches per *series*: every labelset that
        materialises (or resurrects) registers its derived per-series
        spec with the store and records segments under its canonical
        series key, so historical group-by queries can decode the
        labels back out of the store.
        """
        spec = next((s for s in monitor.specs() if s.name == name), None)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not registered on the monitor; "
                f"registered: {monitor.metrics() or '(none)'}"
            )
        if spec.labels is not None:
            monitor.attach_series_history(name, self._series_binder(spec))
            return
        self.store.register(spec)
        monitor.attach_recorder(name, self._sink)

    def _series_binder(self, spec):
        """The per-series binder for one labeled family: registers the
        series' derived spec on first touch and routes its segments to
        the shared sink (keyed by series key)."""

        def binder(series_key: str):
            self.store.register(spec.for_series(series_key))
            return self._sink

        return binder

    # ------------------------------------------------------------------
    # The period-boundary sink
    # ------------------------------------------------------------------
    def _sink(self, metric: str, period: int, count: int, state: Dict) -> None:
        appended = self.store.append(
            Segment(
                metric=metric,
                start_period=period,
                end_period=period + 1,
                count=count,
                state=state,
            )
        )
        if appended:
            self.segments_written += 1
            self._since_maintenance += 1
            if (
                self.maintain_every is not None
                and self._since_maintenance >= self.maintain_every
            ):
                self._since_maintenance = 0
                self.store.maintain()

    # ------------------------------------------------------------------
    # Maintenance / lifecycle
    # ------------------------------------------------------------------
    def maintain(self) -> Dict[str, int]:
        """One explicit compaction + retention pass over the store."""
        self._since_maintenance = 0
        return self.store.maintain()

    def stats(self) -> Dict:
        """Writer counters plus the underlying store's accounting."""
        stats = self.store.stats()
        stats["segments_written"] = self.segments_written
        return stats

    def close(self) -> None:
        """Flush and close the store's log handles."""
        self.store.close()

    def __enter__(self) -> "HistoryWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
