"""Engine checkpoints: freeze a run at a period boundary, resume later.

A :class:`EngineCheckpoint` captures everything the count-windowed
sub-window loop needs to continue a stream after a process restart: the
loop counters (sealed sub-windows in view, elements seen, next emission
index) plus the aggregation policy's full :meth:`to_state
<repro.sketches.base.QuantilePolicy.to_state>` snapshot.  Checkpoints are
taken **at period boundaries only** — the moment the in-flight sub-window
is empty — so a resumed run re-enters the exact loop state the original
would have had, and its outputs are bit-identical to the uninterrupted
run for every registered policy (randomized ones included: the RNG
position is part of the policy state).

Wiring (see :class:`~repro.streaming.plan.ExecutionPlan`):

- ``plan.checkpoint_sink`` — a callable invoked with a fresh
  ``EngineCheckpoint`` at every period boundary;
- ``plan.resume_from`` — a checkpoint (or its JSON-loaded state dict);
  the engine restores the operator's policy from it, fast-forwards the
  counters, and expects the source to deliver only the elements *after*
  ``checkpoint.seen``.

``seen`` counts the elements the windowing loop consumed, i.e. the
**post-filter** stream: when the query has ``where``/``where_values``
stages, a resumed source must deliver the remainder of the *filtered*
stream (or re-apply the same filters to a raw source positioned so
exactly ``seen`` elements have already passed them).  Filterless
queries — the Monitor/CLI path — can simply slice the original stream
at ``seen``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro import serde
from repro.streaming.windows import CountWindow

#: State-format version written by :meth:`EngineCheckpoint.to_state`.
CHECKPOINT_STATE_VERSION = 1


@dataclass(frozen=True)
class EngineCheckpoint:
    """A count-windowed sub-window run frozen at a period boundary.

    Attributes
    ----------
    window:
        The run's window shape (resume validates it against the query's).
    sealed:
        Sealed sub-windows currently in view (≤ ``window.subwindow_count``).
    seen:
        Post-filter elements consumed so far; a resumed source must
        start at element ``seen`` of the (filtered) stream the original
        run windowed.
    index:
        Index the next emitted :class:`~repro.streaming.engine.WindowResult`
        will carry.
    policy_state:
        The aggregation policy's ``to_state()`` snapshot.
    """

    window: CountWindow
    sealed: int
    seen: int
    index: int
    policy_state: dict

    def to_state(self) -> dict:
        """Versioned, JSON-safe form (``json.dumps`` round-trips it)."""
        state = serde.header("engine_checkpoint", CHECKPOINT_STATE_VERSION)
        state["window"] = {
            "size": int(self.window.size),
            "period": int(self.window.period),
        }
        state["sealed"] = int(self.sealed)
        state["seen"] = int(self.seen)
        state["index"] = int(self.index)
        state["policy"] = serde.as_native(self.policy_state)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "EngineCheckpoint":
        """Rebuild a checkpoint from :meth:`to_state` output."""
        serde.check_state(
            state, "engine_checkpoint", CHECKPOINT_STATE_VERSION, "engine checkpoint"
        )
        serde.require_fields(
            state, ("window", "sealed", "seen", "index", "policy"), "engine checkpoint"
        )
        window_state = state["window"]
        if not isinstance(window_state, dict) or not {
            "size",
            "period",
        } <= set(window_state):
            raise serde.StateError(
                "engine checkpoint: malformed window (expected "
                "{'size', 'period'}, got " f"{window_state!r})"
            )
        return cls(
            window=CountWindow(
                size=int(window_state["size"]), period=int(window_state["period"])
            ),
            sealed=int(state["sealed"]),
            seen=int(state["seen"]),
            index=int(state["index"]),
            policy_state=state["policy"],
        )


def coerce_checkpoint(
    checkpoint: Union["EngineCheckpoint", dict], context: str = "resume_from"
) -> EngineCheckpoint:
    """Accept an :class:`EngineCheckpoint` or its state-dict form."""
    if isinstance(checkpoint, EngineCheckpoint):
        return checkpoint
    if isinstance(checkpoint, dict):
        return EngineCheckpoint.from_state(checkpoint)
    raise serde.StateError(
        f"{context}: expected an EngineCheckpoint or its to_state() dict, "
        f"got {type(checkpoint).__name__}"
    )


def require_window_match(checkpoint: EngineCheckpoint, window: CountWindow) -> None:
    """Reject a checkpoint taken under a different window shape."""
    if checkpoint.window != window:
        raise serde.StateError(
            f"cannot resume: checkpoint was taken under window "
            f"{checkpoint.window.size}/{checkpoint.window.period}, the "
            f"query uses {window.size}/{window.period} (spec/state mismatch)"
        )


def restore_policy(policy_state: dict, reference):
    """Rebuild a policy from ``policy_state``, validated against ``reference``.

    The one implementation of resume-time compatibility checking, shared
    by :meth:`PolicyOperator.restore_state
    <repro.sketches.base.PolicyOperator.restore_state>`, the engine's
    resume path and the sharded engine: the restored policy must match
    ``reference``'s concrete type, quantiles and window shape, or the
    resume fails with an actionable spec/state-mismatch error.
    """
    from repro.sketches.registry import policy_from_state

    restored = policy_from_state(policy_state)
    try:
        reference._require_compatible(restored)
    except (TypeError, ValueError) as exc:
        raise serde.StateError(
            f"cannot restore checkpointed policy: {exc}; the state does not "
            "match the configured policy (spec/state mismatch)"
        ) from None
    return restored
