"""Metrics: exact quantiles, value/rank errors, accumulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evalkit import (
    ErrorAccumulator,
    exact_quantile,
    exact_quantiles,
    rank_error,
    relative_value_error,
)


class TestExactQuantiles:
    def test_rank_convention(self):
        values = list(range(1, 11))
        assert exact_quantile(values, 0.5) == 5
        assert exact_quantile(values, 0.51) == 6
        assert exact_quantile(values, 1.0) == 10

    def test_multi_single_sort(self):
        values = list(range(100, 0, -1))
        assert exact_quantiles(values, [0.99, 0.5]) == [99.0, 50.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_quantiles([], [0.5])

    def test_invalid_phi(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], 0.0)

    def test_no_float_fuzz_on_integer_products(self):
        # 16000 * 0.999 must rank 15984, not 15985.
        values = list(range(1, 16001))
        assert exact_quantile(values, 0.999) == 15984

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_property_matches_sorted_index(self, values, phi):
        got = exact_quantile(values, phi)
        ordered = sorted(values)
        rank = max(1, math.ceil(round(phi * len(values), 9)))
        assert got == ordered[rank - 1]


class TestErrors:
    def test_relative_value_error(self):
        assert relative_value_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_value_error(90.0, 100.0) == pytest.approx(0.1)

    def test_relative_value_error_zero_truth(self):
        with pytest.raises(ValueError):
            relative_value_error(1.0, 0.0)

    def test_rank_error_exact_hit(self):
        window = np.arange(1.0, 101.0)
        assert rank_error(window, 50.0, 0.5) == 0.0

    def test_rank_error_distance(self):
        window = np.arange(1.0, 101.0)
        # Estimate 60 for the median: rank 60 vs 50 -> 10/100.
        assert rank_error(window, 60.0, 0.5) == pytest.approx(0.1)

    def test_rank_error_duplicates_take_closest(self):
        window = np.array([1.0] * 50 + [2.0] * 50)
        # 1.0 occupies ranks 1..50; target rank 50 -> error 0.
        assert rank_error(window, 1.0, 0.5) == 0.0

    def test_rank_error_empty(self):
        with pytest.raises(ValueError):
            rank_error(np.array([]), 1.0, 0.5)


class TestAccumulator:
    def test_accumulates_means(self):
        acc = ErrorAccumulator([0.5])
        window = np.arange(1.0, 101.0)
        acc.observe({0.5: 50.0}, window)  # exact
        acc.observe({0.5: 55.0}, window)  # 10% value error
        assert acc.evaluations == 2
        assert acc.mean_value_error(0.5) == pytest.approx(0.05)
        assert acc.value_error_percent(0.5) == pytest.approx(5.0)
        assert acc.mean_rank_error(0.5) == pytest.approx(0.025)
        assert acc.max_rank_error(0.5) == pytest.approx(0.05)

    def test_empty_is_nan(self):
        acc = ErrorAccumulator([0.5])
        assert math.isnan(acc.mean_value_error(0.5))
        assert math.isnan(acc.mean_rank_error(0.5))
