"""Per-event vs batched ingestion throughput (the PR-1 fast path).

The per-event loop pays interpreter overhead for every element: one Event
object, one operator dispatch, one policy method call.  The batched path
pulls numpy chunks from the source, slices them at sub-window boundaries,
and lets policies bulk-ingest whole slices (np.unique + frequency-map
counts for QLOVE/Exact, compaction-interval extends for Random).

Acceptance gate for the batch path: QLOVE must ingest at least 3x faster
batched than per-event while producing bit-identical WindowResults (the
equivalence is asserted here on the measured runs and, exhaustively, in
tests/sketches/test_batch_equivalence.py).
"""

import numpy as np
import pytest

from repro.evalkit import Table, measure_throughput, measure_throughput_batched
from repro.sketches import make_policy
from repro.streaming import CountWindow, ExecutionPlan, Query, StreamEngine
from repro.workloads import generate_netmon

N = 200_000
WINDOW = CountWindow(size=32_000, period=8_000)
PHIS = [0.5, 0.9, 0.99, 0.999]
CHUNK_SIZE = 16_384

#: Policies worth timing on both paths (Exact/Random exploit bulk inserts;
#: CMQS rides the generic fallback and shows the floor of the win).
POLICIES = ["qlove", "exact", "random", "cmqs"]


@pytest.fixture(scope="module")
def netmon_values():
    return generate_netmon(N, seed=0)


def _speedup(name, values):
    factory = lambda: make_policy(name, PHIS, WINDOW)  # noqa: E731
    per_event = measure_throughput(factory, values, WINDOW)
    batched = measure_throughput_batched(
        factory, values, WINDOW, chunk_size=CHUNK_SIZE
    )
    return per_event, batched


def test_batched_ingest_speedup(benchmark, netmon_values, bench_json_sink):
    """Table: M ev/s on both paths plus the batched/per-event ratio."""

    def run():
        return {name: _speedup(name, netmon_values) for name in POLICIES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_json_sink(
        "batched",
        {
            "workload": "netmon",
            "events": N,
            "window": {"size": WINDOW.size, "period": WINDOW.period},
            "chunk_size": CHUNK_SIZE,
            "policies": {
                name: {
                    "per_event_events_per_s": per_event.events_per_second,
                    "batched_events_per_s": batched.events_per_second,
                    "speedup": batched.events_per_second
                    / per_event.events_per_second,
                }
                for name, (per_event, batched) in results.items()
            },
        },
    )

    table = Table(
        f"Ingestion throughput, NetMon {N:,} elements, "
        f"window {WINDOW.size // 1000}K/{WINDOW.period // 1000}K, "
        f"chunks of {CHUNK_SIZE:,}",
        ["policy", "per-event M ev/s", "batched M ev/s", "speedup"],
    )
    for name, (per_event, batched) in results.items():
        table.add_row(
            name,
            f"{per_event.million_events_per_second:.3f}",
            f"{batched.million_events_per_second:.3f}",
            f"{batched.events_per_second / per_event.events_per_second:.1f}x",
        )
    print()
    print(table.render())

    qlove_per_event, qlove_batched = results["qlove"]
    ratio = qlove_batched.events_per_second / qlove_per_event.events_per_second
    assert ratio >= 3.0, f"QLOVE batched path only {ratio:.1f}x faster"
    # Both paths must have evaluated the same number of windows.
    for per_event, batched in results.values():
        assert per_event.evaluations == batched.evaluations


def test_batched_results_identical(netmon_values):
    """The measured speedup is not bought with accuracy: same results."""
    from repro.sketches.base import PolicyOperator

    engine = StreamEngine()
    reference = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy("qlove", PHIS, WINDOW))),
        ExecutionPlan(mode="events"),
    )
    batched = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy("qlove", PHIS, WINDOW))),
        ExecutionPlan(mode="batched", chunk_size=CHUNK_SIZE),
    )
    assert batched == reference
