"""Ablation: few-k budget split — top-k fraction sweep on the tail error.

DESIGN.md §5.3: the paper fixes k_t from the sub-window tail estimate and
gives the rest to k_s.  This sweep varies the top-k fraction directly,
confirming the error/space knee that Table 3 summarises at two points.
"""

import numpy as np

from repro.core import FewKConfig, QLOVEConfig
from repro.evalkit.runner import run_accuracy
from repro.streaming import CountWindow
from repro.workloads import generate_netmon

WINDOW = CountWindow(size=32_768, period=2_048)
PHI = 0.999
FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def test_ablation_fewk_split(benchmark):
    values = generate_netmon(WINDOW.size + 15 * WINDOW.period, seed=0)

    def sweep():
        results = {}
        baseline = run_accuracy("qlove", values, WINDOW, [PHI])
        results["none"] = baseline.errors.mean_value_error(PHI)
        for fraction in FRACTIONS:
            config = QLOVEConfig(fewk=FewKConfig(topk_fraction=fraction))
            report = run_accuracy("qlove", values, WINDOW, [PHI], config=config)
            results[fraction] = report.errors.mean_value_error(PHI)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'fraction':>9}  VE% Q{PHI}")
    for label, error in results.items():
        print(f"{label!s:>9}  {100 * error:.2f}")

    # The knee: by fraction 0.5 the error is near the full-budget optimum,
    # and every fraction >= 0.25 beats the no-few-k baseline.
    assert results[0.5] <= results["none"]
    assert results[0.25] <= results["none"]
    assert abs(results[0.5] - results[1.0]) < max(0.02, results[1.0])
