"""Merge associativity over sealed per-period deltas (property-based).

For every registered policy, merging a time-ordered run of per-period
delta states must give the same queried answer no matter how the run is
parenthesised — the algebraic fact rollup compaction and range queries
both lean on.  Deltas are rebuilt from serialized state for every fold
shape because ``merge`` mutates its receiver.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import available_policies, policy_from_state

from tests.store.conftest import PHIS, make_spec, stream_values

PERIODS = 8
PERIOD = 250

#: Serialized per-period delta states, one tuple per policy (JSON-frozen
#: so no fold shape can mutate another's inputs).
_DELTAS: dict = {}


def delta_states(policy: str) -> list:
    if policy not in _DELTAS:
        spec = make_spec(policy)
        values = stream_values(42, PERIODS)
        states = []
        for p in range(PERIODS):
            delta = spec.build_policy()
            delta.accumulate_batch(values[p * PERIOD : (p + 1) * PERIOD])
            delta.seal_subwindow()
            states.append(json.dumps(delta.to_state()))
        _DELTAS[policy] = states
    return _DELTAS[policy]


def fold(policy: str, groups: list) -> dict:
    """Merge each group of periods, then merge the group results in order."""
    states = delta_states(policy)
    partials = []
    for group in groups:
        head = policy_from_state(json.loads(states[group[0]]))
        for index in group[1:]:
            head.merge(policy_from_state(json.loads(states[index])))
        partials.append(head)
    combined = partials[0]
    for other in partials[1:]:
        combined.merge(other)
    return {phi: float(v) for phi, v in combined.query().items()}


def _partitions(n: int):
    """Hypothesis strategy: ordered partitions of range(n) into runs."""
    return st.sets(st.integers(1, n - 1), max_size=n - 1).map(
        lambda cuts: [
            list(range(a, b))
            for a, b in zip([0] + sorted(cuts), sorted(cuts) + [n])
        ]
    )


@pytest.mark.parametrize("policy", sorted(available_policies()))
class TestMergeAssociativity:
    def test_flat_fold_is_reference(self, policy):
        """The single-group fold equals itself — guards the harness."""
        reference = fold(policy, [list(range(PERIODS))])
        assert set(reference) == set(PHIS)
        assert all(np.isfinite(v) for v in reference.values())

    @settings(max_examples=40, deadline=None)
    @given(groups=_partitions(PERIODS))
    def test_any_partition_matches_flat_fold(self, policy, groups):
        reference = fold(policy, [list(range(PERIODS))])
        assert fold(policy, groups) == reference

    @settings(max_examples=25, deadline=None)
    @given(
        left=st.sets(st.integers(1, PERIODS - 1), max_size=PERIODS - 1),
        right=st.sets(st.integers(1, PERIODS - 1), max_size=PERIODS - 1),
    )
    def test_two_arbitrary_partitions_agree(self, policy, left, right):
        def groups(cuts):
            edges = [0] + sorted(cuts) + [PERIODS]
            return [list(range(a, b)) for a, b in zip(edges, edges[1:])]

        assert fold(policy, groups(left)) == fold(policy, groups(right))

    def test_nested_rollup_of_rollups(self, policy):
        """Pairwise, then pair-of-pairs — the repeated-compaction shape."""
        flat = fold(policy, [list(range(PERIODS))])
        pairs = fold(policy, [[0, 1], [2, 3], [4, 5], [6, 7]])
        quads = fold(policy, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert pairs == flat
        assert quads == flat


def test_battery_covers_every_registered_policy():
    """Mirrors the range battery's completeness pin: the parametrize list
    above is ``available_policies()`` itself, so this asserts the deltas
    build for each — a new policy that cannot produce sealed delta
    states fails here, loudly."""
    for policy in available_policies():
        assert len(delta_states(policy)) == PERIODS
