"""Incremental-evaluation operator contracts (Section 2).

Two granularities are supported:

- :class:`IncrementalOperator` — the verbatim Trill contract.  The engine
  calls ``accumulate`` for each arriving event and ``deaccumulate`` for each
  expiring event; tumbling windows skip deaccumulation entirely and reset
  state instead, exactly as the paper describes ("the tumbling-window query
  is implemented with a smaller set of functions without Deaccumulate").

- :class:`SubWindowOperator` — the granularity QLOVE introduces: operators
  that summarise whole sub-windows and expire a sub-window at a time
  ("QLOVE can deaccumulate an entire expiring sub-window at a time with low
  cost", Section 6).  The engine never buffers raw events for these.

Both contracts additionally expose a **batched** ingestion surface
(``accumulate_batch`` / ``deaccumulate_batch``) taking a whole
:class:`~repro.streaming.sources.Chunk` of elements at once.  The base-class
implementations fall back to the per-event methods, so every operator is
batch-capable by construction; operators that can exploit vectorisation
(frequency-map bulk inserts, numpy reductions) override them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Generic, TypeVar

from repro.streaming.event import Event

if TYPE_CHECKING:
    from repro.streaming.sources import Chunk

S = TypeVar("S")
R = TypeVar("R")


class IncrementalOperator(ABC, Generic[S, R]):
    """Per-element incremental operator: the four-function Trill contract.

    State objects may be mutated in place; each method returns the state to
    keep the functional signature of the paper's pseudocode
    (``Accumulate: (S, E) => S``).
    """

    @abstractmethod
    def initial_state(self) -> S:
        """Return a fresh, empty state."""

    @abstractmethod
    def accumulate(self, state: S, event: Event) -> S:
        """Fold a newly arrived event into the state."""

    @abstractmethod
    def deaccumulate(self, state: S, event: Event) -> S:
        """Remove an expiring event from the state.

        Only invoked for sliding windows; tumbling windows discard state.
        """

    @abstractmethod
    def compute_result(self, state: S) -> R:
        """Produce the query result from the current state."""

    # ------------------------------------------------------------------
    # Batched surface (per-event fallback; override to vectorise)
    # ------------------------------------------------------------------
    def accumulate_batch(self, state: S, chunk: "Chunk") -> S:
        """Fold a whole chunk of arriving elements into the state."""
        for event in chunk.events():
            state = self.accumulate(state, event)
        return state

    def deaccumulate_batch(self, state: S, chunk: "Chunk") -> S:
        """Remove a whole chunk of expiring elements from the state."""
        for event in chunk.events():
            state = self.deaccumulate(state, event)
        return state

    # ------------------------------------------------------------------
    # Mergeability (sharded execution)
    # ------------------------------------------------------------------
    def merge_states(self, state: S, other: S) -> S:
        """Fold ``other`` into ``state`` and return the combined state.

        The incremental half of the mergeability contract: callers that
        build per-shard or per-node partial states (today
        :class:`~repro.streaming.sharded.ShardedEngine` only drives
        sub-window policies; distributed aggregation of plain aggregates
        goes through this hook directly) combine them here.  Not every
        incremental state is mergeable (order-dependent folds are not);
        the default therefore raises, and mergeable operators override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merge_states()"
        )

    # ------------------------------------------------------------------
    # Durable state (checkpoint / restore)
    # ------------------------------------------------------------------
    def state_to_dict(self, state: S) -> dict:
        """A state object as a versioned, JSON-safe dict.

        The serialization half of the incremental contract: operators
        whose state is plain registers (count/sum/mean/variance,
        frequency-map extremes) snapshot it here so partial aggregates
        can ship between nodes or survive restarts like the sub-window
        policies do.  The default raises; serializable operators
        override both directions.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state_to_dict()"
        )

    def state_from_dict(self, data: dict) -> S:
        """Rebuild a state object from :meth:`state_to_dict` output."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state_from_dict()"
        )


class SubWindowOperator(ABC, Generic[R]):
    """Sub-window-granular operator (QLOVE's two-level processing).

    Lifecycle driven by the engine, per Figure 2 of the paper::

        accumulate(e) ... accumulate(e)   # in-flight sub-window fills up
        seal_subwindow()                  # period boundary: summarise
        [expire_subwindow()]              # once > N/P summaries are live
        compute_result()                  # answer for the current window

    Implementations keep whatever per-sub-window summaries they need
    (quantile vectors for QLOVE, sketches for CMQS/Random/Moment, raw
    buffers for Exact) and must expire their own oldest summary.
    """

    @abstractmethod
    def accumulate(self, event: Event) -> None:
        """Fold an event into the in-flight sub-window."""

    @abstractmethod
    def seal_subwindow(self) -> None:
        """Close the in-flight sub-window and start a new one."""

    @abstractmethod
    def expire_subwindow(self) -> None:
        """Drop the oldest sealed sub-window from the window state."""

    @abstractmethod
    def compute_result(self) -> R:
        """Produce the query result over all live sub-windows."""

    def accumulate_batch(self, chunk: "Chunk") -> None:
        """Fold a whole chunk into the in-flight sub-window.

        The engine guarantees a chunk never straddles a period boundary (it
        slices at boundaries first), so implementations may treat the whole
        chunk as belonging to the current sub-window.
        """
        for event in chunk.events():
            self.accumulate(event)

    def merge(self, other: "SubWindowOperator") -> None:
        """Fold another operator's window state into this one.

        The contract mirrors :meth:`QuantilePolicy.merge
        <repro.sketches.base.QuantilePolicy.merge>`: sealed sub-windows
        and the in-flight sub-window both merge, so shard accumulators
        (which never seal) and full windows combine through the same
        call.  Operators that cannot merge keep the default, which
        raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merge()"
        )

    def reset(self) -> None:
        """Discard all state (used when a stream is restarted)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support reset()"
        )

    # ------------------------------------------------------------------
    # Durable state (checkpoint / restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot of the operator's window state.

        Implemented by operators that support engine checkpointing
        (:class:`~repro.sketches.base.PolicyOperator` delegates to the
        wrapped policy's ``to_state``); the default raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support to_state()"
        )

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`to_state` (resume)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support restore_state()"
        )
