"""Red-black tree keyed by value with per-node frequency counts.

This is the Level-1 state structure from Section 3.1 of the paper: incoming
elements are kept in a compressed ``{(value, frequency)}`` form, ordered by
value so that quantiles can be answered by an in-order traversal without a
sort.  The tree follows the classic Guibas–Sedgewick / CLRS formulation with
a shared NIL sentinel, and is additionally augmented with subtree frequency
sums (``weight``) so the r-th smallest element can also be located in
O(log n) — used by the Exact baseline and by property tests.

Frequencies make this a compressed multiset: inserting a duplicate key only
increments a counter, which is the data-redundancy optimisation the paper
relies on for both space and throughput (Section 3.2).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

_RED = 0
_BLACK = 1


class _Node:
    """Internal tree node: ``key`` is the element value, ``count`` its frequency."""

    __slots__ = ("key", "count", "weight", "color", "left", "right", "parent")

    def __init__(self, key: float, count: int, nil: "_Node") -> None:
        self.key = key
        self.count = count
        self.weight = count  # subtree frequency sum (self included)
        self.color = _RED
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Ordered map from value to frequency with O(log n) order statistics.

    The public surface mirrors what Algorithm 1 in the paper needs:

    - :meth:`insert` — ``Accumulate``: add ``count`` occurrences of ``key``.
    - :meth:`remove` — ``Deaccumulate``: drop ``count`` occurrences, deleting
      the node once its frequency reaches zero (Exact baseline, Section 5.1).
    - :meth:`items` — sorted in-order traversal of ``(value, frequency)``.
    - :meth:`select` — value at 1-based rank r among all (weighted) elements.
    - :meth:`rank_of` — number of elements strictly smaller than a value.
    """

    __slots__ = ("_nil", "_root", "_unique", "_total")

    def __init__(self) -> None:
        nil = _Node.__new__(_Node)
        nil.key = 0.0
        nil.count = 0
        nil.weight = 0
        nil.color = _BLACK
        nil.left = nil
        nil.right = nil
        nil.parent = nil
        self._nil = nil
        self._root = nil
        self._unique = 0
        self._total = 0

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of unique keys in the tree."""
        return self._unique

    @property
    def total(self) -> int:
        """Total number of elements counting frequencies."""
        return self._total

    def __bool__(self) -> bool:
        return self._unique > 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, key: float) -> int:
        """Return the frequency of ``key`` (0 when absent)."""
        node = self._find(key)
        return node.count if node is not self._nil else 0

    def __contains__(self, key: float) -> bool:
        return self._find(key) is not self._nil

    def min_key(self) -> float:
        """Smallest key; raises ``KeyError`` on an empty tree."""
        if self._root is self._nil:
            raise KeyError("min_key() on empty tree")
        return self._minimum(self._root).key

    def max_key(self) -> float:
        """Largest key; raises ``KeyError`` on an empty tree."""
        if self._root is self._nil:
            raise KeyError("max_key() on empty tree")
        return self._maximum(self._root).key

    def items(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(key, frequency)`` pairs in increasing key order.

        Iterative in-order traversal; safe for the large sub-windows used in
        benchmarks where recursion would exhaust the stack.
        """
        nil = self._nil
        stack: list[_Node] = []
        node = self._root
        while stack or node is not nil:
            while node is not nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.count
            node = node.right

    def items_descending(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(key, frequency)`` pairs in decreasing key order."""
        nil = self._nil
        stack: list[_Node] = []
        node = self._root
        while stack or node is not nil:
            while node is not nil:
                stack.append(node)
                node = node.right
            node = stack.pop()
            yield node.key, node.count
            node = node.left

    def select(self, rank: int) -> float:
        """Value at 1-based ``rank`` among all elements (with frequencies).

        ``select(1)`` is the minimum, ``select(total)`` the maximum.
        """
        if rank < 1 or rank > self._total:
            raise IndexError(f"rank {rank} out of range 1..{self._total}")
        node = self._root
        while True:
            left_weight = node.left.weight
            if rank <= left_weight:
                node = node.left
            elif rank <= left_weight + node.count:
                return node.key
            else:
                rank -= left_weight + node.count
                node = node.right

    def rank_of(self, key: float) -> int:
        """Number of elements strictly smaller than ``key``."""
        node = self._root
        nil = self._nil
        below = 0
        while node is not nil:
            if key < node.key:
                node = node.left
            elif key > node.key:
                below += node.left.weight + node.count
                node = node.right
            else:
                return below + node.left.weight
        return below

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: float, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key`` (Accumulate)."""
        if count <= 0:
            raise ValueError("count must be positive")
        nil = self._nil
        parent = nil
        node = self._root
        while node is not nil:
            parent = node
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                node.count += count
                self._total += count
                self._update_weights_upward(node)
                return
        fresh = _Node(key, count, nil)
        fresh.parent = parent
        if parent is nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._unique += 1
        self._total += count
        self._update_weights_upward(fresh)
        self._insert_fixup(fresh)

    def remove(self, key: float, count: int = 1) -> None:
        """Drop ``count`` occurrences of ``key`` (Deaccumulate).

        Deletes the node when its frequency reaches zero, as the Exact
        baseline in Section 5.1 does.  Raises ``KeyError`` if the key is
        absent or holds fewer than ``count`` occurrences.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        node = self._find(key)
        if node is self._nil:
            raise KeyError(key)
        if node.count < count:
            raise KeyError(f"key {key!r} has only {node.count} occurrences")
        if node.count > count:
            node.count -= count
            self._total -= count
            self._update_weights_upward(node)
            return
        self._total -= count
        self._unique -= 1
        self._delete_node(node)

    def clear(self) -> None:
        """Discard all entries."""
        self._root = self._nil
        self._unique = 0
        self._total = 0

    # ------------------------------------------------------------------
    # Internals — CLRS red-black machinery with weight maintenance
    # ------------------------------------------------------------------
    def _find(self, key: float) -> _Node:
        node = self._root
        nil = self._nil
        while node is not nil:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return node
        return nil

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _maximum(self, node: _Node) -> _Node:
        while node.right is not self._nil:
            node = node.right
        return node

    def _update_weights_upward(self, node: _Node) -> None:
        nil = self._nil
        while node is not nil:
            node.weight = node.count + node.left.weight + node.right.weight
            node = node.parent

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        y.weight = x.weight
        x.weight = x.count + x.left.weight + x.right.weight

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        y.weight = x.weight
        x.weight = x.count + x.left.weight + x.right.weight

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color == _RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color == _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    grand.color = _RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle.color == _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    grand.color = _RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._rotate_left(z.parent.parent)
        self._root.color = _BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z: _Node) -> None:
        nil = self._nil
        y = z
        y_original_color = y.color
        if z.left is nil:
            x = z.right
            self._transplant(z, z.right)
            fix_from: Optional[_Node] = x.parent
        elif z.right is nil:
            x = z.left
            self._transplant(z, z.left)
            fix_from = x.parent
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
                fix_from = y
            else:
                fix_from = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if fix_from is not None:
            self._update_weights_upward(fix_from)
        if y_original_color == _BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color == _BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == _RED:
                    w.color = _BLACK
                    x.parent.color = _RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color == _BLACK and w.right.color == _BLACK:
                    w.color = _RED
                    x = x.parent
                else:
                    if w.right.color == _BLACK:
                        w.left.color = _BLACK
                        w.color = _RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = _BLACK
                    w.right.color = _BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color == _RED:
                    w.color = _BLACK
                    x.parent.color = _RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color == _BLACK and w.left.color == _BLACK:
                    w.color = _RED
                    x = x.parent
                else:
                    if w.left.color == _BLACK:
                        w.right.color = _BLACK
                        w.color = _RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = _BLACK
                    w.left.color = _BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = _BLACK

    # ------------------------------------------------------------------
    # Invariant checking (used by tests; not on hot paths)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate red-black and weight invariants; raises ``AssertionError``.

        Checks: root is black, no red node has a red child, every root-to-nil
        path has the same black height, keys are strictly increasing in-order,
        and every ``weight`` equals the subtree frequency sum.
        """
        nil = self._nil
        if self._root.color != _BLACK:
            raise AssertionError("root must be black")

        def walk(node: _Node) -> Tuple[int, int]:
            if node is nil:
                return 1, 0
            if node.color == _RED:
                if node.left.color == _RED or node.right.color == _RED:
                    raise AssertionError("red node with red child")
            if node.left is not nil and node.left.key >= node.key:
                raise AssertionError("left child key not smaller")
            if node.right is not nil and node.right.key <= node.key:
                raise AssertionError("right child key not larger")
            lh, lw = walk(node.left)
            rh, rw = walk(node.right)
            if lh != rh:
                raise AssertionError("black-height mismatch")
            weight = lw + rw + node.count
            if node.weight != weight:
                raise AssertionError(
                    f"weight mismatch at {node.key}: {node.weight} != {weight}"
                )
            return lh + (1 if node.color == _BLACK else 0), weight

        _, total = walk(self._root)
        if total != self._total:
            raise AssertionError("total count mismatch")
