"""GK internals: capacity mode, rank bounds, interpolated scans."""

import random

import numpy as np
import pytest

from repro.sketches.gk import GKSummary, interpolated_rank_value


class TestCapacityMode:
    def test_capacity_bounds_tuples(self):
        s = GKSummary(0.01, capacity=100)
        rng = random.Random(0)
        for _ in range(10_000):
            s.insert(rng.uniform(0, 1e6))
        assert s.tuple_count <= 100 + 16 + 100 // 8

    def test_capacity_preserves_extremes(self):
        s = GKSummary(0.01, capacity=32)
        values = [random.Random(1).uniform(0, 1000) for _ in range(5000)]
        for v in values:
            s.insert(v)
        items = [v for v, _ in s.weighted_items()]
        assert min(items) == min(values)
        assert max(items) == max(values)

    def test_capacity_weight_conservation(self):
        s = GKSummary(0.05, capacity=50)
        for v in range(3000):
            s.insert(float(v))
        assert sum(w for _, w in s.weighted_items()) == 3000

    def test_capacity_uniform_granularity(self):
        # No tuple should absorb a disproportionate share of the stream —
        # the property that keeps tail values usable (DESIGN.md §5.6).
        s = GKSummary(0.02, capacity=200)
        rng = random.Random(2)
        for _ in range(20_000):
            s.insert(rng.lognormvariate(7, 0.5))
        weights = [w for _, w in s.weighted_items()]
        assert max(weights) < 20_000 / 200 * 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GKSummary(0.1, capacity=2)

    def test_capacity_accuracy(self):
        rng = random.Random(3)
        values = [rng.uniform(0, 1e6) for _ in range(20_000)]
        s = GKSummary(0.02, capacity=500)
        for v in values:
            s.insert(v)
        ordered = np.sort(values)
        for phi in (0.5, 0.9, 0.99):
            est = s.query(phi)
            import math

            target = max(1, math.ceil(phi * len(values)))
            lo = int(np.searchsorted(ordered, est, side="left")) + 1
            hi = int(np.searchsorted(ordered, est, side="right"))
            err = 0 if lo <= target <= hi else min(abs(target - lo), abs(target - hi))
            assert err / len(values) < 0.02


class TestRankBounds:
    def test_bounds_bracket_true_rank(self):
        rng = random.Random(4)
        values = sorted(rng.uniform(0, 1000) for _ in range(2000))
        s = GKSummary(0.05)
        for v in values:
            s.insert(v)
        for probe_rank in (100, 1000, 1900):
            probe = values[probe_rank - 1]
            rmin, rmax = s.rank_bounds(probe)
            assert rmin - 2 * 0.05 * 2000 <= probe_rank <= rmax + 2 * 0.05 * 2000

    def test_below_min_is_zero(self):
        s = GKSummary(0.1)
        s.insert(10.0)
        assert s.rank_bounds(5.0) == (0, 0)

    def test_above_max_is_n(self):
        s = GKSummary(0.1)
        for v in (1.0, 2.0, 3.0):
            s.insert(v)
        assert s.rank_bounds(99.0) == (3, 3)


class TestInterpolatedRankValue:
    def test_unit_weights_exact(self):
        items = [(float(v), 1) for v in range(1, 11)]
        for rank in range(1, 11):
            assert interpolated_rank_value(items, rank) == float(rank)

    def test_interpolates_inside_block(self):
        # Block of 10 elements between 0 and 100: rank 5 -> halfway.
        items = [(0.0, 1), (100.0, 10)]
        value = interpolated_rank_value(items, 6)
        assert 40.0 <= value <= 60.0

    def test_first_block_returns_value(self):
        items = [(5.0, 3), (9.0, 2)]
        assert interpolated_rank_value(items, 2) == 5.0

    def test_beyond_total_returns_last(self):
        items = [(1.0, 1), (2.0, 1)]
        assert interpolated_rank_value(items, 99) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            interpolated_rank_value([], 1)
