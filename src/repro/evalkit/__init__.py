"""Evaluation harness: metrics, runners and the paper's experiments.

- :mod:`~repro.evalkit.metrics` — the paper's metrics (Section 5.1):
  average relative value error, normalised rank error e', space in
  variables.
- :mod:`~repro.evalkit.runner` — drives any policy through the streaming
  engine against the exact oracle and accumulates per-quantile errors.
- :mod:`~repro.evalkit.throughput` — single-threaded elements/second.
- :mod:`~repro.evalkit.reporting` — fixed-width/markdown table rendering.
- :mod:`~repro.evalkit.experiments` — one module per paper table/figure;
  see DESIGN.md §4 for the experiment index.
- :mod:`~repro.evalkit.cli` — ``python -m repro <experiment>``.
"""

from repro.evalkit.metrics import (
    ErrorAccumulator,
    exact_quantile,
    exact_quantiles,
    rank_error,
    relative_value_error,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import AccuracyReport, run_accuracy
from repro.evalkit.throughput import (
    ThroughputResult,
    compare_ingest_paths,
    measure_throughput,
    measure_throughput_batched,
    measure_throughput_sharded,
)

__all__ = [
    "AccuracyReport",
    "ErrorAccumulator",
    "Table",
    "ThroughputResult",
    "compare_ingest_paths",
    "exact_quantile",
    "exact_quantiles",
    "measure_throughput",
    "measure_throughput_batched",
    "measure_throughput_sharded",
    "rank_error",
    "relative_value_error",
    "run_accuracy",
]
