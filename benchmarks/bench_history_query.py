"""Historical range-query performance over the segment store (PR 7).

Measures the two costs a dashboard pays when it asks the store instead of
the live monitor: segment *merge throughput* (how many per-period sketch
deltas fold per second) and end-to-end *range-query latency* as the
queried range widens.  Also quantifies what compaction buys: the same
wide range answered from 8-period rollups instead of fine segments.

Emits a ``history_query`` section into the shared ``--bench-json``
artifact (events/s-style schema 1), which CI uploads and
``BENCH_trajectory.json`` pins a sample of.
"""

import time

import pytest

from repro.service.monitor import Monitor
from repro.service.spec import MetricSpec
from repro.store import HistoryWriter, SegmentStore, query_range
from repro.workloads import generate_netmon

PERIOD = 1_000
PERIODS = 64
PHIS = [0.5, 0.9, 0.99]

#: Range widths (in periods) the latency sweep queries.
WIDTHS = [1, 4, 16, 64]

#: Policies to time: the paper's sketch and the dense baseline.
POLICIES = ["qlove", "exact"]


@pytest.fixture(scope="module")
def history(tmp_path_factory):
    """A 64-period store per policy, written once for the whole module."""
    values = generate_netmon(PERIODS * PERIOD, seed=0)
    directory = str(tmp_path_factory.mktemp("bench") / "hist")
    monitor = Monitor()
    for policy in POLICIES:
        monitor.register(
            MetricSpec(
                name=policy,
                quantiles=PHIS,
                window={"size": 4 * PERIOD, "period": PERIOD},
                policy=policy,
            )
        )
    writer = HistoryWriter(directory)
    writer.attach(monitor)
    for policy in POLICIES:
        monitor.observe_batch(policy, values)
    writer.close()
    return directory


def _time_queries(store, metric, width, *, repeat=5):
    """Best-of-``repeat`` latency for a width-period range query."""
    best = float("inf")
    for index in range(repeat):
        start = (index * 3) % (PERIODS - width + 1)
        t0 = time.perf_counter()
        query_range(store, metric, start, start + width)
        best = min(best, time.perf_counter() - t0)
    return best


def test_history_range_query_latency(benchmark, history, bench_json_sink):
    """Table: latency vs range width, merge rate, and the rollup win."""

    def run():
        results = {}
        store = SegmentStore(history)
        for policy in POLICIES:
            widths = {w: _time_queries(store, policy, w) for w in WIDTHS}
            full = widths[PERIODS]
            results[policy] = {
                "latency_s_by_width": widths,
                "segments_merged_per_s": PERIODS / full,
            }
        store.close()

        # What compaction buys: the same full-range query over rollups.
        store = SegmentStore(history)
        store.compact(rollup_periods=8, min_age=0)
        for policy in POLICIES:
            compacted = _time_queries(store, policy, PERIODS)
            results[policy]["latency_s_full_range_compacted"] = compacted
            results[policy]["compaction_speedup"] = (
                results[policy]["latency_s_by_width"][PERIODS] / compacted
            )
        store.close()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_json_sink(
        "history_query",
        {
            "workload": "netmon",
            "periods": PERIODS,
            "period_events": PERIOD,
            "widths": WIDTHS,
            "policies": {
                policy: {
                    "segments_merged_per_s": stats["segments_merged_per_s"],
                    "latency_ms_by_width": {
                        str(width): latency * 1e3
                        for width, latency in stats["latency_s_by_width"].items()
                    },
                    "full_range_compacted_ms": stats[
                        "latency_s_full_range_compacted"
                    ]
                    * 1e3,
                    "compaction_speedup": stats["compaction_speedup"],
                }
                for policy, stats in results.items()
            },
        },
    )

    print()
    print(f"history range-query latency, {PERIODS} periods x {PERIOD:,} events")
    for policy, stats in results.items():
        row = "  ".join(
            f"w={width}: {stats['latency_s_by_width'][width] * 1e3:.2f}ms"
            for width in WIDTHS
        )
        print(
            f"  {policy:<6} {row}  "
            f"merge={stats['segments_merged_per_s']:,.0f} seg/s  "
            f"rollup-x{stats['compaction_speedup']:.1f}"
        )

    for policy, stats in results.items():
        # Latency must grow with range width (more segments to merge)...
        assert (
            stats["latency_s_by_width"][64] > stats["latency_s_by_width"][1]
        ), policy
        # ...and rollups must not make the full-range query slower.
        assert stats["compaction_speedup"] > 0.8, policy
        # The store must fold at least hundreds of segments per second.
        assert stats["segments_merged_per_s"] > 100, policy


def test_history_write_throughput(benchmark, history, bench_json_sink):
    """Recorder overhead: periods/s the writer sustains at ingest time."""
    values = generate_netmon(PERIODS * PERIOD, seed=1)

    def run(tmp=[0]):
        tmp[0] += 1
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            monitor = Monitor()
            monitor.register(
                MetricSpec(
                    name="rtt",
                    quantiles=PHIS,
                    window={"size": 4 * PERIOD, "period": PERIOD},
                    policy="qlove",
                )
            )
            writer = HistoryWriter(scratch + "/hist")
            writer.attach(monitor)
            t0 = time.perf_counter()
            monitor.observe_batch("rtt", values)
            elapsed = time.perf_counter() - t0
            assert writer.segments_written == PERIODS
            writer.close()
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    events_per_s = (PERIODS * PERIOD) / elapsed

    bench_json_sink(
        "history_write",
        {
            "workload": "netmon",
            "periods": PERIODS,
            "period_events": PERIOD,
            "events_per_s": events_per_s,
            "periods_per_s": PERIODS / elapsed,
        },
    )
    print(f"\nhistory write path: {events_per_s:,.0f} ev/s with recording on")
    assert events_per_s > 10_000
