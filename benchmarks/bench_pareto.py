"""Section 5.4: data-skewness study on the Pareto dataset."""


def test_pareto(run_experiment):
    result = run_experiment("pareto", scale=0.25, evaluations=16)
    data = result.data

    # Paper: QLOVE 4.00% at Q0.999 vs AM 29.22% and Random 35.17%.
    assert data["qlove"][0.999] < data["am"][0.999]
    assert data["qlove"][0.999] < data["random"][0.999]
    assert data["qlove"][0.999] < 0.15
    # Non-high quantiles remain accurate for QLOVE even under heavy skew.
    assert data["qlove"][0.5] < 0.02
