"""Side-by-side comparison of every sliding-window quantile policy.

Streams the same heavy-tailed telemetry through QLOVE, Exact, CMQS, AM,
Random and Moment, then prints the accuracy/space/throughput trade-off —
a miniature Table 1 + Figure 4 for your own data.

Run:  python examples/sketch_comparison.py
"""

import time

import numpy as np

from repro import CountWindow, make_policy
from repro.evalkit import run_accuracy
from repro.evalkit.throughput import measure_throughput
from repro.workloads import generate_netmon

PHIS = [0.5, 0.99, 0.999]
WINDOW = CountWindow(size=32_768, period=4_096)
STREAM = 131_072

POLICIES = [
    ("qlove", {}),
    ("exact", {}),
    ("cmqs", {"epsilon": 0.02}),
    ("am", {"epsilon": 0.02}),
    ("random", {"epsilon": 0.02, "seed": 0}),
    ("moment", {"k": 12}),
]


def main() -> None:
    values = generate_netmon(STREAM, seed=0)
    print(f"dataset: {STREAM:,} NetMon-like RTTs; window {WINDOW.size:,} "
          f"/ period {WINDOW.period:,}\n")
    header = (f"{'policy':<8}" + "".join(f"  VE%Q{phi:<6}" for phi in PHIS)
              + f"  {'space':>8}  {'M ev/s':>7}")
    print(header)
    print("-" * len(header))
    for name, params in POLICIES:
        started = time.perf_counter()
        report = run_accuracy(name, values, WINDOW, PHIS, **params)
        del started
        throughput = measure_throughput(
            lambda name=name, params=params: make_policy(name, PHIS, WINDOW, **params),
            values,
            WINDOW,
        )
        errors = "".join(
            f"  {report.value_error_percent(phi):>9.2f}" for phi in PHIS
        )
        print(f"{name:<8}{errors}  {report.observed_space:>8,}  "
              f"{throughput.million_events_per_second:>7.3f}")

    print("\nReading guide: QLOVE should dominate the tail (VE% Q0.999) at a")
    print("fraction of Exact's space; CMQS/AM bound rank error, which is why")
    print("their tail *value* error inflates on skewed telemetry.")


if __name__ == "__main__":
    main()
