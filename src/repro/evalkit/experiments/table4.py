"""Table 4: sample-k merging under injected bursty traffic.

NetMon with the Section 5.3 burst injection (top N(1-phi) values of every
(N/P)-th sub-window scaled 10x), 128K window, periods 16K and 4K,
sample-k fractions 0 / 0.1 / 0.5.  Shape: fraction 0 leaves Q0.999 (and
Q0.99 at the small period) badly damaged; sampling repairs it, more so at
the larger fraction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import FewKConfig, QLOVEConfig
from repro.evalkit.experiments.common import (
    PAPER_WINDOW,
    ExperimentResult,
    describe_scale,
    percent,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon, inject_bursts

PAPER_PERIODS = (16_384, 4_096)
FRACTIONS = (0.0, 0.1, 0.5)
PHIS = (0.99, 0.999)
BURST_PHI = 0.999
BURST_FACTOR = 10.0


def run(
    scale: float = 1.0,
    seed: int = 0,
    evaluations: int = 16,
    periods: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Regenerate Table 4."""
    window_size = scaled(PAPER_WINDOW, scale)
    period_list = [scaled(p, scale) for p in (periods or PAPER_PERIODS)]
    headers = ["Fraction"]
    for period in period_list:
        headers += [f"{period} Q0.99", f"{period} Q0.999"]
    table = Table(
        f"Table 4: value error %% (and sample space) under bursts, "
        f"window={window_size}",
        headers,
    )
    data: Dict[float, Dict[int, Dict[float, float]]] = {}

    prepared = {}
    for period in period_list:
        n_sub = max(1, window_size // period)
        window = CountWindow(size=n_sub * period, period=period)
        base = generate_netmon(stream_length(window, evaluations), seed=seed)
        prepared[period] = (window, inject_bursts(base, window, phi=BURST_PHI, factor=BURST_FACTOR))

    for fraction in FRACTIONS:
        cells = []
        data[fraction] = {}
        for period in period_list:
            window, values = prepared[period]
            if fraction > 0:
                config = QLOVEConfig(
                    fewk=FewKConfig(samplek_fraction=fraction, ts_threshold=0)
                )
            else:
                config = QLOVEConfig()
            report = run_accuracy("qlove", values, window, PHIS, config=config)
            per_phi = {
                phi: report.errors.mean_value_error(phi) for phi in PHIS
            }
            data[fraction][period] = per_phi
            if config.fewk is not None:
                space = config.fewk.resolve_ks(BURST_PHI, window) * window.subwindow_count
            else:
                space = 0
            cells.append(f"{percent(per_phi[0.99])}")
            cells.append(f"{percent(per_phi[0.999])} ({space:,})")
        table.add_row(f"{fraction}", *cells)

    notes = describe_scale(scale) + (
        "\nBursts: top N(1-phi) values of every (N/P)-th sub-window x10, "
        "as in Section 5.3; ts_threshold=0 disables top-k so sample-k acts "
        "alone (the paper's configuration for this table)."
    )
    return ExperimentResult(name="table4", tables=[table], data=data, notes=notes)
