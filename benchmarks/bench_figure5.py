"""Figure 5: scalability — throughput vs window size on Normal/Uniform."""


def test_figure5(run_experiment):
    result = run_experiment("figure5", scale=0.1, evaluations=20)

    for dataset in ("Normal", "Uniform"):
        series = result.data[dataset]
        sizes = sorted(series)
        smallest, largest = sizes[0], sizes[-1]

        # QLOVE stays roughly flat across window sizes (paper: "consistent
        # throughput for all window sizes").
        qlove_rates = [series[s]["qlove"] for s in sizes]
        assert max(qlove_rates) / min(qlove_rates) < 3.0, dataset

        # Exact degrades once windows slide; the QLOVE advantage grows.
        ratio_small = series[smallest]["qlove"] / series[smallest]["exact"]
        ratio_large = series[largest]["qlove"] / series[largest]["exact"]
        assert ratio_large > ratio_small, dataset
        assert ratio_large > 1.5, dataset
