"""Label schemas, canonical series keys, and deterministic labelsets.

A *labeled* metric is a family of series: ``latency{region, host}`` is
one :class:`~repro.service.spec.MetricSpec` whose ``labels`` field
declares a schema, and every observed ``{region: ..., host: ...}``
labelset names one series of that family.  This module is the naming
layer everything else builds on:

- **Validation** — label names and values are checked up front with
  actionable errors (:func:`validate_label_schema`,
  :func:`canonical_labelset`), never mid-stream.
- **Canonical encoding** — a labelset encodes to one stable string
  (labels sorted by name, every component percent-encoded), and
  ``metric{enc}`` is the *series key*: the identifier used for series
  routing, store filenames, wire sequence spaces and group-by ordering.
  The encoding is injective, so two labelsets collide only if equal.
- **Length cap** — store filenames and wire keys must stay bounded, so
  an encoded labelset longer than :data:`MAX_ENCODED_LABELSET` is
  replaced by ``#<sha256-prefix>`` (deterministic, not decodable; the
  live index keeps the real labels, only *store-side* group-by loses
  them — see :func:`parse_series_key`).
- **Deterministic labelsets** — :func:`deterministic_labelsets` and
  :func:`series_slice` are the pure functions of ``(schema, n_series,
  fanout)`` and global stream position that the load generator, the
  offline monitor CLI and the equivalence batteries share, so served
  and offline labeled ingest remain byte-diffable.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple
from urllib.parse import quote, unquote

import numpy as np

#: Longest encoded labelset (the text between ``{`` and ``}``) stored
#: verbatim; anything longer is hashed (see module docstring).
MAX_ENCODED_LABELSET = 256

#: Valid label *names* (values may be any non-empty string).
_LABEL_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*\Z")

#: A canonical labelset: ``(name, value)`` pairs sorted by name.
LabelItems = Tuple[Tuple[str, str], ...]


def validate_label_schema(names: object, metric: str) -> Tuple[str, ...]:
    """Validate a spec's label schema; returns the sorted name tuple.

    A schema is a non-empty sequence of distinct label names matching
    ``[A-Za-z_][A-Za-z0-9_.-]*``.  Every rejection says what was passed
    and what is accepted.
    """
    if isinstance(names, (str, bytes)) or not isinstance(names, Sequence):
        raise ValueError(
            f"metric {metric!r}: labels must be a list of label names, got "
            f"{type(names).__name__}; e.g. labels=[\"region\", \"host\"]"
        )
    if not names:
        raise ValueError(
            f"metric {metric!r}: labels must be a non-empty list of label "
            "names (omit the field entirely for an unlabeled metric)"
        )
    for name in names:
        if not isinstance(name, str):
            raise ValueError(
                f"metric {metric!r}: label names must be strings, got "
                f"{name!r} ({type(name).__name__})"
            )
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(
                f"metric {metric!r}: invalid label name {name!r}; label "
                "names match [A-Za-z_][A-Za-z0-9_.-]* (values may be any "
                "non-empty string)"
            )
    duplicates = sorted({n for n in names if list(names).count(n) > 1})
    if duplicates:
        raise ValueError(
            f"metric {metric!r}: duplicate label name(s) {duplicates}; "
            "each label appears once in the schema"
        )
    return tuple(sorted(names))


def canonical_labelset(
    labels: object, schema: Sequence[str], metric: str
) -> LabelItems:
    """Validate one observed labelset against ``schema``; canonical form.

    The labelset must be a mapping carrying *exactly* the schema's label
    names, every value a non-empty string.  Returns ``(name, value)``
    pairs sorted by name — the canonical order every encoding, merge and
    group-by iteration uses.
    """
    if not isinstance(labels, Mapping):
        raise ValueError(
            f"metric {metric!r}: labels must be a {{name: value}} mapping, "
            f"got {type(labels).__name__}"
        )
    missing = sorted(set(schema) - set(labels))
    if missing:
        raise ValueError(
            f"metric {metric!r}: labelset is missing label(s) {missing}; "
            f"the schema is {sorted(schema)} and every observation must "
            "carry all of it"
        )
    extra = sorted(set(labels) - set(schema))
    if extra:
        raise ValueError(
            f"metric {metric!r}: unknown label(s) {extra}; the schema is "
            f"{sorted(schema)} — register the metric with these labels to "
            "use them"
        )
    items = []
    for name in sorted(schema):
        value = labels[name]
        if not isinstance(value, str) or not value:
            raise ValueError(
                f"metric {metric!r}: label {name!r} must be a non-empty "
                f"string, got {value!r} ({type(value).__name__})"
            )
        items.append((name, value))
    return tuple(items)


def encode_labelset(items: LabelItems) -> str:
    """The canonical encoded form: ``k=v,k2=v2`` with each component
    percent-encoded (``quote(..., safe="")``), so ``=``, ``,``, ``{``,
    ``}`` and ``%`` inside values never collide with the syntax."""
    return ",".join(
        f"{quote(name, safe='')}={quote(value, safe='')}" for name, value in items
    )


def series_key(metric: str, items: LabelItems) -> str:
    """The series identifier: ``metric{enc}``, hashed past the length cap.

    Above :data:`MAX_ENCODED_LABELSET` the encoding is replaced with
    ``#`` + 32 hex chars of its SHA-256 — still deterministic and
    collision-free for practical purposes, but not decodable (the live
    index keeps the labels alongside; only store-side group-by needs to
    decode keys, and it reports hashed keys with an actionable error).
    """
    encoded = encode_labelset(items)
    if len(encoded) > MAX_ENCODED_LABELSET:
        digest = hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:32]
        encoded = f"#{digest}"
    return f"{metric}{{{encoded}}}"


class ParsedSeriesKey(NamedTuple):
    """A decoded series key: the base metric, the labels (None when the
    key was length-capped into a hash), and whether it was hashed."""

    metric: str
    labels: Optional[Dict[str, str]]
    hashed: bool


def parse_series_key(key: str) -> ParsedSeriesKey:
    """Decode a series key produced by :func:`series_key`.

    Raises ``ValueError`` for strings that are not series keys (no
    ``{...}`` suffix) — callers scanning a store use
    :func:`try_parse_series_key` to skip plain metric names instead.
    """
    if not key.endswith("}") or "{" not in key:
        raise ValueError(
            f"{key!r} is not a series key; expected 'metric{{k=v,...}}' as "
            "produced by series_key()"
        )
    split = key.rindex("{")
    metric, encoded = key[:split], key[split + 1 : -1]
    if encoded.startswith("#"):
        return ParsedSeriesKey(metric=metric, labels=None, hashed=True)
    labels: Dict[str, str] = {}
    for part in encoded.split(","):
        name, eq, value = part.partition("=")
        if not eq:
            raise ValueError(
                f"series key {key!r}: malformed label component {part!r} "
                "(expected 'name=value')"
            )
        labels[unquote(name)] = unquote(value)
    return ParsedSeriesKey(metric=metric, labels=labels, hashed=False)


def try_parse_series_key(key: str) -> Optional[ParsedSeriesKey]:
    """:func:`parse_series_key`, or ``None`` for plain metric names."""
    if not key.endswith("}") or "{" not in key:
        return None
    try:
        return parse_series_key(key)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Deterministic labeled workloads (shared by loadgen / CLI / batteries)
# ----------------------------------------------------------------------
def deterministic_labelsets(
    schema: Sequence[str], n_series: int, fanout: int
) -> List[Dict[str, str]]:
    """``n_series`` labelsets, a pure function of the arguments.

    The schema's first label (sorted order) is the *group* dimension: its
    value cycles through ``fanout`` distinct values, so group-by over it
    yields non-trivial groups.  Every other label gets a per-series
    unique value, so all ``n_series`` labelsets are distinct.  Values
    are zero-padded, making lexicographic (canonical) order equal
    numeric order.
    """
    if n_series < 1:
        raise ValueError(f"n_series must be >= 1, got {n_series}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    names = sorted(validate_label_schema(schema, "deterministic_labelsets"))
    sets: List[Dict[str, str]] = []
    for j in range(n_series):
        labels = {names[0]: f"{names[0]}-{j % fanout:03d}"}
        for name in names[1:]:
            labels[name] = f"{name}-{j:06d}"
        sets.append(labels)
    return sets


def series_slice(
    values: np.ndarray, offset: int, n_series: int, index: int
) -> np.ndarray:
    """The elements of a block that belong to series ``index``.

    Global event ``i`` belongs to series ``i % n_series``; ``offset`` is
    the block's global start position, so the assignment depends only on
    stream position — never on block boundaries — exactly like the
    round-robin :class:`~repro.streaming.partition.StreamPartitioner`.
    """
    if n_series < 1:
        raise ValueError(f"n_series must be >= 1, got {n_series}")
    first = (index - offset) % n_series
    return values[first::n_series]
