"""Network-health dashboard over a simulated datacenter (Pingmesh-style).

The motivating scenario of the paper's introduction: a monitoring system
ingests RTT probes from every server pair, keeps sliding-window
quantiles, and raises alerts when tail latency crosses a threshold.  A
congestion incident is injected halfway through, and QLOVE's few-k
merging (with Mann-Whitney burst detection) keeps the Q0.999 estimate
honest while it lasts.

Run:  python examples/netmon_dashboard.py
"""

from repro import (
    CountWindow,
    FewKConfig,
    PolicyOperator,
    QLOVEConfig,
    QLOVEPolicy,
    Query,
    StreamEngine,
)
from repro.workloads import Datacenter, DatacenterConfig, Incident

PHIS = [0.5, 0.99, 0.999]
WINDOW = CountWindow(size=40_000, period=4_000)
PROBES = 120_000
P999_ALERT_US = 25_000.0


def main() -> None:
    config = DatacenterConfig(pods=4, racks_per_pod=4, servers_per_rack=8)
    incident = Incident(pod=2, start=0.6, end=0.9, factor=12.0)
    datacenter = Datacenter(config, incidents=[incident], seed=11)

    policy = QLOVEPolicy(
        PHIS,
        WINDOW,
        QLOVEConfig(fewk=FewKConfig(samplek_fraction=0.5)),
    )
    query = (
        Query(datacenter.probe_stream(PROBES, probes_per_second=100_000.0))
        .where(lambda e: e.error_code == 0)  # drop failed probes
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(policy))
    )

    print(f"pingmesh dashboard: {datacenter.server_count} servers, "
          f"incident on pod {incident.pod} during t=[{incident.start}, {incident.end})s\n")
    print(f"{'t(s)':>6}  {'Q0.5':>7}  {'Q0.99':>8}  {'Q0.999':>8}  "
          f"{'source':>8}  alert")
    for result in StreamEngine().run(query):
        t = result.end / 100_000.0  # probes -> seconds
        q50 = result.result[0.5]
        q99 = result.result[0.99]
        q999 = result.result[0.999]
        source = policy.result_sources()[0.999]
        alert = "P999 LATENCY" if q999 > P999_ALERT_US else ""
        print(f"{t:6.2f}  {q50:7.0f}  {q99:8.0f}  {q999:8.0f}  "
              f"{source:>8}  {alert}")

    print("\nDashboard note: 'samplek' provenance marks evaluations where "
          "burst detection rerouted the tail estimate through sample-k "
          "merging (Section 4.3 of the paper).")


if __name__ == "__main__":
    main()
