"""GK summary: deterministic rank-error guarantee and combination."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.gk import GKSummary, combined_quantile, merge_summaries


def max_rank_error(values, summary, phis):
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    worst = 0.0
    for phi in phis:
        estimate = summary.query(phi)
        target = max(1, math.ceil(phi * n))
        lo = int(np.searchsorted(ordered, estimate, side="left")) + 1
        hi = int(np.searchsorted(ordered, estimate, side="right"))
        if lo <= target <= hi:
            continue
        worst = max(worst, min(abs(target - lo), abs(target - hi)) / n)
    return worst


class TestGKBasics:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            GKSummary(0.0)
        with pytest.raises(ValueError):
            GKSummary(1.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            GKSummary(0.1).query(0.5)

    def test_invalid_phi(self):
        s = GKSummary(0.1)
        s.insert(1.0)
        with pytest.raises(ValueError):
            s.query(0.0)

    def test_single_value(self):
        s = GKSummary(0.1)
        s.insert(42.0)
        assert s.query(0.5) == 42.0
        assert s.n == 1

    def test_extremes_preserved(self):
        s = GKSummary(0.05)
        rng = random.Random(1)
        values = [rng.uniform(0, 1000) for _ in range(5000)]
        for v in values:
            s.insert(v)
        items = [v for v, _ in s.weighted_items()]
        assert min(items) == min(values)
        assert max(items) == max(values)

    def test_weight_conservation(self):
        s = GKSummary(0.05)
        for v in range(1000):
            s.insert(float(v))
        assert sum(w for _, w in s.weighted_items()) == 1000

    def test_compression_bounds_space(self):
        s = GKSummary(0.02)
        rng = random.Random(2)
        for _ in range(20000):
            s.insert(rng.gauss(0, 1))
        # Far fewer tuples than elements; generous constant-factor bound.
        assert s.tuple_count < 20000 / 10
        assert s.tuple_count < 8 * GKSummary.analytical_tuples(0.02, 20000)

    def test_weighted_insert(self):
        s = GKSummary(0.1)
        s.insert(5.0, weight=10)
        s.insert(1.0, weight=10)
        assert s.n == 20
        assert s.query(0.25) == 1.0
        assert s.query(0.75) == 5.0

    def test_weighted_insert_invalid(self):
        with pytest.raises(ValueError):
            GKSummary(0.1).insert(1.0, weight=0)


class TestGKGuarantee:
    @pytest.mark.parametrize("epsilon", [0.01, 0.02, 0.05, 0.1])
    def test_rank_error_bounded_uniform(self, epsilon):
        rng = random.Random(7)
        values = [rng.uniform(0, 1e6) for _ in range(20000)]
        s = GKSummary(epsilon)
        for v in values:
            s.insert(v)
        err = max_rank_error(values, s, [0.01, 0.1, 0.5, 0.9, 0.99, 0.999])
        assert err <= epsilon

    def test_rank_error_bounded_sorted_input(self):
        values = [float(i) for i in range(10000)]
        s = GKSummary(0.02)
        for v in values:
            s.insert(v)
        assert max_rank_error(values, s, [0.5, 0.9, 0.99]) <= 0.02

    def test_rank_error_bounded_reverse_sorted(self):
        values = [float(10000 - i) for i in range(10000)]
        s = GKSummary(0.02)
        for v in values:
            s.insert(v)
        assert max_rank_error(values, s, [0.5, 0.9, 0.99]) <= 0.02

    def test_rank_error_bounded_heavy_tail(self, heavy_tailed_values):
        s = GKSummary(0.02)
        for v in heavy_tailed_values:
            s.insert(float(v))
        assert max_rank_error(heavy_tailed_values, s, [0.5, 0.99, 0.999]) <= 0.02

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=2000))
    def test_property_rank_error(self, raw):
        values = [float(v) for v in raw]
        s = GKSummary(0.05)
        for v in values:
            s.insert(v)
        assert max_rank_error(values, s, [0.25, 0.5, 0.75, 0.95]) <= 0.05


class TestCombination:
    def test_combined_quantile_two_summaries(self):
        a, b = GKSummary(0.01), GKSummary(0.01)
        for v in range(1000):
            a.insert(float(v))
        for v in range(1000, 2000):
            b.insert(float(v))
        got = combined_quantile([a, b], [0.5, 0.99])
        assert got[0] == pytest.approx(1000, abs=2000 * 0.02)
        assert got[1] == pytest.approx(1980, abs=2000 * 0.02)

    def test_combined_empty_raises(self):
        with pytest.raises(ValueError):
            combined_quantile([GKSummary(0.1)], [0.5])

    def test_combined_rank_error(self):
        rng = random.Random(3)
        chunks = [[rng.uniform(0, 1e5) for _ in range(2000)] for _ in range(8)]
        summaries = []
        for chunk in chunks:
            s = GKSummary(0.01)
            for v in chunk:
                s.insert(v)
            summaries.append(s)
        merged_values = [v for chunk in chunks for v in chunk]
        phis = [0.5, 0.9, 0.99]
        got = combined_quantile(summaries, phis)
        ordered = np.sort(merged_values)
        n = len(ordered)
        for phi, estimate in zip(phis, got):
            target = max(1, math.ceil(phi * n))
            lo = int(np.searchsorted(ordered, estimate, side="left")) + 1
            hi = int(np.searchsorted(ordered, estimate, side="right"))
            err = 0 if lo <= target <= hi else min(abs(target - lo), abs(target - hi))
            assert err / n <= 0.02

    def test_merge_summaries_preserves_weight(self):
        a, b = GKSummary(0.02), GKSummary(0.02)
        for v in range(500):
            a.insert(float(v))
            b.insert(float(v + 500))
        merged = merge_summaries([a, b], 0.02)
        assert merged.n == 1000
        assert max_rank_error(
            [float(v) for v in range(1000)], merged, [0.5, 0.9]
        ) <= 0.08  # construction + child errors compose
