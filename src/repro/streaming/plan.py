"""Execution plans: one declarative knob for *how* a query runs.

PR 1 and PR 2 grew three ways to evaluate the same query — the per-event
reference loop, the batched chunk loop and the sharded
partition-and-merge loop — each with its own entry point.
:class:`ExecutionPlan` collapses that choice into a value handed to
:meth:`StreamEngine.execute <repro.streaming.engine.StreamEngine.execute>`:

``mode="auto"`` (the default)
    Pick the path from what the query carries: ``n_shards > 1`` selects
    sharded execution; a numpy-array or chunk source (or vectorised
    ``where_values``/``select_values`` stages) selects the batched loop;
    an event source (or event-level ``where``/``select`` stages) selects
    the per-event loop.

``mode="events" | "batched" | "sharded"``
    Force one path explicitly (the planner never second-guesses).

The plan also carries the execution parameters that used to be scattered
across the ``run_*`` helpers: shard count and partitioner, the
multiprocessing toggle, and the chunk size used when a raw value array
must be sliced into a chunk stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.streaming.partition import available_partitioners

if TYPE_CHECKING:
    from repro.sketches.base import QuantilePolicy
    from repro.streaming.checkpoint import EngineCheckpoint

#: Zero-argument callable building a fresh policy (sharded mode only).
PolicyFactory = Callable[[], "QuantilePolicy"]

#: Receives an EngineCheckpoint at every period boundary.
CheckpointSink = Callable[["EngineCheckpoint"], None]

#: The planner's recognised execution modes.
EXECUTION_MODES = ("auto", "events", "batched", "sharded")


@dataclass(frozen=True)
class ExecutionPlan:
    """How a query should be executed, independent of *what* it computes.

    Parameters
    ----------
    mode:
        ``"auto"`` (default), ``"events"``, ``"batched"`` or ``"sharded"``.
    n_shards:
        Shard count for sharded execution.  In ``auto`` mode any value
        above 1 selects the sharded path.
    partitioner:
        Chunk-stream partitioning strategy for sharded execution
        (``"round_robin"`` or ``"hash"``).
    parallel / processes:
        Ship per-shard partitions to a ``multiprocessing`` pool of this
        size (sharded mode only; the policy factory must be picklable).
    chunk_size:
        Slice length used when the query source is a raw numpy array and
        must be turned into a chunk stream.
    policy_factory:
        Fresh-policy builder for sharded execution (one instance per
        shard plus the master).  Required whenever the sharded path is
        selected; :meth:`MetricSpec.policy_factory
        <repro.service.spec.MetricSpec.policy_factory>` builds a
        picklable one from a declarative spec.
    checkpoint_sink:
        Called with an :class:`~repro.streaming.checkpoint.EngineCheckpoint`
        at every period boundary (count-windowed sub-window queries only)
        — the hook crash-recovery persistence plugs into.
    resume_from:
        An :class:`~repro.streaming.checkpoint.EngineCheckpoint` (or its
        JSON-loaded ``to_state()`` dict) to continue from.  The query's
        source must deliver only the elements after ``checkpoint.seen``
        (which counts **post-filter** elements — see
        :mod:`repro.streaming.checkpoint`); the resumed output is
        bit-identical to the uninterrupted run.
    """

    mode: str = "auto"
    n_shards: int = 1
    partitioner: str = "round_robin"
    parallel: bool = False
    processes: Optional[int] = None
    chunk_size: int = 65_536
    policy_factory: Optional[PolicyFactory] = field(default=None, compare=False)
    checkpoint_sink: Optional[CheckpointSink] = field(default=None, compare=False)
    resume_from: Optional[Union["EngineCheckpoint", dict]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.mode!r}; "
                f"expected one of {list(EXECUTION_MODES)}"
            )
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {self.n_shards}")
        if self.n_shards > 1 and self.mode in ("events", "batched"):
            raise ValueError(
                f"n_shards={self.n_shards} requires mode 'sharded' or 'auto' "
                f"(got mode={self.mode!r})"
            )
        if self.partitioner not in available_partitioners():
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"available: {available_partitioners()}"
            )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.processes is not None and self.processes < 1:
            raise ValueError(f"processes must be positive, got {self.processes}")
        if self.parallel and not (
            self.mode == "sharded" or (self.mode == "auto" and self.n_shards > 1)
        ):
            raise ValueError(
                "parallel=True applies to sharded execution only; "
                "use mode='sharded' (or 'auto' with n_shards > 1)"
            )
        if self.processes is not None and not self.parallel:
            raise ValueError(
                "processes sizes the parallel ingest pool; set parallel=True "
                "(or drop processes)"
            )
        if self.checkpoint_sink is not None and not callable(self.checkpoint_sink):
            raise ValueError(
                f"checkpoint_sink must be callable (it receives an "
                f"EngineCheckpoint per period boundary), got "
                f"{type(self.checkpoint_sink).__name__}"
            )

    def with_policy_factory(self, factory: PolicyFactory) -> "ExecutionPlan":
        """Copy of this plan carrying ``factory`` for sharded execution."""
        from dataclasses import replace

        return replace(self, policy_factory=factory)
