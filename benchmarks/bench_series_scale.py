"""High-cardinality labeled-series scaling (PR 8).

Stresses the :class:`~repro.series.index.SeriesIndex` at datacenter
cardinality: 100k distinct label combinations ingested through one
labeled metric with the LRU cap far below the series count, so the
index spends the whole run thrashing — evicting sealed series and
resurrecting them on their next observation.  Measures what the
subsystem costs (ingest events/s under thrash, group-by latency over
the full roster, resurrection rate) and proves what it must preserve:
the group-by answer equals the offline per-group concatenated run, and
an evict → resurrect → re-query cycle changes nothing.

Emits a ``series_scale`` section into the shared ``--bench-json``
artifact (schema 1), which CI uploads and ``BENCH_trajectory.json``
pins a sample of.
"""

import time

import pytest

from repro.series.labels import (
    canonical_labelset,
    deterministic_labelsets,
    series_key,
    series_slice,
)
from repro.service.monitor import Monitor
from repro.service.spec import MetricSpec
from repro.workloads import generate_netmon

N_SERIES = 100_000
FANOUT = 20
MAX_ACTIVE = 10_000
SHARDS = 64
PHIS = [0.5, 0.99]
SCHEMA = ["region", "host"]

#: Two events per series = one sealed period each: every series carries
#: mergeable state, yet the run stays seconds, not minutes.
PERIOD = 2
EVENTS = N_SERIES * PERIOD

WINDOW = {"size": 1_000_000, "period": PERIOD}


def labeled_spec(series=None) -> MetricSpec:
    return MetricSpec(
        name="lat",
        quantiles=PHIS,
        window=dict(WINDOW),
        policy="qlove",
        labels=list(SCHEMA),
        series=series,
    )


@pytest.fixture(scope="module")
def labelsets():
    return deterministic_labelsets(SCHEMA, N_SERIES, FANOUT)


def ingest(monitor: Monitor, values, labelsets) -> float:
    """Batch one round of ``values`` per-series; returns elapsed seconds."""
    t0 = time.perf_counter()
    for j, labels in enumerate(labelsets):
        monitor.observe_batch(
            "lat", series_slice(values, 0, N_SERIES, j), labels=labels
        )
    return time.perf_counter() - t0


def offline_group_reference(spec, rounds, labelsets, by):
    """Per-group ground truth: member streams (all rounds, period-sealed)
    concatenated in canonical series-key order into a fresh plain policy."""
    plain = MetricSpec(
        name=spec.name, quantiles=spec.quantiles,
        window={"size": spec.window.size, "period": spec.window.period},
        policy=spec.policy, policy_params=spec.policy_params,
    )
    members = sorted(
        range(len(labelsets)),
        key=lambda j: series_key(
            spec.name,
            canonical_labelset(labelsets[j], spec.labels, spec.name),
        ),
    )
    grouped = {}
    for j in members:
        grouped.setdefault(labelsets[j][by], []).append(j)
    reference = {}
    for value, indices in grouped.items():
        policy = plain.build_policy()
        for j in indices:
            for values in rounds:
                policy.accumulate_batch(
                    series_slice(values, 0, N_SERIES, j)
                )
                policy.seal_subwindow()
        reference[value] = {
            repr(phi): float(est) for phi, est in sorted(policy.query().items())
        }
    return reference


def test_hundred_thousand_series_under_eviction(
    benchmark, labelsets, bench_json_sink
):
    """The scaling row: ingest, group-by and resurrection under thrash."""
    values = generate_netmon(EVENTS, seed=0)

    def run():
        monitor = Monitor()
        monitor.register(
            labeled_spec(series={"shards": SHARDS, "max_active": MAX_ACTIVE})
        )
        ingest_s = ingest(monitor, values, labelsets)

        t0 = time.perf_counter()
        result = monitor.group_by("lat", "host")
        groupby_s = time.perf_counter() - t0
        stats = monitor.series_stats("lat")

        # Resurrection cost: touch evicted series (the roster was filled
        # in order, so the head has long since been evicted).
        touches = 1_000
        t0 = time.perf_counter()
        for labels in labelsets[:touches]:
            monitor.observe("lat", 1.0, labels=labels)
        resurrect_s = time.perf_counter() - t0
        after = monitor.series_stats("lat")
        return {
            "ingest_s": ingest_s,
            "groupby_s": groupby_s,
            "resurrect_s": resurrect_s,
            "touches": touches,
            "result": result,
            "stats": stats,
            "after": after,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    result, stats = out["result"], out["stats"]

    assert stats["created"] == N_SERIES
    assert stats["active"] <= MAX_ACTIVE
    assert stats["evictions"] >= N_SERIES - MAX_ACTIVE
    assert stats["memory_estimate_bytes"] > 0
    assert len(result["groups"]) == FANOUT
    assert sum(g["count"] for g in result["groups"]) == EVENTS
    assert out["after"]["resurrections"] >= out["touches"]

    events_per_s = EVENTS / out["ingest_s"]
    series_per_s = N_SERIES / out["groupby_s"]
    resurrections_per_s = out["touches"] / out["resurrect_s"]
    bench_json_sink(
        "series_scale",
        {
            "workload": "netmon",
            "n_series": N_SERIES,
            "fanout": FANOUT,
            "max_active": MAX_ACTIVE,
            "shards": SHARDS,
            "events": EVENTS,
            "ingest_events_per_s": events_per_s,
            "evictions": stats["evictions"],
            "group_by_s": out["groupby_s"],
            "group_by_series_per_s": series_per_s,
            "resurrections_per_s": resurrections_per_s,
            "memory_estimate_bytes": stats["memory_estimate_bytes"],
        },
    )
    print()
    print(
        f"series scale: {N_SERIES:,} series, cap {MAX_ACTIVE:,} "
        f"({stats['evictions']:,} evictions)"
    )
    print(
        f"  ingest  {events_per_s:,.0f} ev/s under thrash\n"
        f"  group-by {out['groupby_s'] * 1e3:,.0f}ms over the full roster "
        f"({series_per_s:,.0f} series/s)\n"
        f"  resurrect {resurrections_per_s:,.0f}/s\n"
        f"  index estimate {stats['memory_estimate_bytes'] / 1e6:,.1f} MB"
    )

    # Conservative floors: an order of magnitude below current numbers,
    # so only a real regression trips them on shared CI runners.
    assert events_per_s > 400
    assert series_per_s > 1_000


def test_group_answers_survive_eviction_and_resurrection(labelsets):
    """The 100k-series equivalence smoke: group-by vs offline, then an
    evict → resurrect → re-query cycle that must not change a byte."""
    spec = labeled_spec(series={"shards": SHARDS, "max_active": MAX_ACTIVE})
    monitor = Monitor()
    monitor.register(spec)

    first = generate_netmon(EVENTS, seed=1)
    ingest(monitor, first, labelsets)
    result = monitor.group_by("lat", "host")
    reference = offline_group_reference(spec, [first], labelsets, "host")
    for group in result["groups"]:
        host = group["key"]["host"]
        assert group["quantiles"] == reference[host], host
        assert group["series"] == N_SERIES // FANOUT
    assert monitor.series_stats("lat")["evictions"] > 0

    # Round two resurrects every evicted series in the roster; the new
    # answer must equal the offline run over both rounds.
    second = generate_netmon(EVENTS, seed=2)
    ingest(monitor, second, labelsets)
    assert monitor.series_stats("lat")["resurrections"] > 0
    requeried = monitor.group_by("lat", "host")
    reference = offline_group_reference(
        spec, [first, second], labelsets, "host"
    )
    for group in requeried["groups"]:
        assert group["quantiles"] == reference[group["key"]["host"]]
        assert group["count"] == 2 * EVENTS // FANOUT
