"""``SeriesIndex``: one lazily-instantiated channel per observed labelset.

The high-cardinality heart of the labeled-series subsystem: a labeled
:class:`~repro.service.spec.MetricSpec` owns one index, and every
distinct labelset that arrives materialises one
:class:`~repro.service.monitor.MetricChannel` on first touch.  Channels
live in hash shards (the Fibonacci key hash of
:func:`~repro.streaming.partition.hash_shard_of_key`), purely an
internal bucketing — shard count never influences any answer.

**Eviction is deterministic.**  Recency is measured in *observation
ticks* (a monotonic per-index counter), never wall-clock time, so a run
is a pure function of its event stream: with ``max_active`` set, the
least-recently-observed series is evicted when a new series would exceed
the bound; with ``idle_ttl`` set, series idle for more than that many
ticks are evicted whenever a new series materialises.  Evicting seals
the channel through the PR-4 serde path (``MetricChannel.to_state``), so
an evicted series loses nothing: it still answers snapshots and group-by
queries from its sealed state, and the next observation *resurrects* it
bit-identically (``from_state``) — eviction on/off cannot change any
result, a property the group-by equivalence battery pins.

History recording composes: attach a binder (see
:meth:`SeriesIndex.attach_history`) and every series — including ones
materialised or resurrected later — records per-period segments under
its series key.
"""

from __future__ import annotations

import heapq
import json
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import serde
from repro.series.labels import LabelItems, canonical_labelset, series_key
from repro.service.spec import MetricSpec
from repro.streaming.partition import hash_shard_of_key

#: State-format version written by :meth:`SeriesIndex.to_state`.
SERIES_INDEX_STATE_VERSION = 1

#: History binder: ``binder(series_key) -> sink`` — called once per
#: materialised series; registers the derived per-series spec wherever
#: segments will land and returns the ``sink(metric, period, count,
#: state)`` to record into (the series key is substituted for ``metric``).
HistoryBinder = Callable[[str], Callable[[str, int, int, dict], None]]

#: Default internal shard count (overridden by the spec's series options).
DEFAULT_SHARDS = 4


class _Entry:
    """One active series: its channel, labels and recency tick."""

    __slots__ = ("channel", "labels", "touch")

    def __init__(self, channel, labels: LabelItems, touch: int) -> None:
        self.channel = channel
        self.labels = labels
        self.touch = touch


class _Evicted:
    """One evicted series: labels plus the sealed channel state."""

    __slots__ = ("labels", "state", "state_bytes")

    def __init__(self, labels: LabelItems, state: dict, state_bytes: int) -> None:
        self.labels = labels
        self.state = state
        self.state_bytes = state_bytes


class SeriesIndex:
    """The per-labelset channel index of one labeled metric family.

    Built by :meth:`Monitor.register <repro.service.monitor.Monitor.register>`
    for specs with a label schema; drive it through the monitor
    (``observe(name, value, labels=...)``).  Options come from the
    spec's ``series`` mapping: ``shards``, ``max_active``, ``idle_ttl``.
    """

    def __init__(self, spec: MetricSpec, emit_partial: bool = False) -> None:
        if spec.labels is None:
            raise ValueError(
                f"metric {spec.name!r} has no label schema; a SeriesIndex "
                "fronts labeled metrics only (declare labels=[...])"
            )
        self.spec = spec
        self._emit_partial = emit_partial
        options = spec.series or {}
        self.n_shards = int(options.get("shards", DEFAULT_SHARDS))
        self.max_active: Optional[int] = options.get("max_active")  # type: ignore[assignment]
        self.idle_ttl: Optional[int] = options.get("idle_ttl")  # type: ignore[assignment]
        self._shards: List[Dict[str, _Entry]] = [{} for _ in range(self.n_shards)]
        self._evicted: Dict[str, _Evicted] = {}
        #: Lazy-deletion LRU heap of ``(touch, key)``; stale pairs (the
        #: entry has been touched since, or evicted) are skipped on pop.
        self._lru: List[Tuple[int, str]] = []
        self._tick = 0
        self._created = 0
        self._evictions = 0
        self._resurrections = 0
        self._history_binder: Optional[HistoryBinder] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, labels: object, value: float) -> None:
        """Fold one element into the labelset's series (creating it)."""
        self._entry_for(labels).channel.observe(value)

    def observe_batch(self, labels: object, values: np.ndarray) -> None:
        """Bulk-ingest one series' value array (creating the series)."""
        self._entry_for(labels).channel.observe_batch(values)

    def _entry_for(self, labels: object) -> _Entry:
        items = canonical_labelset(labels, self.spec.labels, self.spec.name)
        key = series_key(self.spec.name, items)
        shard = self._shards[hash_shard_of_key(key, self.n_shards)]
        self._tick += 1
        entry = shard.get(key)
        if entry is None:
            entry = self._materialise(shard, key, items)
        entry.touch = self._tick
        heapq.heappush(self._lru, (entry.touch, key))
        return entry

    def _materialise(
        self, shard: Dict[str, _Entry], key: str, items: LabelItems
    ) -> _Entry:
        """Create or resurrect the series for ``key``, then evict."""
        from repro.service.monitor import MetricChannel

        sealed = self._evicted.pop(key, None)
        if sealed is not None:
            channel = MetricChannel.from_state(
                sealed.state, emit_partial=self._emit_partial
            )
            self._resurrections += 1
        else:
            channel = MetricChannel(self.spec, emit_partial=self._emit_partial)
            self._created += 1
        if self._history_binder is not None:
            # A fresh channel attaches cleanly (nothing in flight); a
            # resurrected one resumes its staged mid-period recorder.
            channel.attach_recorder(self._series_sink(key))
        entry = _Entry(channel, items, self._tick)
        shard[key] = entry
        self._evict_stale(keep=key)
        return entry

    # ------------------------------------------------------------------
    # Eviction / resurrection
    # ------------------------------------------------------------------
    def _evict_stale(self, keep: str) -> None:
        """Apply the TTL and LRU bounds (deterministic, tick-based)."""
        if self.idle_ttl is not None:
            # ``keep`` was touched this tick, so its current heap pair
            # never falls below the horizon; stale pairs are skipped.
            horizon = self._tick - self.idle_ttl
            while self._lru and self._lru[0][0] < horizon:
                touch, key = heapq.heappop(self._lru)
                entry = self._active_entry(key)
                if entry is not None and entry.touch == touch and key != keep:
                    self._evict(key)
        if self.max_active is not None:
            while self.active_count() > self.max_active and self._lru:
                touch, key = heapq.heappop(self._lru)
                entry = self._active_entry(key)
                if entry is None or entry.touch != touch:
                    continue  # stale pair (touched again, or evicted)
                if key == keep:
                    # The current pair of the just-touched series is the
                    # heap minimum only when it is the sole live series;
                    # it never evicts itself.
                    heapq.heappush(self._lru, (touch, key))
                    break
                self._evict(key)

    def _active_entry(self, key: str) -> Optional[_Entry]:
        return self._shards[hash_shard_of_key(key, self.n_shards)].get(key)

    def _evict(self, key: str) -> None:
        """Seal one active series through the serde path."""
        shard = self._shards[hash_shard_of_key(key, self.n_shards)]
        entry = shard.pop(key)
        state = entry.channel.to_state()
        blob = json.dumps(state, separators=(",", ":"))
        self._evicted[key] = _Evicted(entry.labels, state, len(blob))
        self._evictions += 1

    def evict_idle(self) -> int:
        """Explicitly evict every series idle beyond ``idle_ttl``; returns
        how many (a no-op without a TTL — eviction otherwise runs when
        new series materialise)."""
        if self.idle_ttl is None:
            return 0
        before = self._evictions
        horizon = self._tick - self.idle_ttl
        for key, entry in sorted(self._iter_active()):
            if entry.touch < horizon:
                self._evict(key)
        return self._evictions - before

    # ------------------------------------------------------------------
    # History recording
    # ------------------------------------------------------------------
    def attach_history(self, binder: HistoryBinder) -> None:
        """Record every series' per-period deltas via ``binder``.

        ``binder(series_key)`` is invoked once per materialised series
        (including later creations and resurrections); it must register
        the derived spec with its store and return the history sink.
        Attach before ingesting — existing active series attach
        immediately and reject mid-period attachment exactly like
        :meth:`MetricChannel.attach_recorder`.
        """
        if self._history_binder is not None:
            raise ValueError(
                f"metric {self.spec.name!r} already records history; one "
                "history binder per series index"
            )
        self._history_binder = binder
        for key, entry in sorted(self._iter_active()):
            entry.channel.attach_recorder(self._series_sink(key))

    def _series_sink(self, key: str):
        """The channel-facing sink: substitutes the series key for the
        channel's (family) metric name before handing to the binder's
        sink, so segments land under the series key."""
        sink = self._history_binder(key)

        def wrapped(_metric: str, period: int, count: int, state: dict) -> None:
            sink(key, period, count, state)

        return wrapped

    # ------------------------------------------------------------------
    # Introspection / query surface
    # ------------------------------------------------------------------
    def active_count(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def evicted_count(self) -> int:
        return len(self._evicted)

    def _iter_active(self) -> Iterator[Tuple[str, _Entry]]:
        for shard in self._shards:
            yield from shard.items()

    def series(self) -> List[str]:
        """Every known series key (active + evicted), sorted."""
        keys = [key for key, _ in self._iter_active()]
        keys.extend(self._evicted)
        return sorted(keys)

    def members(self) -> List[Tuple[str, LabelItems, Optional[_Entry], Optional[dict]]]:
        """All series in canonical key order, active or sealed.

        Each element is ``(key, labels, entry_or_None, state_or_None)``
        — exactly one of the last two is set.  The group-by engine and
        snapshots iterate this, so every answer is ordered by canonical
        series key regardless of shard layout or eviction history.
        """
        rows: List[Tuple[str, LabelItems, Optional[_Entry], Optional[dict]]] = [
            (key, entry.labels, entry, None) for key, entry in self._iter_active()
        ]
        rows.extend(
            (key, sealed.labels, None, sealed.state)
            for key, sealed in self._evicted.items()
        )
        rows.sort(key=lambda row: row[0])
        return rows

    def seen(self) -> int:
        """Total elements ingested across all series (active + evicted)."""
        total = sum(entry.channel.seen for _, entry in self._iter_active())
        total += sum(int(sealed.state["seen"]) for sealed in self._evicted.values())
        return total

    def snapshot(self) -> Dict[str, Optional[Dict[float, float]]]:
        """Latest ``{phi: estimate}`` per series key (evicted included)."""
        result: Dict[str, Optional[Dict[float, float]]] = {}
        for key, _labels, entry, state in self.members():
            if entry is not None:
                latest = entry.channel.latest
                result[key] = dict(latest.result) if latest else None
            else:
                results = state["results"]
                result[key] = (
                    serde.mapping_from_pairs(results[-1]["result"])
                    if results
                    else None
                )
        return result

    def results(self, labels: object):
        """One series' emitted evaluations (evicted series answer too)."""
        from repro.service.monitor import MetricChannel

        items = canonical_labelset(labels, self.spec.labels, self.spec.name)
        key = series_key(self.spec.name, items)
        entry = self._active_entry(key)
        if entry is not None:
            return list(entry.channel.results)
        sealed = self._evicted.get(key)
        if sealed is None:
            raise KeyError(
                f"metric {self.spec.name!r}: no series {key!r} has been "
                f"observed; known series: {self.series() or '(none)'}"
            )
        return MetricChannel.from_state(sealed.state).results

    def group_by(self, by, quantiles=None) -> dict:
        """Merged quantiles per label-subset group — see
        :func:`repro.series.groupby.group_by_live`."""
        from repro.series.groupby import group_by_live

        return group_by_live(self, by, quantiles)

    def stats(self) -> Dict[str, object]:
        """Cardinality counters and a memory estimate.

        ``memory_estimate_bytes`` counts active policies' state variables
        at 8 bytes each plus the JSON size of sealed (evicted) states —
        an order-of-magnitude planning figure, not an exact RSS.
        """
        active_space = sum(
            entry.channel.policy.space_variables()
            for _, entry in self._iter_active()
        )
        evicted_bytes = sum(s.state_bytes for s in self._evicted.values())
        return {
            "active": self.active_count(),
            "evicted": self.evicted_count(),
            "created": self._created,
            "evictions": self._evictions,
            "resurrections": self._resurrections,
            "shards": self.n_shards,
            "max_active": self.max_active,
            "idle_ttl": self.idle_ttl,
            "active_space": int(active_space),
            "evicted_state_bytes": int(evicted_bytes),
            "memory_estimate_bytes": int(active_space) * 8 + int(evicted_bytes),
        }

    def report(self) -> Dict[str, object]:
        """The family's ``space_report`` entry: totals over all series
        plus the cardinality stats (shape-compatible with a channel's
        report, so shared renderers work unchanged)."""
        evaluations = sum(
            len(entry.channel.results) for _, entry in self._iter_active()
        )
        evaluations += sum(
            len(sealed.state["results"]) for sealed in self._evicted.values()
        )
        peak = sum(
            entry.channel.policy.peak_space_variables()
            for _, entry in self._iter_active()
        )
        stats = self.stats()
        return {
            "policy": self.spec.policy,
            "window": {
                "size": self.spec.window.size,
                "period": self.spec.window.period,
            },
            "labels": list(self.spec.labels),
            "seen": self.seen(),
            "evaluations": evaluations,
            "space": stats["active_space"],
            "peak_space": int(peak),
            "series": stats,
        }

    # ------------------------------------------------------------------
    # Fleet composition
    # ------------------------------------------------------------------
    def merge_from(self, other: "SeriesIndex") -> None:
        """Fold another index's series into this one (donor unchanged).

        Series present on both sides merge channel-wise (the universal
        merge contract); series only the donor knows are adopted via a
        serde round-trip (bit-identical clone).  Donor eviction state is
        irrelevant — sealed series contribute exactly like active ones.
        """
        if other.spec.to_dict() != self.spec.to_dict():
            raise ValueError(
                f"cannot merge series of metric {other.spec.name!r} into "
                f"{self.spec.name!r}: specs differ"
            )
        from repro.service.monitor import MetricChannel

        for key, _labels, entry, state in other.members():
            donor = (
                entry.channel
                if entry is not None
                else MetricChannel.from_state(state)
            )
            mine = self._active_entry(key)
            if mine is None and key in self._evicted:
                # Resurrect, merge, and leave active (it was just touched).
                labels = dict(self._evicted[key].labels)
                self._entry_for(labels)
                mine = self._active_entry(key)
            if mine is not None:
                mine.channel.merge_from(donor)
            else:
                adopted = MetricChannel.from_state(
                    donor.to_state(), emit_partial=self._emit_partial
                )
                if self._history_binder is not None:
                    adopted.attach_recorder(self._series_sink(key))
                items = (
                    entry.labels if entry is not None else other._evicted[key].labels
                )
                self._tick += 1
                new_entry = _Entry(adopted, items, self._tick)
                self._shards[hash_shard_of_key(key, self.n_shards)][key] = new_entry
                heapq.heappush(self._lru, (new_entry.touch, key))
                self._created += 1
                self._evict_stale(keep=key)

    def reset(self) -> None:
        """Drop every series (active and sealed); the schema stays."""
        for shard in self._shards:
            shard.clear()
        self._evicted.clear()
        self._lru.clear()
        self._tick = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The full index: every series (sealed or live), ticks, counters."""
        state = serde.header("series_index", SERIES_INDEX_STATE_VERSION)
        state["spec"] = serde.as_native(self.spec.to_dict())
        state["tick"] = int(self._tick)
        state["created"] = int(self._created)
        state["evictions"] = int(self._evictions)
        state["resurrections"] = int(self._resurrections)
        state["active"] = [
            {
                "key": key,
                "labels": [[n, v] for n, v in entry.labels],
                "touch": int(entry.touch),
                "channel": entry.channel.to_state(),
            }
            for key, entry in sorted(self._iter_active())
        ]
        state["evicted"] = [
            {
                "key": key,
                "labels": [[n, v] for n, v in sealed.labels],
                "state": sealed.state,
                "bytes": int(sealed.state_bytes),
            }
            for key, sealed in sorted(self._evicted.items())
        ]
        return state

    @classmethod
    def from_state(cls, state: dict, emit_partial: bool = False) -> "SeriesIndex":
        """Rebuild an index whose future behaviour — including eviction
        decisions — is indistinguishable from the saved one's."""
        from repro.service.monitor import MetricChannel

        serde.check_state(
            state, "series_index", SERIES_INDEX_STATE_VERSION, "series index"
        )
        required = ("spec", "tick", "active", "evicted")
        serde.require_fields(state, required, "series index")
        serde.warn_unknown_fields(
            state,
            required + ("created", "evictions", "resurrections"),
            "series index",
        )
        try:
            spec = MetricSpec.from_dict(state["spec"])
        except ValueError as exc:
            raise serde.StateError(
                f"series index: invalid spec in state: {exc}"
            ) from None
        index = cls(spec, emit_partial=emit_partial)
        index._tick = int(state["tick"])
        index._created = int(state.get("created", 0))
        index._evictions = int(state.get("evictions", 0))
        index._resurrections = int(state.get("resurrections", 0))
        for row in state["active"]:
            key = row["key"]
            items = tuple((str(n), str(v)) for n, v in row["labels"])
            channel = MetricChannel.from_state(
                row["channel"], emit_partial=emit_partial
            )
            entry = _Entry(channel, items, int(row["touch"]))
            index._shards[hash_shard_of_key(key, index.n_shards)][key] = entry
            heapq.heappush(index._lru, (entry.touch, key))
        for row in state["evicted"]:
            items = tuple((str(n), str(v)) for n, v in row["labels"])
            index._evicted[row["key"]] = _Evicted(
                items, dict(row["state"]), int(row.get("bytes", 0))
            )
        return index
