"""Ordered and bounded data structures used by QLOVE and the baselines.

The paper's Level-1 state is a red-black tree keyed by element value with a
frequency attribute per node (Section 3.1).  This subpackage provides:

- :class:`~repro.datastructures.rbtree.RedBlackTree` — a from-scratch
  Guibas–Sedgewick red-black tree augmented with subtree frequency sums so
  order statistics are O(log n).
- :class:`~repro.datastructures.frequency_map.TreeFrequencyMap` and
  :class:`~repro.datastructures.frequency_map.DictFrequencyMap` — the two
  interchangeable ``{value, count}`` summary backends.
- :class:`~repro.datastructures.topk.TopKKeeper` — bounded keeper of the k
  largest values, used by few-k merging (Section 4).
- :mod:`~repro.datastructures.sampling` — interval sampling on ranked values,
  the sample-k primitive.
- :class:`~repro.datastructures.reservoir.ReservoirSampler` — uniform
  reservoir sampling, used by the Random baseline.
"""

from repro.datastructures.frequency_map import (
    DictFrequencyMap,
    FrequencyMap,
    TreeFrequencyMap,
    frequency_map_from_state,
    make_frequency_map,
)
from repro.datastructures.rbtree import RedBlackTree
from repro.datastructures.reservoir import ReservoirSampler
from repro.datastructures.sampling import interval_sample, sample_ranks
from repro.datastructures.topk import TopKKeeper

__all__ = [
    "DictFrequencyMap",
    "FrequencyMap",
    "RedBlackTree",
    "ReservoirSampler",
    "TopKKeeper",
    "TreeFrequencyMap",
    "frequency_map_from_state",
    "interval_sample",
    "make_frequency_map",
    "sample_ranks",
]
