"""The ``Monitor`` facade: many named metrics behind one front door.

The paper's operator-facing pitch — "track Q0.5/0.9/0.99/0.999 of the
last N events, evaluated every P" over fleets of datacenter metrics —
needs no query-builder vocabulary at the call site.  A :class:`Monitor`
is a multi-metric session object driven entirely by declarative
:class:`~repro.service.spec.MetricSpec`\\ s::

    monitor = Monitor()
    monitor.register(MetricSpec(name="rtt", quantiles=[0.5, 0.99],
                                window={"size": 100_000, "period": 10_000}))
    monitor.observe_batch("rtt", values)        # or observe(name, v) per event
    monitor.snapshot()                          # {"rtt": {0.5: ..., 0.99: ...}}

Each registered metric runs the same seal/expire lifecycle as the
streaming engine, so a monitor fed a metric's full stream emits
``WindowResult``\\ s identical to the hand-assembled
``Query`` + ``StreamEngine`` pipeline.  Monitors themselves shard and
combine: :meth:`Monitor.merge` folds another monitor's per-metric state
in through the universal :meth:`QuantilePolicy.merge
<repro.sketches.base.QuantilePolicy.merge>` contract (PR 2), so
per-node monitors built independently merge into one fleet answer —
for QLOVE and Exact, bit-identically to observing the unsplit stream
when merges happen at period boundaries (the
:class:`~repro.streaming.sharded.ShardedEngine` discipline).
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Mapping, Optional, Union

if TYPE_CHECKING:
    from repro.series.index import HistoryBinder, SeriesIndex

import numpy as np

from repro import serde
from repro.service.spec import MetricSpec
from repro.streaming.engine import WindowResult

#: Per-period callback: ``callback(metric_name, window_result)``.
ResultCallback = Callable[[str, WindowResult], None]

#: History sink: ``sink(metric_name, period_index, count, policy_state)``
#: invoked at every period boundary with the sealed period's delta state
#: (what :class:`~repro.store.writer.HistoryWriter` persists as a segment).
HistorySink = Callable[[str, int, int, dict], None]

#: State-format versions written by the persistence layer.
CHANNEL_STATE_VERSION = 1
#: v2 adds labeled-metric families ('series_families' + 'order'); v1
#: checkpoints still load (they simply carry no labeled metrics).
MONITOR_STATE_VERSION = 2

#: File-format tag written by :meth:`Monitor.save`.
MONITOR_FORMAT = "repro-monitor-checkpoint"


def _require_matching_policy(spec: MetricSpec, fresh, restored) -> None:
    """Reject a restored policy that does not match its metric spec.

    The spec builds ``fresh``; ``restored`` comes from the saved state.
    Type, quantiles, window shape and algorithm parameters must all
    agree, otherwise the channel would silently answer with a different
    algorithm than the spec declares (the spec/state-mismatch error path).
    """
    try:
        fresh._require_compatible(restored)
    except (TypeError, ValueError) as exc:
        raise serde.StateError(
            f"metric {spec.name!r}: saved policy state does not match the "
            f"spec ({exc}); the state was written under a different metric "
            "configuration (spec/state mismatch)"
        ) from None
    for attr in ("config", "epsilon", "k", "method", "backend"):
        if getattr(fresh, attr, None) != getattr(restored, attr, None):
            raise serde.StateError(
                f"metric {spec.name!r}: saved policy state disagrees with "
                f"the spec on {attr!r} (spec: {getattr(fresh, attr, None)!r}, "
                f"state: {getattr(restored, attr, None)!r}); spec/state "
                "mismatch"
            )


class MetricChannel:
    """One registered metric: its policy plus window bookkeeping.

    Mirrors ``StreamEngine._run_count_subwindow`` exactly — accumulate
    until the period fills, seal, expire beyond the window span, emit
    once a full window is in view — so a channel fed the whole stream
    reproduces the engine's ``WindowResult`` sequence.  Channels are
    created by :meth:`Monitor.register`; drive them through the monitor.
    """

    def __init__(
        self,
        spec: MetricSpec,
        emit_partial: bool = False,
        callbacks: Optional[List[ResultCallback]] = None,
    ) -> None:
        self.spec = spec
        self.policy = spec.build_policy()
        self.results: List[WindowResult] = []
        self._emit_partial = emit_partial
        self._callbacks: List[ResultCallback] = list(callbacks or [])
        #: Element counts of the sealed sub-windows currently in view.
        self._counts: Deque[int] = deque()
        self._in_flight = 0
        self._seen = 0
        self._index = 0
        #: Period boundaries crossed so far (the next period's index).
        self._periods = 0
        #: History recording (attach_recorder): a fresh shadow policy per
        #: period whose sealed state becomes that period's stored segment.
        self._recorder = None
        self._history_sink: Optional[HistorySink] = None
        self._staged_recorder: Optional[dict] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one element into the in-flight sub-window."""
        self.policy.accumulate(float(value))
        if self._recorder is not None:
            self._recorder.accumulate(float(value))
        self._in_flight += 1
        self._seen += 1
        if self._in_flight >= self.spec.window.period:
            self._seal()

    def observe_batch(self, values: np.ndarray) -> None:
        """Bulk-ingest a value array, sealing at every period boundary."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError(
                f"metric {self.spec.name!r}: observe_batch() takes a 1-D "
                f"value array, got shape {array.shape}"
            )
        period = self.spec.window.period
        position = 0
        n = len(array)
        while position < n:
            take = min(period - self._in_flight, n - position)
            self.policy.accumulate_batch(array[position : position + take])
            if self._recorder is not None:
                self._recorder.accumulate_batch(array[position : position + take])
            self._in_flight += take
            self._seen += take
            position += take
            if self._in_flight >= period:
                self._seal()

    # ------------------------------------------------------------------
    # Boundary lifecycle
    # ------------------------------------------------------------------
    def _seal(self) -> None:
        """Period boundary: seal, expire beyond the window span, emit."""
        window = self.spec.window
        self.policy.seal_subwindow()
        if self._recorder is not None:
            # The recorder saw exactly this period's events; seal it, hand
            # its state to the history sink as the period's delta segment,
            # and start a fresh recorder for the next period.
            self._recorder.seal_subwindow()
            self._history_sink(
                self.spec.name,
                self._periods,
                self._in_flight,
                self._recorder.to_state(),
            )
            self._recorder = self.spec.build_policy()
        self._counts.append(self._in_flight)
        self._periods += 1
        self._in_flight = 0
        if len(self._counts) > window.subwindow_count:
            self.policy.expire_subwindow()
            self._counts.popleft()
        if len(self._counts) == window.subwindow_count or self._emit_partial:
            result = WindowResult(
                index=self._index,
                window_count=sum(self._counts),
                end=float(self._seen),
                result=self.policy.query(),
            )
            self._index += 1
            self.results.append(result)
            for callback in self._callbacks:
                callback(self.spec.name, result)

    # ------------------------------------------------------------------
    # History recording
    # ------------------------------------------------------------------
    def attach_recorder(self, sink: HistorySink) -> None:
        """Start recording per-period delta states into ``sink``.

        From the next period boundary on, ``sink(name, period_index,
        count, policy_state)`` receives the sealed state of a fresh shadow
        policy that ingested exactly that period's events — the durable
        segment the historical store persists.  Attach either on a fresh
        channel (before any ingestion of the current period) or on one
        restored from a checkpoint whose state was saved with a recorder
        attached (the recorder's mid-period state rides in the
        checkpoint, so resume loses no events).
        """
        if self._recorder is not None:
            raise ValueError(
                f"metric {self.spec.name!r} already has a history recorder "
                "attached; one recorder per channel"
            )
        staged = self._staged_recorder
        if staged is not None:
            from repro.sketches.registry import policy_from_state

            recorder = policy_from_state(staged)
            _require_matching_policy(self.spec, self.spec.build_policy(), recorder)
            self._staged_recorder = None
        elif self._in_flight:
            raise ValueError(
                f"metric {self.spec.name!r}: cannot attach a history "
                f"recorder mid-period ({self._in_flight} in-flight events "
                "were never seen by a recorder and their period's segment "
                "would be incomplete); attach before ingesting, or resume "
                "from a checkpoint saved while history recording was active"
            )
        else:
            recorder = self.spec.build_policy()
        self._recorder = recorder
        self._history_sink = sink

    @property
    def periods(self) -> int:
        """Period boundaries crossed so far (next period's index)."""
        return self._periods

    # ------------------------------------------------------------------
    # Merging / reset (the sharded-monitor contract)
    # ------------------------------------------------------------------
    def merge_from(self, other: "MetricChannel") -> None:
        """Fold another channel's state into this one (donor unchanged).

        Sealed sub-windows and the in-flight state merge through
        :meth:`QuantilePolicy.merge`; element accounting adds.  For the
        fleet pattern — shard channels that accumulate less than one
        period between merges — merging at period boundaries reproduces
        the unsplit stream bit-for-bit (QLOVE/Exact).  After merging,
        reset or discard the donor; continuing to drive it would
        double-count its state on the next merge.
        """
        if other.spec != self.spec:
            raise ValueError(
                f"cannot merge metric {other.spec.name!r} into "
                f"{self.spec.name!r}: specs differ"
            )
        if self._recorder is not None and (
            other._seen or other._counts or other._in_flight
        ):
            raise ValueError(
                f"metric {self.spec.name!r}: cannot merge shard state into a "
                "channel with history recording attached (the donor's events "
                "were never seen by this channel's recorder, so the period's "
                "segment would be incomplete); merge shards first, then "
                "attach the HistoryWriter to the merged monitor"
            )
        self.policy.merge(other.policy)
        window = self.spec.window
        self._counts.extend(other._counts)
        while len(self._counts) > window.subwindow_count:
            self.policy.expire_subwindow()
            self._counts.popleft()
        self._in_flight += other._in_flight
        self._seen += other._seen
        if self._in_flight >= window.period:
            self._seal()

    def reset(self) -> None:
        """Discard all accumulated state and results, keep the spec.

        An attached history recorder restarts fresh too (the sink keeps
        receiving segments from period index 0 — reset a channel only
        against a fresh store, or history becomes a replay the store
        skips as duplicates).
        """
        self.policy.reset()
        self.results.clear()
        self._counts.clear()
        self._in_flight = 0
        self._seen = 0
        self._index = 0
        self._periods = 0
        if self._recorder is not None:
            self._recorder = self.spec.build_policy()

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Spec, policy state, window bookkeeping and emitted results."""
        state = serde.header("metric_channel", CHANNEL_STATE_VERSION)
        state["spec"] = serde.as_native(self.spec.to_dict())
        state["policy"] = self.policy.to_state()
        state["counts"] = [int(count) for count in self._counts]
        state["in_flight"] = int(self._in_flight)
        state["seen"] = int(self._seen)
        state["index"] = int(self._index)
        state["periods"] = int(self._periods)
        if self._recorder is not None:
            # Mid-period recorder state rides in the checkpoint so a
            # resumed channel re-attaches its recorder without losing the
            # current period's partially-ingested events.
            state["history"] = self._recorder.to_state()
        state["results"] = [
            {
                "index": int(result.index),
                "window_count": int(result.window_count),
                "end": float(result.end),
                "result": serde.pairs(result.result),
            }
            for result in self.results
        ]
        return state

    @classmethod
    def from_state(
        cls,
        state: dict,
        emit_partial: bool = False,
        callbacks: Optional[List[ResultCallback]] = None,
    ) -> "MetricChannel":
        """Rebuild a channel; validates the policy state against the spec."""
        serde.check_state(
            state, "metric_channel", CHANNEL_STATE_VERSION, "metric channel"
        )
        required = ("spec", "policy", "counts", "in_flight", "seen", "index", "results")
        serde.require_fields(state, required, "metric channel")
        serde.warn_unknown_fields(
            state, required + ("periods", "history"), "metric channel"
        )
        try:
            spec = MetricSpec.from_dict(state["spec"])
        except ValueError as exc:
            raise serde.StateError(
                f"metric channel: invalid spec in state: {exc}"
            ) from None
        channel = cls(spec, emit_partial=emit_partial, callbacks=callbacks)
        from repro.sketches.registry import policy_from_state

        restored = policy_from_state(state["policy"])
        _require_matching_policy(spec, channel.policy, restored)
        channel.policy = restored
        channel._counts = deque(int(count) for count in state["counts"])
        channel._in_flight = int(state["in_flight"])
        channel._seen = int(state["seen"])
        channel._index = int(state["index"])
        # Pre-history checkpoints carry no 'periods'; complete periods can
        # be recovered from the element count for period-aligned streams.
        channel._periods = int(
            state.get("periods", channel._seen // spec.window.period)
        )
        history = state.get("history")
        if history is not None:
            if not isinstance(history, dict):
                raise serde.StateError(
                    "metric channel: 'history' must be the recorder policy's "
                    f"state dict, got {type(history).__name__}"
                )
            channel._staged_recorder = dict(history)
        channel.results = [
            WindowResult(
                index=int(entry["index"]),
                window_count=int(entry["window_count"]),
                end=float(entry["end"]),
                result={
                    phi: float(value)
                    for phi, value in serde.mapping_from_pairs(
                        entry["result"]
                    ).items()
                },
            )
            for entry in state["results"]
        ]
        return channel

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[WindowResult]:
        """The most recent evaluation, or None before a full window."""
        return self.results[-1] if self.results else None

    @property
    def seen(self) -> int:
        """Elements ingested so far (resume offset for replayed sources)."""
        return self._seen

    def report(self) -> Dict[str, object]:
        """Accounting snapshot (space, elements, evaluations)."""
        return {
            "policy": self.spec.policy,
            "window": {
                "size": self.spec.window.size,
                "period": self.spec.window.period,
            },
            "seen": self._seen,
            "evaluations": len(self.results),
            "space": self.policy.space_variables(),
            "peak_space": self.policy.peak_space_variables(),
        }


class Monitor:
    """A multi-metric monitoring session over declarative specs.

    Parameters
    ----------
    emit_partial:
        As in :class:`~repro.streaming.engine.StreamEngine`: also emit
        evaluations while a metric's first window is still filling.
    """

    def __init__(self, emit_partial: bool = False) -> None:
        self._emit_partial = emit_partial
        self._channels: Dict[str, MetricChannel] = {}
        #: Labeled metrics: one series index (family) per label schema.
        self._families: Dict[str, "SeriesIndex"] = {}
        #: Registration order across both kinds.
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        spec: Union[MetricSpec, Mapping[str, object]],
        on_result: Optional[ResultCallback] = None,
    ) -> MetricSpec:
        """Add a metric; returns the canonical :class:`MetricSpec`.

        ``spec`` may be a :class:`MetricSpec` or its dict form (validated
        through :meth:`MetricSpec.from_dict`).  ``on_result`` is invoked
        as ``on_result(name, window_result)`` at every emitted period.
        A spec with a label schema registers a *labeled* metric — a
        :class:`~repro.series.index.SeriesIndex` family whose series
        materialise lazily per observed labelset; per-period callbacks
        are not supported on families (query via :meth:`group_by` or
        :meth:`results` with labels instead).
        """
        if isinstance(spec, Mapping):
            spec = MetricSpec.from_dict(spec)
        if not isinstance(spec, MetricSpec):
            raise TypeError(
                f"register() takes a MetricSpec or its dict form, got "
                f"{type(spec).__name__}"
            )
        if spec.name in self._channels or spec.name in self._families:
            raise ValueError(
                f"metric {spec.name!r} is already registered; metric names "
                "must be unique within a Monitor"
            )
        if spec.labels is not None:
            if on_result is not None:
                raise ValueError(
                    f"metric {spec.name!r}: per-period callbacks are not "
                    "supported on labeled metrics (series materialise "
                    "lazily); use group_by() or results(name, labels=...)"
                )
            from repro.series.index import SeriesIndex

            self._families[spec.name] = SeriesIndex(
                spec, emit_partial=self._emit_partial
            )
            self._order.append(spec.name)
            return spec
        callbacks = [on_result] if on_result is not None else []
        self._channels[spec.name] = MetricChannel(
            spec, emit_partial=self._emit_partial, callbacks=callbacks
        )
        self._order.append(spec.name)
        return spec

    def on_result(self, name: str, callback: ResultCallback) -> None:
        """Subscribe ``callback(name, result)`` to a metric's evaluations."""
        if name in self._families:
            raise ValueError(
                f"metric {name!r} is labeled; per-period callbacks are not "
                "supported on labeled metrics — use group_by() or "
                "results(name, labels=...)"
            )
        self._channel(name)._callbacks.append(callback)

    def attach_recorder(self, name: str, sink: HistorySink) -> None:
        """Record metric ``name``'s per-period delta states into ``sink``.

        The plumbing beneath :meth:`HistoryWriter.attach
        <repro.store.writer.HistoryWriter.attach>` — see
        :meth:`MetricChannel.attach_recorder` for the contract.  Labeled
        metrics need a per-series binder instead
        (:meth:`attach_series_history`) — the HistoryWriter picks the
        right one automatically.
        """
        if name in self._families:
            raise ValueError(
                f"metric {name!r} is labeled; attach history with "
                "attach_series_history(name, binder) (HistoryWriter does "
                "this automatically)"
            )
        self._channel(name).attach_recorder(sink)

    def attach_series_history(self, name: str, binder: "HistoryBinder") -> None:
        """Record a labeled family's per-series period deltas.

        ``binder(series_key)`` is called once per materialised series —
        see :meth:`SeriesIndex.attach_history
        <repro.series.index.SeriesIndex.attach_history>`.
        """
        self._family(name).attach_history(binder)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        value: float,
        ts: Optional[float] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold one element of metric ``name`` into its window.

        ``ts`` is accepted for API symmetry with timestamped pipelines;
        registered metrics are count-windowed, so it does not influence
        windowing.  ``labels`` routes the element to one series of a
        labeled metric and must match the metric's schema exactly.
        """
        if name in self._families:
            if labels is None:
                raise ValueError(
                    f"metric {name!r} is labeled "
                    f"({list(self._families[name].spec.labels)}); pass "
                    "labels={...} with every observation"
                )
            self._families[name].observe(labels, value)
            return
        if labels is not None:
            raise ValueError(
                f"metric {name!r} is not labeled; register it with "
                "labels=[...] to observe labeled values"
            )
        self._channel(name).observe(value)

    def observe_batch(
        self,
        name: str,
        values: np.ndarray,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Bulk-ingest a value array for metric ``name`` (batched path).

        For a labeled metric the whole batch belongs to the one series
        ``labels`` names (per-series routing happens upstream).
        """
        if name in self._families:
            if labels is None:
                raise ValueError(
                    f"metric {name!r} is labeled "
                    f"({list(self._families[name].spec.labels)}); pass "
                    "labels={...} with every batch"
                )
            self._families[name].observe_batch(labels, values)
            return
        if labels is not None:
            raise ValueError(
                f"metric {name!r} is not labeled; register it with "
                "labels=[...] to observe labeled values"
            )
        self._channel(name).observe_batch(values)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> List[WindowResult]:
        """All evaluations emitted so far for metric ``name``.

        A labeled metric requires ``labels`` naming one series (evicted
        series answer from their sealed state).
        """
        if name in self._families:
            if labels is None:
                raise ValueError(
                    f"metric {name!r} is labeled; pass labels={{...}} to "
                    "read one series' results (or group_by() for merged "
                    "answers)"
                )
            return list(self._families[name].results(labels))
        if labels is not None:
            raise ValueError(f"metric {name!r} is not labeled; drop labels=")
        return list(self._channel(name).results)

    def snapshot(self) -> Dict[str, object]:
        """Latest ``{phi: estimate}`` per metric (None before a window).

        Labeled metrics nest one more level: ``{series_key: {phi:
        estimate} | None}``, ordered by canonical series key.
        """
        snapshot: Dict[str, object] = {}
        for name in self._order:
            if name in self._families:
                snapshot[name] = self._families[name].snapshot()
            else:
                channel = self._channels[name]
                snapshot[name] = channel.latest.result if channel.latest else None
        return snapshot

    def group_by(
        self,
        name: str,
        by: Union[str, List[str]],
        quantiles: Optional[List[float]] = None,
    ) -> Dict[str, object]:
        """Current-window group-by over a labeled metric's series — see
        :func:`repro.series.groupby.group_by_live` for the result shape
        and the bit-identity contract."""
        return self._family(name).group_by(by, quantiles)

    def space_report(self) -> Dict[str, Dict[str, object]]:
        """Per-metric space/element/evaluation accounting.

        Labeled metrics report family totals plus a ``series`` block
        (cardinality counters and the index memory estimate).
        """
        report: Dict[str, Dict[str, object]] = {}
        for name in self._order:
            if name in self._families:
                report[name] = self._families[name].report()
            else:
                report[name] = self._channels[name].report()
        return report

    def seen_counts(self) -> Dict[str, int]:
        """Elements ingested per metric (family totals for labeled ones)."""
        counts: Dict[str, int] = {}
        for name in self._order:
            if name in self._families:
                counts[name] = self._families[name].seen()
            else:
                counts[name] = self._channels[name].seen
        return counts

    def series_route(self, name: str, labels: Mapping[str, str]) -> str:
        """The canonical series key an observation routes to (validates
        the labelset against the schema) — the wire layer's per-series
        sequence-space identifier."""
        from repro.series.labels import canonical_labelset, series_key

        spec = self._family(name).spec
        return series_key(name, canonical_labelset(labels, spec.labels, name))

    # ------------------------------------------------------------------
    # Fleet composition
    # ------------------------------------------------------------------
    def merge(self, other: "Monitor") -> "Monitor":
        """Fold another monitor's state into this one, metric by metric.

        Every metric registered in ``other`` must be registered here with
        an equal spec.  ``other`` is not modified; reset or discard it
        afterwards (its state now lives in this monitor).  Merging
        per-shard monitors at period boundaries reproduces the unsplit
        stream bit-for-bit for QLOVE and Exact — the
        :class:`~repro.streaming.sharded.ShardedEngine` guarantee, now at
        the facade level.  Returns ``self`` for chaining.
        """
        if not isinstance(other, Monitor):
            raise TypeError(f"cannot merge {type(other).__name__} into Monitor")
        missing = sorted(
            (set(other._channels) - set(self._channels))
            | (set(other._families) - set(self._families))
        )
        if missing:
            raise ValueError(
                f"cannot merge: metric(s) {missing} are not registered in "
                "this monitor; register the same specs on both sides"
            )
        for name, channel in other._channels.items():
            self._channels[name].merge_from(channel)
        for name, family in other._families.items():
            self._families[name].merge_from(family)
        return self

    def reset(self) -> None:
        """Reset every metric's state and results (specs stay registered)."""
        for channel in self._channels.values():
            channel.reset()
        for family in self._families.values():
            family.reset()

    # ------------------------------------------------------------------
    # Durable state (save / load)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Everything: specs plus every metric's full operator state."""
        state = serde.header("monitor", MONITOR_STATE_VERSION)
        state["format"] = MONITOR_FORMAT
        state["metrics"] = [
            channel.to_state() for channel in self._channels.values()
        ]
        state["series_families"] = [
            family.to_state() for family in self._families.values()
        ]
        state["order"] = list(self._order)
        return state

    @classmethod
    def from_state(cls, state: dict, emit_partial: bool = False) -> "Monitor":
        """Rebuild a monitor (specs, policies, counters, results).

        Accepts v1 states (pre-labels) as well: they carry no
        ``series_families``/``order`` fields, so families come back empty
        and registration order falls back to the channel list order.
        """
        serde.check_state(state, "monitor", MONITOR_STATE_VERSION, "monitor")
        serde.require_fields(state, ("metrics",), "monitor")
        serde.warn_unknown_fields(
            state, ("metrics", "format", "series_families", "order"), "monitor"
        )
        if not isinstance(state["metrics"], list):
            raise serde.StateError(
                "monitor: 'metrics' must be a list of metric-channel states, "
                f"got {type(state['metrics']).__name__}"
            )
        families = state.get("series_families", [])
        if not isinstance(families, list):
            raise serde.StateError(
                "monitor: 'series_families' must be a list of series-index "
                f"states, got {type(families).__name__}"
            )
        monitor = cls(emit_partial=emit_partial)
        for entry in state["metrics"]:
            channel = MetricChannel.from_state(entry, emit_partial=emit_partial)
            if channel.spec.name in monitor._channels:
                raise serde.StateError(
                    f"monitor: duplicate metric {channel.spec.name!r} in state"
                )
            monitor._channels[channel.spec.name] = channel
        from repro.series.index import SeriesIndex

        for entry in families:
            family = SeriesIndex.from_state(entry, emit_partial=emit_partial)
            name = family.spec.name
            if name in monitor._channels or name in monitor._families:
                raise serde.StateError(
                    f"monitor: duplicate metric {name!r} in state"
                )
            monitor._families[name] = family
        order = state.get("order")
        known = set(monitor._channels) | set(monitor._families)
        if order is not None:
            if not isinstance(order, list) or set(order) != known or len(
                order
            ) != len(known):
                raise serde.StateError(
                    "monitor: 'order' must list every registered metric name "
                    f"exactly once; got {order!r} for metrics {sorted(known)}"
                )
            monitor._order = [str(name) for name in order]
        else:
            monitor._order = list(monitor._channels) + list(monitor._families)
        return monitor

    def save(self, path: str) -> None:
        """Write the full monitor state to ``path`` as JSON.

        The file holds the specs *and* every per-metric operator state, so
        :meth:`load` restores a monitor that continues the stream exactly
        where this one stopped (feed it the elements after each channel's
        ``seen`` count).

        The write is atomic (temp file + ``os.replace``): a crash
        mid-save — the exact event checkpoints exist to survive — leaves
        the previous checkpoint intact instead of a truncated file.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_state(), handle, separators=(",", ":"))
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str, emit_partial: bool = False) -> "Monitor":
        """Restore a monitor saved by :meth:`save`.

        Error paths are actionable: a missing file, malformed JSON, a
        state version from a newer release, and per-metric spec/state
        mismatches each raise with a message naming the file and the fix.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = handle.read()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"monitor checkpoint {path!r} does not exist; pass the path "
                "given to Monitor.save() (or the CLI's --checkpoint)"
            ) from None
        try:
            state = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise serde.StateError(
                f"{path}: not valid JSON ({exc}); the checkpoint is "
                "corrupted or was not written by Monitor.save()"
            ) from None
        if isinstance(state, dict) and state.get("format") not in (
            None,
            MONITOR_FORMAT,
        ):
            raise serde.StateError(
                f"{path}: file format {state.get('format')!r} is not a "
                f"monitor checkpoint (expected {MONITOR_FORMAT!r})"
            )
        try:
            return cls.from_state(state, emit_partial=emit_partial)
        except serde.StateError as exc:
            raise serde.StateError(f"{path}: {exc}") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> List[str]:
        """Registered metric names, in registration order."""
        return list(self._order)

    def labeled_metrics(self) -> List[str]:
        """Registered *labeled* metric names, in registration order."""
        return [name for name in self._order if name in self._families]

    def specs(self) -> List[MetricSpec]:
        """The canonical specs of every registered metric."""
        return [
            (
                self._families[name].spec
                if name in self._families
                else self._channels[name].spec
            )
            for name in self._order
        ]

    def series_stats(self, name: str) -> Dict[str, object]:
        """Cardinality/eviction counters of a labeled metric's index."""
        return self._family(name).stats()

    def __contains__(self, name: object) -> bool:
        return name in self._channels or name in self._families

    def __len__(self) -> int:
        return len(self._order)

    def _channel(self, name: str) -> MetricChannel:
        try:
            return self._channels[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; registered: {self.metrics() or '(none)'}"
            ) from None

    def _family(self, name: str) -> "SeriesIndex":
        try:
            return self._families[name]
        except KeyError:
            if name in self._channels:
                raise ValueError(
                    f"metric {name!r} is not labeled; this operation needs a "
                    "metric registered with labels=[...]"
                ) from None
            raise KeyError(
                f"unknown metric {name!r}; registered: {self.metrics() or '(none)'}"
            ) from None
