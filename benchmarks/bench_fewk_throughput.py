"""Section 5.3: few-k cache size vs throughput penalty."""


def test_fewk_throughput(run_experiment):
    result = run_experiment("fewk_throughput", scale=0.25, evaluations=25)
    data = result.data

    none = data["none"]
    small = data["fraction 0.2"]
    full = data["fraction 1.0"]
    # Few-k merging costs throughput, more so with a bigger cache (paper:
    # 21.2% penalty at fraction 1, 9.0% at 0.2).  Generous margins: tiny
    # absolute differences on a fast container are noisy.
    assert full <= none * 1.05
    assert small >= full * 0.95
