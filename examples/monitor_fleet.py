"""Monitor fleet demo: many metrics, many nodes, one merged answer.

Models the paper's deployment story at the facade level:

1. **Multi-metric** — one :class:`~repro.service.monitor.Monitor` serves
   several independently windowed metrics (NetMon RTTs under QLOVE with
   few-k merging, search latencies under QLOVE, an exact reference),
   each declared as a plain-dict :class:`~repro.service.spec.MetricSpec`
   exactly as the ``python -m repro monitor`` CLI would load from JSON.
2. **Fleet merging** — the RTT stream is partitioned round-robin across
   four per-node monitors that never see each other's data.  At every
   period boundary the coordinator folds them in with
   ``master.merge(node)`` (then resets the donors), reusing the
   universal ``QuantilePolicy.merge`` contract.  For QLOVE the merged
   answers are **bit-identical** to a single monitor observing the
   unsplit stream — asserted at the end.

Run:  python examples/monitor_fleet.py
"""

import numpy as np

from repro import MetricSpec, Monitor
from repro.workloads import generate_netmon, generate_search

PERIOD = 10_000
N_NODES = 4
STREAM_LENGTH = 160_000

RTT_SPEC = {
    "name": "netmon.rtt",
    "quantiles": [0.5, 0.9, 0.99, 0.999],
    "window": {"size": 80_000, "period": PERIOD},
    "policy": "qlove",
    "policy_params": {"fewk": {"samplek_fraction": 0.01}},
}
SEARCH_SPEC = {
    "name": "search.latency",
    "quantiles": [0.5, 0.99],
    "window": {"size": 40_000, "period": PERIOD},
    "policy": "qlove",
}
EXACT_SPEC = {
    "name": "netmon.rtt.exact",
    "quantiles": [0.5, 0.9, 0.99, 0.999],
    "window": {"size": 80_000, "period": PERIOD},
    "policy": "exact",
}


def print_result(name: str, result) -> None:
    quantiles = "  ".join(
        f"Q{phi:g}={estimate:,.0f}" for phi, estimate in result.result.items()
    )
    print(f"  {name:<18} eval={result.index}  {quantiles}")


def main() -> None:
    rtt = generate_netmon(STREAM_LENGTH, seed=11)
    search = generate_search(STREAM_LENGTH, seed=11)

    # ------------------------------------------------------------------
    # One monitor, three metrics, all from plain-dict specs.
    # ------------------------------------------------------------------
    monitor = Monitor()
    for spec in (RTT_SPEC, SEARCH_SPEC, EXACT_SPEC):
        monitor.register(spec, on_result=print_result)
    print(f"multi-metric monitor ({', '.join(monitor.metrics())}):\n")
    monitor.observe_batch("netmon.rtt", rtt)
    monitor.observe_batch("netmon.rtt.exact", rtt)
    monitor.observe_batch("search.latency", search)

    print("\nsnapshot:")
    for name, estimates in monitor.snapshot().items():
        rendered = "  ".join(
            f"Q{phi:g}={estimate:,.0f}" for phi, estimate in estimates.items()
        )
        print(f"  {name:<18} {rendered}")

    # ------------------------------------------------------------------
    # A fleet of four node monitors, merged at every period boundary.
    # ------------------------------------------------------------------
    spec = MetricSpec.from_dict(RTT_SPEC)
    master = Monitor()
    master.register(spec)
    nodes = [Monitor() for _ in range(N_NODES)]
    for node in nodes:
        node.register(spec)

    for start in range(0, STREAM_LENGTH, PERIOD):
        block = rtt[start : start + PERIOD]
        # Round-robin partition: node k ingests elements k, k+N, k+2N, ...
        for k, node in enumerate(nodes):
            node.observe_batch(spec.name, block[k::N_NODES])
        # Period boundary: fold every node into the master, reset donors.
        for node in nodes:
            master.merge(node)
            node.reset()

    print(f"\nfleet of {N_NODES} nodes, merged per period:")
    for result in master.results(spec.name):
        print_result(spec.name, result)

    single = monitor.results("netmon.rtt")
    assert master.results(spec.name) == single, (
        "merged fleet answers must be bit-identical to the unsplit stream"
    )
    print(f"\nfleet answers are bit-identical to the single monitor "
          f"({len(single)} evaluations) — QLOVE state merges losslessly.")


if __name__ == "__main__":
    main()
