"""Plain-text and markdown table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """A fixed-width table mirroring the paper's result layout."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified (floats pre-format upstream)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Aligned plain-text rendering."""
        widths = self._widths()
        lines = [self.title]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_float(value: float, digits: int = 2) -> str:
    """Compact float formatting for table cells."""
    if value != value:  # NaN
        return "NA"
    if value == 0:
        return "0"
    if abs(value) >= 1e16 or abs(value) < 10 ** (-digits - 1):
        return f"{value:.{digits}e}"
    return f"{value:,.{digits}f}"


def ascii_histogram(
    counts: Sequence[int], edges: Sequence[float], width: int = 50
) -> str:
    """Render histogram bin counts as horizontal ASCII bars (Figure 1)."""
    if len(counts) + 1 != len(edges):
        raise ValueError("edges must have one more entry than counts")
    peak = max(counts) if counts else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(0, round(width * count / peak)) if peak else ""
        lines.append(f"{edges[i]:>10,.0f}-{edges[i + 1]:<10,.0f} |{bar} {count}")
    return "\n".join(lines)
