"""The labeled-series subsystem: high-cardinality metrics + group-by.

A labeled :class:`~repro.service.spec.MetricSpec` (``labels=["region",
"host"]``) turns one metric into a *family* of series, one per observed
labelset.  This package provides the three layers underneath:

- :mod:`repro.series.labels` — label validation, the canonical
  ``metric{k=v,...}`` series-key encoding (percent-encoded, length-
  capped via hashing), and the deterministic labelset/slice functions
  shared by the load generator, the CLI and the equivalence batteries.
- :mod:`repro.series.index` — :class:`SeriesIndex`: lazy per-labelset
  channel instantiation, hash-sharded internally, with deterministic
  tick-based LRU/TTL eviction that seals series through the serde path
  (evicted series stay queryable and resurrect bit-identically).
- :mod:`repro.series.groupby` — the group-by query engine: per-group
  policy merges over live indexes and historical stores, bit-identical
  to per-group offline runs for time-composable policies.

Operators drive all of it through the
:class:`~repro.service.monitor.Monitor` facade
(``observe(name, value, labels=...)``, ``group_by(name, by=[...])``),
the wire protocol's labeled ``observe`` / ``group_by`` ops, and
``python -m repro query --group-by``.  See ``docs/labels.md``.
"""

from repro.series.groupby import group_by_live, group_by_store, render_group_result
from repro.series.index import SERIES_INDEX_STATE_VERSION, SeriesIndex
from repro.series.labels import (
    MAX_ENCODED_LABELSET,
    ParsedSeriesKey,
    canonical_labelset,
    deterministic_labelsets,
    encode_labelset,
    parse_series_key,
    series_key,
    series_slice,
    try_parse_series_key,
    validate_label_schema,
)

__all__ = [
    "MAX_ENCODED_LABELSET",
    "SERIES_INDEX_STATE_VERSION",
    "ParsedSeriesKey",
    "SeriesIndex",
    "canonical_labelset",
    "deterministic_labelsets",
    "encode_labelset",
    "group_by_live",
    "group_by_store",
    "parse_series_key",
    "render_group_result",
    "series_key",
    "series_slice",
    "try_parse_series_key",
    "validate_label_schema",
]
