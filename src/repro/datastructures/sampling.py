"""Interval sampling on ranked values — the sample-k primitive.

Section 4.2: each sub-window takes ``k_s`` samples from its N(1-phi) largest
values by *interval sampling*, picking every i-th element of the ranked
sequence [21]; the sampling interval is inversely proportional to the
allocated fraction ``alpha = k_s / (N (1 - phi))``.
"""

from __future__ import annotations

from typing import List, Sequence


def sample_ranks(population: int, k: int) -> List[int]:
    """0-based ranks selected when taking ``k`` interval samples of ``population``.

    Picks every i-th element (i = population / k) at the *end* of each
    block: for ``population=10, k=5`` the 1-based ranks are 2, 4, 6, 8, 10
    ("for i = 2, we select all even ranked values" [21]), i.e. 0-based
    ``[1, 3, 5, 7, 9]``.  Block-end selection makes the cumulative sample
    count an unbiased estimate of the number of elements at-or-above each
    sample, which is what the merged rank scan of sample-k merging needs —
    keeping block *starts* (e.g. the maximum) would systematically
    overstate the mass in the extreme tail.
    """
    if population < 0:
        raise ValueError("population must be non-negative")
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 or population == 0:
        return []
    if k >= population:
        return list(range(population))
    # Exact integer ceil division: rank_m = ceil((m+1) * population / k) - 1.
    return [((m + 1) * population + k - 1) // k - 1 for m in range(k)]


def sample_weights(population: int, k: int) -> List[int]:
    """How many ranked elements each interval sample stands for.

    Sample ``m`` (at rank ``r_m``) represents the ranks ``(r_{m-1}, r_m]``;
    the weights sum exactly to ``population``, so a cumulative scan over
    merged samples recovers unbiased rank estimates.
    """
    ranks = sample_ranks(population, k)
    weights: List[int] = []
    previous = -1
    for rank in ranks:
        weights.append(rank - previous)
        previous = rank
    return weights


def interval_sample(ranked_values: Sequence[float], k: int) -> List[float]:
    """Every i-th element of ``ranked_values`` such that ``k`` survive.

    ``ranked_values`` must already be ordered (largest first for the paper's
    use); selection follows :func:`sample_ranks` (block ends).
    """
    ranks = sample_ranks(len(ranked_values), k)
    return [ranked_values[r] for r in ranks]
