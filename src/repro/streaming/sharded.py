"""Sharded execution: partition a chunk stream across per-shard policies.

The paper's deployment story is datacenter-scale: summaries are built
independently per node and merged at a coordinator.  :class:`ShardedEngine`
brings that shape to a single logical stream:

1. **Partition** — each incoming chunk is split across ``n_shards`` shard
   accumulators (round-robin or value-hash,
   :mod:`~repro.streaming.partition`), after the query's vectorised
   filters run.
2. **Accumulate** — every shard folds its sub-stream into its own
   in-flight sub-window state; shards never seal.
3. **Merge at the boundary** — at each global period boundary the shard
   states merge (via the universal :meth:`QuantilePolicy.merge
   <repro.sketches.base.QuantilePolicy.merge>` contract) into one
   *master* policy, which then seals, expires and answers exactly like a
   single-engine run.

Merging *before* sealing is what makes the results well-defined: a sealed
sub-window always summarises one full global period, so for policies
whose in-flight state merges commutatively (QLOVE's and Exact's frequency
maps) the emitted ``WindowResult`` stream is identical to
:meth:`StreamEngine.run_chunked` for **any** shard count and either
partitioner.  Sketch policies (CMQS, AM, Random, Moment) stay within
their error bounds but are not bit-stable across shard counts.

The optional ``parallel`` backend ships each period's per-shard
partitions to a :mod:`multiprocessing` pool, so shard ingestion runs on
real cores; the merge/seal/emit step stays in the parent.  Policy
factories must be picklable (a top-level function or
``functools.partial`` — not a lambda) to use it.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Union

import numpy as np

from repro.streaming.checkpoint import (
    EngineCheckpoint,
    coerce_checkpoint,
    require_window_match,
    restore_policy,
)
from repro.streaming.engine import WindowResult, filtered_chunks
from repro.streaming.partition import StreamPartitioner
from repro.streaming.query import Query
from repro.streaming.windows import CountWindow

if TYPE_CHECKING:
    from repro.sketches.base import QuantilePolicy

# The policy layer depends on repro.streaming, so the runtime import of
# PolicyOperator is deferred into run_chunked() to keep this module
# importable from streaming/__init__ without a cycle.

PolicyFactory = Callable[[], "QuantilePolicy"]


def _ingest_partition(task: tuple) -> "QuantilePolicy":
    """Pool worker: build a fresh policy and bulk-ingest one shard's arrays."""
    factory, arrays = task
    policy = factory()
    for block in arrays:
        policy.accumulate_batch(block)
    return policy


class ShardedEngine:
    """Drive one count-windowed query over ``n_shards`` partitioned policies.

    Parameters
    ----------
    n_shards:
        Number of shard accumulators the stream is partitioned across.
    partitioner:
        ``"round_robin"`` (default; perfectly balanced, position-based) or
        ``"hash"`` (value-affine: equal values share a shard).
    emit_partial:
        As in :class:`~repro.streaming.engine.StreamEngine`: emit while
        the first window is still filling.
    parallel:
        Ingest shard partitions in a ``multiprocessing`` pool (one task
        per shard per period).  Requires a picklable policy factory.
    processes:
        Pool size for ``parallel=True`` (default: ``n_shards``).
    """

    def __init__(
        self,
        n_shards: int,
        partitioner: str = "round_robin",
        emit_partial: bool = False,
        parallel: bool = False,
        processes: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = n_shards
        self.partitioner = partitioner
        self._emit_partial = emit_partial
        self.parallel = parallel
        self.processes = processes if processes is not None else n_shards
        # Populated per run so callers can inspect live state/space.
        self._master: Optional[QuantilePolicy] = None
        self._shards: List[QuantilePolicy] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_chunked(
        self,
        query: Query,
        policy_factory: PolicyFactory,
        resume: Optional[Union[EngineCheckpoint, dict]] = None,
        checkpoint_sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        """Lazily evaluate a chunked query across the shard fleet.

        ``query`` provides the source, the (count-based) window and any
        vectorised filters; the aggregation stage comes from
        ``policy_factory``, which is called once per shard.  When the
        query already carries a :class:`PolicyOperator` (so the same
        query object can be handed to either engine), its policy becomes
        the master instance and must be freshly constructed.

        ``checkpoint_sink`` receives an
        :class:`~repro.streaming.checkpoint.EngineCheckpoint` of the
        *master* at every period boundary — the moment the shard
        accumulators have just merged and reset, so the master state is
        the complete state of the run.  ``resume`` restores the master
        from such a checkpoint (fresh shard accumulators) and continues
        with the remaining stream; because shard state is always empty at
        boundaries, a sharded checkpoint and a single-engine checkpoint
        of the same logical stream are interchangeable.
        """
        if query.window_spec is None:
            raise ValueError("query has no window(); call .window(size, period)")
        if not isinstance(query.window_spec, CountWindow):
            raise ValueError(
                "sharded execution supports count-based windows only "
                f"(got {type(query.window_spec).__name__})"
            )
        if query.predicates or query.projectors:
            raise ValueError(
                "query has event-level where()/select() stages; sharded "
                "execution is chunked — use where_values()/select_values()"
            )
        from repro.sketches.base import PolicyOperator

        if query.operator is not None and not isinstance(
            query.operator, PolicyOperator
        ):
            raise ValueError(
                "sharded execution aggregates QuantilePolicy state; wrap the "
                "policy in PolicyOperator or leave the aggregate stage unset"
            )
        if query.operator is not None:
            master = query.operator.policy
            # A policy that already ran holds sealed sub-windows (or an
            # in-flight map); adopting it would silently double-count that
            # state into every emitted window.
            baseline = policy_factory()
            # The master answers queries while the shards come from the
            # factory: a mismatched factory would silently change the
            # algorithm (or fail deep inside a merge), so require the two
            # to agree up front.
            master._require_compatible(baseline)
            for attr in ("config", "epsilon", "k", "method"):
                if getattr(master, attr, None) != getattr(baseline, attr, None):
                    raise ValueError(
                        "the query's operator policy and the policy factory "
                        f"disagree on {attr!r}; sharded execution needs one "
                        "configuration for the master and every shard"
                    )
            if (
                master.space_variables() != baseline.space_variables()
                or master.peak_space_variables() != baseline.peak_space_variables()
            ):
                raise ValueError(
                    "the query's PolicyOperator carries prior state; pass a "
                    "freshly constructed policy (or reset() it) for sharded "
                    "execution"
                )
        else:
            master = policy_factory()
        initial = (0, 0, 0)
        if resume is not None:
            checkpoint = coerce_checkpoint(resume)
            require_window_match(checkpoint, query.window_spec)
            master = restore_policy(checkpoint.policy_state, master)
            initial = (checkpoint.sealed, checkpoint.seen, checkpoint.index)
        if self.parallel:
            return self._run_parallel(
                query, query.window_spec, master, policy_factory,
                initial=initial, sink=checkpoint_sink,
            )
        return self._run_serial(
            query, query.window_spec, master, policy_factory,
            initial=initial, sink=checkpoint_sink,
        )

    def run_chunked_to_list(
        self, query: Query, policy_factory: PolicyFactory
    ) -> List[WindowResult]:
        """Eagerly evaluate and collect all results."""
        return list(self.run_chunked(query, policy_factory))

    def space_report(self) -> dict:
        """Shard-count and space accounting for the current/last run.

        On the serial backend ``shard_spaces`` reflects the live shard
        accumulators; on the parallel backend it is a snapshot of the
        worker-built states returned at the most recent period boundary
        (the pool's in-flight partitions live in worker processes).
        """
        master_space = (
            self._master.space_variables() if self._master is not None else 0
        )
        shard_spaces = [shard.space_variables() for shard in self._shards]
        return {
            "n_shards": self.n_shards,
            "partitioner": self.partitioner,
            "master_space": master_space,
            "shard_spaces": shard_spaces,
            "total_space": master_space + sum(shard_spaces),
        }

    def capture_state(self) -> dict:
        """Per-shard state capture of the current/last run, JSON-safe.

        Mid-period the run's state is split across the master (sealed
        sub-windows) and the shard accumulators (in-flight partitions);
        this snapshot captures both, so a shard can be migrated to
        another node (restore its entry with
        :func:`~repro.sketches.registry.policy_from_state` and merge it
        into the new node's master) without waiting for the boundary.  On
        the parallel backend the shard list reflects the states returned
        at the most recent boundary (in-flight partitions live in worker
        processes).
        """
        return {
            "n_shards": self.n_shards,
            "partitioner": self.partitioner,
            "master": None if self._master is None else self._master.to_state(),
            "shards": [shard.to_state() for shard in self._shards],
        }

    # ------------------------------------------------------------------
    # Serial backend
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        query: Query,
        spec: CountWindow,
        master: QuantilePolicy,
        policy_factory: PolicyFactory,
        initial: tuple = (0, 0, 0),
        sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        period = spec.period
        n_sub = spec.subwindow_count
        self._master = master
        self._shards = shards = [policy_factory() for _ in range(self.n_shards)]
        splitter = StreamPartitioner(self.n_shards, self.partitioner)
        in_flight = 0
        sealed, seen, index = initial
        for chunk in filtered_chunks(query):
            position = 0
            remaining = len(chunk)
            while remaining:
                take = min(period - in_flight, remaining)
                parts = splitter.split(chunk.slice(position, position + take))
                for shard, part in zip(shards, parts):
                    if len(part):
                        shard.accumulate_batch(part.values)
                position += take
                remaining -= take
                in_flight += take
                seen += take
                if in_flight < period:
                    continue
                for shard in shards:
                    master.merge(shard)
                    shard.reset()
                in_flight = 0
                sealed, index = yield from self._boundary(
                    master, spec, sealed, seen, index, sink
                )

    # ------------------------------------------------------------------
    # Parallel (multiprocessing) backend
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        query: Query,
        spec: CountWindow,
        master: QuantilePolicy,
        policy_factory: PolicyFactory,
        initial: tuple = (0, 0, 0),
        sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        period = spec.period
        self._master = master
        self._shards = []
        splitter = StreamPartitioner(self.n_shards, self.partitioner)
        pending: List[List[np.ndarray]] = [[] for _ in range(self.n_shards)]
        in_flight = 0
        sealed, seen, index = initial
        pool = multiprocessing.Pool(processes=self.processes)
        try:
            for chunk in filtered_chunks(query):
                position = 0
                remaining = len(chunk)
                while remaining:
                    take = min(period - in_flight, remaining)
                    parts = splitter.split(chunk.slice(position, position + take))
                    for bucket, part in zip(pending, parts):
                        if len(part):
                            bucket.append(part.values)
                    position += take
                    remaining -= take
                    in_flight += take
                    seen += take
                    if in_flight < period:
                        continue
                    # Empty buckets (hash skew) skip the pickle round-trip;
                    # merging nothing is a no-op, so results are unchanged.
                    tasks = [(policy_factory, bucket) for bucket in pending if bucket]
                    shards = pool.map(_ingest_partition, tasks)
                    # Snapshot for space_report(); the merged master shares
                    # these states, the donors are then discarded.
                    self._shards = shards
                    for shard in shards:
                        master.merge(shard)
                    pending = [[] for _ in range(self.n_shards)]
                    in_flight = 0
                    sealed, index = yield from self._boundary(
                        master, spec, sealed, seen, index, sink
                    )
        finally:
            pool.terminate()
            pool.join()

    # ------------------------------------------------------------------
    # Shared boundary handling (seal / expire / emit)
    # ------------------------------------------------------------------
    def _boundary(
        self,
        master: QuantilePolicy,
        spec: CountWindow,
        sealed: int,
        seen: int,
        index: int,
        sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        """Seal the merged sub-window on the master; emit when a window is full.

        Mirrors ``StreamEngine._run_count_subwindow_chunked`` exactly so a
        one-shard run is indistinguishable from the single-engine path.
        The checkpoint sink fires here because the shard accumulators have
        just merged and reset: the master alone holds the run's state.
        """
        n_sub = spec.subwindow_count
        master.seal_subwindow()
        sealed += 1
        if sealed > n_sub:
            master.expire_subwindow()
            sealed -= 1
        if sealed == n_sub or self._emit_partial:
            yield WindowResult(
                index=index,
                window_count=sealed * spec.period,
                end=float(seen),
                result=master.query(),
            )
            index += 1
        if sink is not None:
            sink(
                EngineCheckpoint(
                    window=spec,
                    sealed=sealed,
                    seen=seen,
                    index=index,
                    policy_state=master.to_state(),
                )
            )
        return sealed, index


def run_sharded(
    values: "np.ndarray",
    window: CountWindow,
    policy_factory: PolicyFactory,
    n_shards: int,
    partitioner: str = "round_robin",
    chunk_size: int = 65_536,
    parallel: bool = False,
    emit_partial: bool = False,
) -> List[WindowResult]:
    """Deprecated one-shot wrapper for sharded execution over a value array.

    Use :meth:`StreamEngine.execute
    <repro.streaming.engine.StreamEngine.execute>` with
    ``ExecutionPlan(mode="sharded", n_shards=..., policy_factory=...)``
    (results are bit-identical).
    """
    from repro.streaming.engine import StreamEngine, _deprecated_shim
    from repro.streaming.plan import ExecutionPlan

    _deprecated_shim(
        "run_sharded", "mode='sharded', n_shards=..., policy_factory=..."
    )
    query = Query(np.asarray(values, dtype=np.float64)).windowed_by(window)
    plan = ExecutionPlan(
        mode="sharded",
        n_shards=n_shards,
        partitioner=partitioner,
        parallel=parallel,
        chunk_size=chunk_size,
        policy_factory=policy_factory,
    )
    return StreamEngine(emit_partial=emit_partial).execute_to_list(query, plan)
