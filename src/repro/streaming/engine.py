"""Single-threaded execution loop for streaming queries.

The engine drives events from a query's source through its ``where`` /
``select`` stages into the aggregation operator, evaluating once per window
period.  It implements the incremental-evaluation semantics of Section 2:

- **Tumbling windows** never call ``deaccumulate``: state is discarded and
  rebuilt each period ("the query accumulates all data of a period on an
  initialized state, computes a result, and simply discards the state").
- **Sliding windows** with a per-element operator keep the in-window events
  buffered so each expiring element can be deaccumulated.
- **Sub-window operators** (QLOVE and the sketch baselines) are driven at
  sub-window granularity: the engine never buffers raw events for them, it
  only signals period boundaries (``seal_subwindow``) and window slides
  (``expire_subwindow``) — this is precisely where QLOVE's throughput
  advantage over per-element deaccumulation comes from.

The front door is :meth:`StreamEngine.execute`, which takes an
:class:`~repro.streaming.plan.ExecutionPlan` and dispatches to one of
three ingestion paths over the same semantics:

- the per-event reference loop (one Python object and one method call
  per element) — ``mode="events"``;
- the batched fast path — ``mode="batched"``: the source yields
  :class:`~repro.streaming.sources.Chunk` objects (numpy arrays), the
  engine slices them at sub-window / period boundaries, and operators
  ingest whole slices via ``accumulate_batch``.  Window semantics and
  results are identical to the per-event loop; only the per-element
  interpreter overhead is gone;
- the sharded path — ``mode="sharded"``: the chunk stream is partitioned
  across N per-shard policies merged at every period boundary
  (:class:`~repro.streaming.sharded.ShardedEngine`).

``mode="auto"`` (the default) picks the path from the source type and
the plan's shard count.  :meth:`StreamEngine.run` and
:meth:`StreamEngine.run_chunked` remain as the two loop implementations
the planner dispatches to; the module-level ``run_query*`` one-shot
helpers are deprecated shims over ``execute``.
"""

from __future__ import annotations

import itertools
import warnings
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Generic, Iterable, Iterator, Optional, TypeVar, Union

import numpy as np

from repro.streaming.checkpoint import (
    EngineCheckpoint,
    coerce_checkpoint,
    require_window_match,
)
from repro.streaming.event import Event
from repro.streaming.operator import IncrementalOperator, SubWindowOperator
from repro.streaming.plan import ExecutionPlan
from repro.streaming.query import Query
from repro.streaming.sources import Chunk, ChunkLike, as_chunk, chunk_stream, events_of_chunks
from repro.streaming.windows import CountWindow, TimeWindow

R = TypeVar("R")


@dataclass(frozen=True, slots=True)
class WindowResult(Generic[R]):
    """One query evaluation.

    ``index`` numbers evaluations from 0; ``window_count`` is the number of
    (post-filter) elements the evaluation saw; ``end`` is the position (for
    count windows) or timestamp (for time windows) of the window's end.
    """

    index: int
    window_count: int
    end: float
    result: R


class StreamEngine:
    """Executes :class:`~repro.streaming.query.Query` objects.

    Parameters
    ----------
    emit_partial:
        When True, evaluations are also emitted while the very first window
        is still filling (the paper's plots measure steady state, so the
        default is False: the first emission happens once a full window of
        elements has been seen).
    """

    def __init__(self, emit_partial: bool = False) -> None:
        self._emit_partial = emit_partial

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self, query: Query, plan: Optional[ExecutionPlan] = None
    ) -> Iterator[WindowResult]:
        """Evaluate ``query`` on the path selected by ``plan``.

        This is the single entry point unifying the per-event, batched
        and sharded loops.  With the default
        :class:`~repro.streaming.plan.ExecutionPlan` (``mode="auto"``)
        the path is chosen from what the query carries:

        - ``plan.n_shards > 1`` → sharded execution (requires
          ``plan.policy_factory``);
        - a numpy-array source, a chunk source, or vectorised
          ``where_values``/``select_values`` stages → the batched loop;
        - an event source or event-level ``where``/``select`` stages →
          the per-event loop.

        A raw ``np.ndarray`` source is accepted on every path: it is
        sliced into ``plan.chunk_size`` chunks for the batched/sharded
        loops (with unit-spaced timestamps when the window is
        time-based) or wrapped into an event stream for the per-event
        loop, so results are identical to pre-building the source by
        hand.
        """
        if plan is None:
            plan = ExecutionPlan()
        if query.window_spec is None:
            raise ValueError("query has no window(); call .window(size, period)")
        mode = plan.mode
        array_source = isinstance(query.source, np.ndarray)
        if mode == "auto":
            if plan.n_shards > 1:
                mode = "sharded"
            elif array_source or query.chunk_predicates or query.chunk_projectors:
                mode = "batched"
            elif query.predicates or query.projectors:
                mode = "events"
            else:
                first, query = _peek_source(query)
                mode = (
                    "batched"
                    if isinstance(first, (Chunk, np.ndarray))
                    else "events"
                )
        if array_source:
            query = replace(
                query,
                source=self._array_source(
                    query.source, query.window_spec, plan.chunk_size, mode
                ),
            )
        if mode == "events":
            return self.run(
                query,
                resume=plan.resume_from,
                checkpoint_sink=plan.checkpoint_sink,
            )
        if mode == "batched":
            return self.run_chunked(
                query,
                resume=plan.resume_from,
                checkpoint_sink=plan.checkpoint_sink,
            )
        # mode == "sharded" (the plan has already validated the name).
        from repro.streaming.sharded import ShardedEngine

        if plan.policy_factory is None:
            raise ValueError(
                "sharded execution builds one fresh policy per shard; pass "
                "ExecutionPlan(policy_factory=...) (MetricSpec.policy_factory() "
                "builds one from a declarative spec)"
            )
        sharded = ShardedEngine(
            plan.n_shards,
            partitioner=plan.partitioner,
            emit_partial=self._emit_partial,
            parallel=plan.parallel,
            processes=plan.processes,
        )
        return sharded.run_chunked(
            query,
            plan.policy_factory,
            resume=plan.resume_from,
            checkpoint_sink=plan.checkpoint_sink,
        )

    def execute_to_list(
        self, query: Query, plan: Optional[ExecutionPlan] = None
    ) -> list[WindowResult]:
        """Eagerly :meth:`execute` and collect all results."""
        return list(self.execute(query, plan))

    @staticmethod
    def _array_source(
        values: np.ndarray,
        spec: Union[CountWindow, TimeWindow],
        chunk_size: int,
        mode: str,
    ) -> Iterable:
        """Adapt a raw value array to the source type ``mode`` consumes."""
        from repro.streaming.sources import value_stream

        if mode == "events":
            return value_stream(values)
        with_timestamps = isinstance(spec, TimeWindow)
        return chunk_stream(values, chunk_size, with_timestamps=with_timestamps)

    def run(
        self,
        query: Query,
        *,
        resume: Optional[Union[EngineCheckpoint, dict]] = None,
        checkpoint_sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        """Lazily evaluate ``query``, yielding one result per period.

        ``resume``/``checkpoint_sink`` enable the durable-state lifecycle
        (count-windowed sub-window operators only): the sink receives an
        :class:`~repro.streaming.checkpoint.EngineCheckpoint` at every
        period boundary, and a resumed run — operator state restored,
        counters fast-forwarded, source starting at element
        ``checkpoint.seen`` — emits results bit-identical to the
        uninterrupted run's remainder.
        """
        query = query.validated()
        if query.chunk_predicates or query.chunk_projectors:
            raise ValueError(
                "query has vectorised where_values()/select_values() stages; "
                "run it with run_chunked(), or use where()/select() instead"
            )
        spec = query.window_spec
        operator = query.operator
        if isinstance(spec, CountWindow):
            if isinstance(operator, SubWindowOperator):
                return self._run_count_subwindow(
                    query, spec, operator, resume=resume, sink=checkpoint_sink
                )
            self._reject_checkpointing(resume, checkpoint_sink)
            return self._run_count_incremental(query, spec, operator)
        self._reject_checkpointing(resume, checkpoint_sink)
        if isinstance(spec, TimeWindow):
            if isinstance(operator, SubWindowOperator):
                return self._run_time_subwindow(query, spec, operator)
            return self._run_time_incremental(query, spec, operator)
        raise TypeError(f"unsupported window spec: {spec!r}")

    def run_to_list(self, query: Query, **kwargs) -> list[WindowResult]:
        """Eagerly evaluate ``query`` and collect all results.

        Keyword arguments (``resume``, ``checkpoint_sink``) pass through
        to :meth:`run`.
        """
        return list(self.run(query, **kwargs))

    def run_chunked(
        self,
        query: Query,
        *,
        resume: Optional[Union[EngineCheckpoint, dict]] = None,
        checkpoint_sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        """Batched evaluation: the query source yields chunks, not events.

        The source must yield :class:`~repro.streaming.sources.Chunk`
        objects or raw 1-D numpy arrays.  Filters must be vectorised
        (``where_values``/``select_values``); event-level ``where``/
        ``select`` stages are rejected so no filter is silently skipped.
        Results are identical to :meth:`run` over the same elements.
        ``resume``/``checkpoint_sink`` behave as in :meth:`run`.
        """
        query = query.validated()
        if query.predicates or query.projectors:
            raise ValueError(
                "query has event-level where()/select() stages; run it with "
                "run(), or use where_values()/select_values() instead"
            )
        spec = query.window_spec
        operator = query.operator
        if isinstance(spec, CountWindow):
            if isinstance(operator, SubWindowOperator):
                return self._run_count_subwindow_chunked(
                    query, spec, operator, resume=resume, sink=checkpoint_sink
                )
            self._reject_checkpointing(resume, checkpoint_sink)
            return self._run_count_incremental_chunked(query, spec, operator)
        self._reject_checkpointing(resume, checkpoint_sink)
        if isinstance(spec, TimeWindow):
            if isinstance(operator, SubWindowOperator):
                return self._run_time_subwindow_chunked(query, spec, operator)
            # Per-element deaccumulation over time windows needs every raw
            # event buffered anyway, so batching buys nothing: expand the
            # chunks and delegate to the per-event loop.
            chunks = self._timestamped(self._filtered_chunks(query))
            return self._run_time_incremental(
                replace(query, source=events_of_chunks(chunks),
                        chunk_predicates=(), chunk_projectors=()),
                spec,
                operator,
            )
        raise TypeError(f"unsupported window spec: {spec!r}")

    def run_chunked_to_list(self, query: Query, **kwargs) -> list[WindowResult]:
        """Eagerly evaluate a chunked ``query`` and collect all results.

        Keyword arguments (``resume``, ``checkpoint_sink``) pass through
        to :meth:`run_chunked`.
        """
        return list(self.run_chunked(query, **kwargs))

    # ------------------------------------------------------------------
    # Checkpoint / resume plumbing (count-windowed sub-window loops)
    # ------------------------------------------------------------------
    @staticmethod
    def _reject_checkpointing(resume, checkpoint_sink) -> None:
        """Checkpointing is defined for count-windowed sub-window runs only."""
        if resume is not None or checkpoint_sink is not None:
            raise ValueError(
                "checkpoint/resume is supported for count-windowed "
                "sub-window (policy) queries only; time windows and "
                "per-element incremental operators have no period-boundary "
                "state to freeze"
            )

    @staticmethod
    def _apply_resume(
        spec: CountWindow,
        operator: SubWindowOperator,
        resume: Union[EngineCheckpoint, dict],
    ) -> tuple[int, int, int]:
        """Restore operator state and return ``(sealed, seen, index)``."""
        checkpoint = coerce_checkpoint(resume)
        require_window_match(checkpoint, spec)
        operator.restore_state(checkpoint.policy_state)
        return checkpoint.sealed, checkpoint.seen, checkpoint.index

    # ------------------------------------------------------------------
    # Count-based windows
    # ------------------------------------------------------------------
    def _filtered(self, query: Query) -> Iterator[Event]:
        for event in query.source:
            processed = query.apply_event_pipeline(event)
            if processed is not None:
                yield processed

    def _run_count_subwindow(
        self,
        query: Query,
        spec: CountWindow,
        operator: SubWindowOperator,
        resume: Optional[Union[EngineCheckpoint, dict]] = None,
        sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        n_sub = spec.subwindow_count
        in_flight = 0
        sealed = 0
        seen = 0
        index = 0
        if resume is not None:
            sealed, seen, index = self._apply_resume(spec, operator, resume)
        for event in self._filtered(query):
            operator.accumulate(event)
            in_flight += 1
            seen += 1
            if in_flight < spec.period:
                continue
            operator.seal_subwindow()
            in_flight = 0
            sealed += 1
            if sealed > n_sub:
                operator.expire_subwindow()
                sealed -= 1
            if sealed == n_sub or self._emit_partial:
                yield WindowResult(
                    index=index,
                    window_count=sealed * spec.period,
                    end=float(seen),
                    result=operator.compute_result(),
                )
                index += 1
            if sink is not None:
                sink(
                    EngineCheckpoint(
                        window=spec,
                        sealed=sealed,
                        seen=seen,
                        index=index,
                        policy_state=operator.to_state(),
                    )
                )

    def _run_count_incremental(
        self, query: Query, spec: CountWindow, operator: IncrementalOperator
    ) -> Iterator[WindowResult]:
        state = operator.initial_state()
        buffer: Optional[deque[Event]] = deque() if spec.is_sliding else None
        in_period = 0
        seen = 0
        index = 0
        for event in self._filtered(query):
            state = operator.accumulate(state, event)
            if buffer is not None:
                buffer.append(event)
            in_period += 1
            seen += 1
            if in_period < spec.period:
                continue
            in_period = 0
            if buffer is None:
                # Tumbling: evaluate and discard state, no deaccumulation.
                yield WindowResult(
                    index=index,
                    window_count=spec.period,
                    end=float(seen),
                    result=operator.compute_result(state),
                )
                index += 1
                state = operator.initial_state()
                continue
            while len(buffer) > spec.size:
                state = operator.deaccumulate(state, buffer.popleft())
            if len(buffer) == spec.size or self._emit_partial:
                yield WindowResult(
                    index=index,
                    window_count=len(buffer),
                    end=float(seen),
                    result=operator.compute_result(state),
                )
                index += 1

    # ------------------------------------------------------------------
    # Time-based windows
    # ------------------------------------------------------------------
    def _run_time_subwindow(
        self, query: Query, spec: TimeWindow, operator: SubWindowOperator
    ) -> Iterator[WindowResult]:
        n_sub = spec.subwindow_count
        current_slot: Optional[int] = None
        sealed = 0
        last_ts = float("-inf")
        counts: deque[int] = deque()
        in_flight = 0
        index = 0
        for event in self._filtered(query):
            if event.timestamp < last_ts:
                raise ValueError(
                    "time-windowed streams must be timestamp-ordered: "
                    f"{event.timestamp} after {last_ts}"
                )
            last_ts = event.timestamp
            slot = spec.subwindow_index(event.timestamp)
            if current_slot is None:
                current_slot = slot
            while slot > current_slot:
                # Seal the finished interval (possibly empty) and any gaps.
                operator.seal_subwindow()
                counts.append(in_flight)
                in_flight = 0
                sealed += 1
                if sealed > n_sub:
                    operator.expire_subwindow()
                    counts.popleft()
                    sealed -= 1
                if sealed == n_sub or self._emit_partial:
                    yield WindowResult(
                        index=index,
                        window_count=sum(counts),
                        end=(current_slot + 1) * spec.period,
                        result=operator.compute_result(),
                    )
                    index += 1
                current_slot += 1
            operator.accumulate(event)
            in_flight += 1

    def _run_time_incremental(
        self, query: Query, spec: TimeWindow, operator: IncrementalOperator
    ) -> Iterator[WindowResult]:
        state = operator.initial_state()
        buffer: deque[Event] = deque()
        current_slot: Optional[int] = None
        slots_seen = 0
        last_ts = float("-inf")
        index = 0
        for event in self._filtered(query):
            if event.timestamp < last_ts:
                raise ValueError(
                    "time-windowed streams must be timestamp-ordered: "
                    f"{event.timestamp} after {last_ts}"
                )
            last_ts = event.timestamp
            slot = spec.subwindow_index(event.timestamp)
            if current_slot is None:
                current_slot = slot
            while slot > current_slot:
                boundary = (current_slot + 1) * spec.period
                horizon = boundary - spec.size
                while buffer and buffer[0].timestamp < horizon:
                    state = operator.deaccumulate(state, buffer.popleft())
                slots_seen += 1
                if slots_seen >= spec.subwindow_count or self._emit_partial:
                    yield WindowResult(
                        index=index,
                        window_count=len(buffer),
                        end=boundary,
                        result=operator.compute_result(state),
                    )
                    index += 1
                current_slot += 1
            state = operator.accumulate(state, event)
            buffer.append(event)

    # ------------------------------------------------------------------
    # Chunked (batched) loops
    # ------------------------------------------------------------------
    def _filtered_chunks(self, query: Query) -> Iterator[Chunk]:
        return filtered_chunks(query)

    @staticmethod
    def _timestamped(chunks: Iterator[Chunk]) -> Iterator[Chunk]:
        """Reject timestamp-less chunks before a time-windowed evaluation.

        Without this, the per-event fallback would silently synthesise
        index-based timestamps and window real-time data incorrectly.
        """
        for chunk in chunks:
            if chunk.timestamps is None:
                raise ValueError(
                    "time-windowed chunked queries need timestamped chunks "
                    "(build them with chunk_stream(..., with_timestamps=True))"
                )
            yield chunk

    def _run_count_subwindow_chunked(
        self,
        query: Query,
        spec: CountWindow,
        operator: SubWindowOperator,
        resume: Optional[Union[EngineCheckpoint, dict]] = None,
        sink: Optional[Callable[[EngineCheckpoint], None]] = None,
    ) -> Iterator[WindowResult]:
        period = spec.period
        n_sub = spec.subwindow_count
        in_flight = 0
        sealed = 0
        seen = 0
        index = 0
        if resume is not None:
            sealed, seen, index = self._apply_resume(spec, operator, resume)
        for chunk in self._filtered_chunks(query):
            position = 0
            remaining = len(chunk)
            while remaining:
                take = min(period - in_flight, remaining)
                operator.accumulate_batch(chunk.slice(position, position + take))
                position += take
                remaining -= take
                in_flight += take
                seen += take
                if in_flight < period:
                    continue
                operator.seal_subwindow()
                in_flight = 0
                sealed += 1
                if sealed > n_sub:
                    operator.expire_subwindow()
                    sealed -= 1
                if sealed == n_sub or self._emit_partial:
                    yield WindowResult(
                        index=index,
                        window_count=sealed * period,
                        end=float(seen),
                        result=operator.compute_result(),
                    )
                    index += 1
                if sink is not None:
                    sink(
                        EngineCheckpoint(
                            window=spec,
                            sealed=sealed,
                            seen=seen,
                            index=index,
                            policy_state=operator.to_state(),
                        )
                    )

    def _run_count_incremental_chunked(
        self, query: Query, spec: CountWindow, operator: IncrementalOperator
    ) -> Iterator[WindowResult]:
        state = operator.initial_state()
        sliding = spec.is_sliding
        buffer: deque[Chunk] = deque()
        buffered = 0
        in_period = 0
        seen = 0
        index = 0
        for chunk in self._filtered_chunks(query):
            position = 0
            remaining = len(chunk)
            while remaining:
                take = min(spec.period - in_period, remaining)
                part = chunk.slice(position, position + take)
                state = operator.accumulate_batch(state, part)
                if sliding:
                    buffer.append(part)
                    buffered += take
                position += take
                remaining -= take
                in_period += take
                seen += take
                if in_period < spec.period:
                    continue
                in_period = 0
                if not sliding:
                    # Tumbling: evaluate and discard state, no deaccumulation.
                    yield WindowResult(
                        index=index,
                        window_count=spec.period,
                        end=float(seen),
                        result=operator.compute_result(state),
                    )
                    index += 1
                    state = operator.initial_state()
                    continue
                while buffered > spec.size:
                    head = buffer[0]
                    drop = min(len(head), buffered - spec.size)
                    if drop == len(head):
                        expired = buffer.popleft()
                    else:
                        expired = head.slice(0, drop)
                        buffer[0] = head.slice(drop, len(head))
                    state = operator.deaccumulate_batch(state, expired)
                    buffered -= drop
                if buffered == spec.size or self._emit_partial:
                    yield WindowResult(
                        index=index,
                        window_count=buffered,
                        end=float(seen),
                        result=operator.compute_result(state),
                    )
                    index += 1

    def _run_time_subwindow_chunked(
        self, query: Query, spec: TimeWindow, operator: SubWindowOperator
    ) -> Iterator[WindowResult]:
        n_sub = spec.subwindow_count
        current_slot: Optional[int] = None
        sealed = 0
        last_ts = float("-inf")
        counts: deque[int] = deque()
        in_flight = 0
        index = 0
        for chunk in self._filtered_chunks(query):
            timestamps = chunk.timestamps
            if timestamps is None:
                raise ValueError(
                    "time-windowed chunked queries need timestamped chunks "
                    "(build them with chunk_stream(..., with_timestamps=True))"
                )
            if timestamps[0] < last_ts or np.any(np.diff(timestamps) < 0):
                raise ValueError(
                    "time-windowed streams must be timestamp-ordered"
                )
            last_ts = float(timestamps[-1])
            # Slot of every element; identical to per-event int(t // period).
            slots = np.floor_divide(timestamps, spec.period).astype(np.int64)
            position = 0
            n = len(chunk)
            while position < n:
                slot = int(slots[position])
                if current_slot is None:
                    current_slot = slot
                while slot > current_slot:
                    # Seal the finished interval (possibly empty) and gaps.
                    operator.seal_subwindow()
                    counts.append(in_flight)
                    in_flight = 0
                    sealed += 1
                    if sealed > n_sub:
                        operator.expire_subwindow()
                        counts.popleft()
                        sealed -= 1
                    if sealed == n_sub or self._emit_partial:
                        yield WindowResult(
                            index=index,
                            window_count=sum(counts),
                            end=(current_slot + 1) * spec.period,
                            result=operator.compute_result(),
                        )
                        index += 1
                    current_slot += 1
                # Everything up to the next slot change joins this sub-window.
                upper = position + int(
                    np.searchsorted(slots[position:], current_slot, side="right")
                )
                operator.accumulate_batch(chunk.slice(position, upper))
                in_flight += upper - position
                position = upper


def filtered_chunks(query: Query) -> Iterator[Chunk]:
    """Pull the query's source as chunks with its vectorised filters applied.

    Shared by :class:`StreamEngine` and the sharded engine so the chunk
    pipeline has exactly one implementation (the sharded path's
    one-shard bit-identity depends on it).
    """
    for raw in query.source:
        chunk = query.apply_chunk_pipeline(as_chunk(raw))
        if len(chunk):
            yield chunk


def _peek_source(query: Query) -> tuple:
    """First source element (or None when empty) plus an equivalent query.

    ``mode="auto"`` needs to know whether the source yields events or
    chunks; sequences are inspected in place, iterators are peeked and
    re-chained so no element is lost.
    """
    source = query.source
    if isinstance(source, (list, tuple)):
        return (source[0] if source else None), query
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return None, replace(query, source=())
    return first, replace(query, source=itertools.chain([first], iterator))


def _deprecated_shim(name: str, replacement: str) -> None:
    """Emit the single DeprecationWarning every legacy entry point owes."""
    warnings.warn(
        f"{name}() is deprecated; use StreamEngine().execute(query, "
        f"ExecutionPlan({replacement})) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_query(
    source: Iterable[Event],
    window: Union[CountWindow, TimeWindow],
    operator: Union[IncrementalOperator, SubWindowOperator],
    emit_partial: bool = False,
) -> list[WindowResult]:
    """Deprecated one-shot wrapper for the per-event loop.

    Use :meth:`StreamEngine.execute` with
    ``ExecutionPlan(mode="events")`` (results are bit-identical).
    """
    _deprecated_shim("run_query", "mode='events'")
    query = Query(source).windowed_by(window).aggregate(operator)
    return StreamEngine(emit_partial=emit_partial).execute_to_list(
        query, ExecutionPlan(mode="events")
    )


def run_query_chunked(
    source: Iterable[ChunkLike],
    window: Union[CountWindow, TimeWindow],
    operator: Union[IncrementalOperator, SubWindowOperator],
    emit_partial: bool = False,
) -> list[WindowResult]:
    """Deprecated one-shot wrapper for the batched path.

    Use :meth:`StreamEngine.execute` with
    ``ExecutionPlan(mode="batched")`` (results are bit-identical).
    """
    _deprecated_shim("run_query_chunked", "mode='batched'")
    query = Query(source).windowed_by(window).aggregate(operator)
    return StreamEngine(emit_partial=emit_partial).execute_to_list(
        query, ExecutionPlan(mode="batched")
    )


def run_query_batched(
    values: "np.ndarray",
    window: Union[CountWindow, TimeWindow],
    operator: Union[IncrementalOperator, SubWindowOperator],
    chunk_size: int = 65_536,
    emit_partial: bool = False,
) -> list[WindowResult]:
    """Deprecated one-shot wrapper for a value array on the batched path.

    Use :meth:`StreamEngine.execute` with a raw ``np.ndarray`` source and
    ``ExecutionPlan(mode="batched", chunk_size=...)`` — the planner does
    the chunk-stream slicing (with timestamps when the window is
    time-based) itself, with bit-identical results.
    """
    _deprecated_shim("run_query_batched", "mode='batched', chunk_size=...")
    query = (
        Query(np.asarray(values, dtype=np.float64))
        .windowed_by(window)
        .aggregate(operator)
    )
    return StreamEngine(emit_partial=emit_partial).execute_to_list(
        query, ExecutionPlan(mode="batched", chunk_size=chunk_size)
    )
