"""QLOVE: Approximate Quantiles for Datacenter Telemetry Monitoring.

A from-scratch reproduction of Lim et al. (ICDE 2020).  The package
provides:

- :mod:`repro.core` — the QLOVE algorithm (two-level quantile
  approximation, value compression, few-k merging, CLT error bound);
- :mod:`repro.streaming` — a Trill-like incremental streaming engine;
- :mod:`repro.sketches` — Exact and the four compared baselines
  (CMQS, AM, Random, Moment);
- :mod:`repro.workloads` — NetMon/Search-style telemetry generators and
  the synthetic datasets of the evaluation;
- :mod:`repro.evalkit` — metrics, runners and per-table experiment
  definitions regenerating the paper's results.

- :mod:`repro.service` — the operator-facing front door
  (:class:`MetricSpec`, :class:`Monitor`).

Quickstart::

    from repro import MetricSpec, Monitor

    monitor = Monitor()
    monitor.register(MetricSpec(
        name="rtt", quantiles=[0.5, 0.99],
        window={"size": 100_000, "period": 10_000}))
    monitor.observe_batch("rtt", values)
    print(monitor.snapshot()["rtt"])       # {0.5: ..., 0.99: ...}

Under the hood the same pipeline is a ``Qmonitor`` query executed by
:meth:`StreamEngine.execute` with an :class:`ExecutionPlan` choosing the
per-event, batched or sharded path.
"""

from repro.core import FewKConfig, QLOVEConfig, QLOVEPolicy
from repro.service import MetricSpec, Monitor, load_specs
from repro.sketches import (
    AMPolicy,
    CMQSPolicy,
    ExactPolicy,
    MomentPolicy,
    PolicyOperator,
    RandomPolicy,
    available_policies,
    make_policy,
    policy_from_state,
)
from repro.streaming import (
    Chunk,
    CountWindow,
    EngineCheckpoint,
    Event,
    ExecutionPlan,
    Query,
    StreamEngine,
    TimeWindow,
    chunk_stream,
    value_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AMPolicy",
    "CMQSPolicy",
    "Chunk",
    "CountWindow",
    "EngineCheckpoint",
    "Event",
    "ExactPolicy",
    "ExecutionPlan",
    "FewKConfig",
    "MetricSpec",
    "MomentPolicy",
    "Monitor",
    "PolicyOperator",
    "QLOVEConfig",
    "QLOVEPolicy",
    "Query",
    "RandomPolicy",
    "StreamEngine",
    "TimeWindow",
    "available_policies",
    "chunk_stream",
    "load_specs",
    "make_policy",
    "policy_from_state",
    "value_stream",
    "__version__",
]
