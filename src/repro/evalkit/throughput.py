"""Single-threaded throughput measurement (elements per second).

The paper's throughput metric is "million elements per second (M ev/s)
processed for a single thread".  We stream a dataset through the engine
with the policy under test and divide elements by wall-clock time.
Absolute numbers are hardware- and runtime-specific (pure Python here,
C#/Trill in the paper); the experiments therefore report *ratios* between
policies alongside the raw numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sketches.base import PolicyOperator, QuantilePolicy
from repro.streaming import Query, StreamEngine, value_stream
from repro.streaming.windows import CountWindow


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one throughput measurement."""

    policy: str
    elements: int
    seconds: float
    evaluations: int

    @property
    def events_per_second(self) -> float:
        """Elements processed per wall-clock second."""
        return self.elements / self.seconds if self.seconds > 0 else float("inf")

    @property
    def million_events_per_second(self) -> float:
        """The paper's M ev/s unit."""
        return self.events_per_second / 1e6


def measure_throughput(
    policy_factory: Callable[[], QuantilePolicy],
    values: np.ndarray,
    window: CountWindow,
    repeats: int = 1,
) -> ThroughputResult:
    """Best-of-``repeats`` throughput of a policy over ``values``.

    A fresh policy is built per repeat so state does not leak between
    timings; the best run is reported (standard practice to suppress
    scheduler noise on shared machines).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    best_seconds = float("inf")
    evaluations = 0
    name = "unknown"
    for _ in range(repeats):
        policy = policy_factory()
        name = policy.name
        query = (
            Query(value_stream(values))
            .windowed_by(window)
            .aggregate(PolicyOperator(policy))
        )
        engine = StreamEngine()
        start = time.perf_counter()
        count = sum(1 for _ in engine.run(query))
        elapsed = time.perf_counter() - start
        evaluations = count
        best_seconds = min(best_seconds, elapsed)
    return ThroughputResult(
        policy=name,
        elements=len(values),
        seconds=best_seconds,
        evaluations=evaluations,
    )
