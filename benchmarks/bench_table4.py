"""Table 4: sample-k merging under injected bursty traffic."""


def test_table4(run_experiment):
    result = run_experiment("table4", scale=0.5, evaluations=16)
    data = result.data
    periods = sorted(data[0.0])

    for period in periods:
        damaged = data[0.0][period][0.999]
        repaired = data[0.5][period][0.999]
        # Paper shape: bursts damage Q0.999 badly without samples (44-55%)
        # and the 0.5 fraction repairs most of it (1.5-1.75%).
        assert damaged > 0.05, period
        assert repaired < damaged, period
    # At the larger period the repair is strong (paper: 44.1% -> 1.75%).
    big = max(periods)
    assert data[0.5][big][0.999] < data[0.0][big][0.999] / 2
