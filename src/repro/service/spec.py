"""Declarative metric specifications: the *what* of a monitoring query.

A :class:`MetricSpec` names one monitored metric and everything needed to
build its quantile pipeline — quantiles, window shape, policy name and
algorithm parameters — without importing a single policy class: policies
resolve through :mod:`repro.sketches.registry` by string name, so every
registered algorithm (``qlove``, ``exact``, ``cmqs``, ``am``, ``random``,
``moment``, plus anything added via
:func:`~repro.sketches.registry.register_policy`) is constructible from
plain data.  ``from_dict``/``to_dict`` round-trip specs through
JSON/YAML-style configs, which is how the
``python -m repro monitor`` CLI and fleet config files describe metrics::

    {"name": "rtt",
     "quantiles": [0.5, 0.9, 0.99, 0.999],
     "window": {"size": 131072, "period": 16384},
     "policy": "qlove",
     "policy_params": {"fewk": {"samplek_fraction": 0.01}}}

Validation is front-loaded: a malformed spec raises an actionable
``ValueError`` at construction time, never mid-stream.
"""

from __future__ import annotations

import functools
import inspect
import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.config import FewKConfig, QLOVEConfig
from repro.sketches.registry import available_policies, make_policy
from repro.streaming.windows import CountWindow

if TYPE_CHECKING:
    from repro.sketches.base import PolicyOperator, QuantilePolicy
    from repro.streaming.query import Query

#: Keys a serialised spec dict may carry.
_SPEC_KEYS = ("name", "quantiles", "window", "policy", "policy_params", "labels", "series")

#: Keys the per-metric ``series`` options mapping accepts (labeled
#: metrics only): the :class:`~repro.series.index.SeriesIndex` knobs.
_SERIES_KEYS = ("shards", "max_active", "idle_ttl")

#: QLOVE parameters accepted flat in ``policy_params`` (assembled into a
#: :class:`~repro.core.config.QLOVEConfig`); ``config`` is the alternative.
_QLOVE_FLAT_KEYS = ("quantize_digits", "backend", "fewk")


def _as_count_window(window: object, metric: str) -> CountWindow:
    """Coerce a window argument (CountWindow or {size, period} dict)."""
    if isinstance(window, CountWindow):
        return window
    if isinstance(window, Mapping):
        extra = set(window) - {"size", "period"}
        if extra:
            raise ValueError(
                f"metric {metric!r}: unknown window key(s) {sorted(extra)}; "
                "expected {'size', 'period'}"
            )
        missing = {"size", "period"} - set(window)
        if missing:
            raise ValueError(
                f"metric {metric!r}: window is missing {sorted(missing)}; "
                "expected {'size': N, 'period': P}"
            )
        try:
            return CountWindow(size=int(window["size"]), period=int(window["period"]))
        except ValueError as exc:
            raise ValueError(f"metric {metric!r}: {exc}") from None
    raise ValueError(
        f"metric {metric!r}: window must be a CountWindow or a "
        f"{{'size', 'period'}} mapping, got {type(window).__name__}"
    )


def _as_fewk(fewk: object, metric: str) -> Optional[FewKConfig]:
    """Coerce a few-k argument (FewKConfig, mapping, bool or None)."""
    if fewk is None or fewk is False:
        return None
    if fewk is True:
        return FewKConfig()
    if isinstance(fewk, FewKConfig):
        return fewk
    if isinstance(fewk, Mapping):
        try:
            return FewKConfig(**fewk)
        except TypeError:
            known = sorted(inspect.signature(FewKConfig).parameters)
            raise ValueError(
                f"metric {metric!r}: unknown few-k parameter(s) "
                f"{sorted(set(fewk) - set(known))}; accepted: {known}"
            ) from None
    raise ValueError(
        f"metric {metric!r}: 'fewk' must be a FewKConfig, a mapping of its "
        f"fields, true/false or null, got {type(fewk).__name__}"
    )


@dataclass(frozen=True)
class MetricSpec:
    """One monitored metric, fully described by plain data.

    Parameters
    ----------
    name:
        Unique metric identifier (the key used with
        :meth:`Monitor.observe <repro.service.monitor.Monitor.observe>`).
    quantiles:
        The phis to track; each must lie strictly inside (0, 1).  Stored
        sorted and de-duplicated (matching what the policy will answer).
    window:
        A :class:`~repro.streaming.windows.CountWindow` or a
        ``{"size": N, "period": P}`` mapping; the period must divide the
        size so sub-windows align.
    policy:
        Registry name of the quantile algorithm (see
        :func:`~repro.sketches.registry.available_policies`).
    policy_params:
        Algorithm parameters forwarded to the policy constructor (e.g.
        ``epsilon`` for ``cmqs``/``am``/``random``, ``k`` for
        ``moment``).  For ``qlove`` the params are either a ``config``
        entry (a :class:`~repro.core.config.QLOVEConfig` or its dict
        form) or the flat keys ``quantize_digits`` / ``backend`` /
        ``fewk`` (``fewk`` itself a
        :class:`~repro.core.config.FewKConfig`, its dict form, or
        ``true`` for defaults).
    labels:
        ``None`` for a plain single-series metric.  A list of label
        names declares a *labeled* metric — a family of series, one per
        observed labelset (``latency{region, host}``); observations must
        then carry ``labels={...}`` matching this schema exactly.  See
        :mod:`repro.series.labels` for name rules and the canonical
        series-key encoding.
    series:
        Optional :class:`~repro.series.index.SeriesIndex` options for a
        labeled metric: ``shards`` (internal hash-shard count),
        ``max_active`` (LRU-evict beyond this many live series) and
        ``idle_ttl`` (evict series idle for this many observation
        ticks).  Only valid together with ``labels``.
    """

    name: str
    quantiles: Sequence[float]
    window: Union[CountWindow, Mapping]
    policy: str = "qlove"
    policy_params: Mapping[str, object] = field(default_factory=dict)
    labels: Optional[Sequence[str]] = None
    series: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"metric name must be a non-empty string, got {self.name!r}"
            )
        import numpy as np

        if isinstance(self.quantiles, np.ndarray):
            object.__setattr__(self, "quantiles", self.quantiles.tolist())
        if isinstance(self.quantiles, (str, bytes)) or not isinstance(
            self.quantiles, (Sequence, frozenset, set)
        ):
            raise ValueError(
                f"metric {self.name!r}: quantiles must be a sequence of "
                f"floats, got {type(self.quantiles).__name__}"
            )
        phis = [float(phi) for phi in self.quantiles]
        if not phis:
            raise ValueError(
                f"metric {self.name!r}: quantiles must be non-empty "
                "(e.g. [0.5, 0.9, 0.99, 0.999])"
            )
        for phi in phis:
            if not 0.0 < phi < 1.0:
                raise ValueError(
                    f"metric {self.name!r}: quantile {phi} is outside (0, 1); "
                    "quantiles are fractions such as 0.99, not percentages"
                )
        object.__setattr__(self, "quantiles", tuple(sorted(set(phis))))
        object.__setattr__(
            self, "window", _as_count_window(self.window, self.name)
        )
        if not isinstance(self.policy, str):
            raise ValueError(
                f"metric {self.name!r}: policy must be a registry name "
                f"string, got {type(self.policy).__name__}"
            )
        if self.policy not in available_policies():
            raise ValueError(
                f"metric {self.name!r}: unknown policy {self.policy!r}; "
                f"available: {available_policies()}"
            )
        if not isinstance(self.policy_params, Mapping):
            raise ValueError(
                f"metric {self.name!r}: policy_params must be a mapping, "
                f"got {type(self.policy_params).__name__}"
            )
        object.__setattr__(self, "policy_params", dict(self.policy_params))
        if self.labels is not None:
            from repro.series.labels import validate_label_schema

            object.__setattr__(
                self, "labels", validate_label_schema(self.labels, self.name)
            )
        object.__setattr__(
            self, "series", self._validated_series_options(self.series)
        )
        # Fail fast on malformed parameters (never mid-stream): resolving
        # fully validates QLOVE configs and non-QLOVE parameter names.
        self.resolved_params()

    def _validated_series_options(self, options: object) -> Optional[Dict[str, object]]:
        """Validate the ``series`` options mapping (labeled metrics only)."""
        if options is None:
            return None
        if self.labels is None:
            raise ValueError(
                f"metric {self.name!r}: 'series' options are only valid on "
                "a labeled metric; declare a label schema with labels=[...]"
            )
        if not isinstance(options, Mapping):
            raise ValueError(
                f"metric {self.name!r}: 'series' must be a mapping of "
                f"{list(_SERIES_KEYS)}, got {type(options).__name__}"
            )
        unknown = sorted(set(options) - set(_SERIES_KEYS))
        if unknown:
            raise ValueError(
                f"metric {self.name!r}: unknown series option(s) {unknown}; "
                f"accepted: {list(_SERIES_KEYS)}"
            )
        validated: Dict[str, object] = {}
        for key in _SERIES_KEYS:
            if key not in options:
                continue
            value = options[key]
            if value is None and key in ("max_active", "idle_ttl"):
                validated[key] = None
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"metric {self.name!r}: series option {key!r} must be a "
                    f"positive int"
                    + (" or null" if key != "shards" else "")
                    + f", got {value!r}"
                )
            validated[key] = value
        return validated

    # ------------------------------------------------------------------
    # Parameter resolution
    # ------------------------------------------------------------------
    def resolved_params(self) -> Dict[str, object]:
        """Policy-constructor keyword arguments this spec resolves to."""
        params = dict(self.policy_params)
        if self.policy != "qlove":
            self._check_param_names(params)
            return params
        config = params.pop("config", None)
        flat = {k: params.pop(k) for k in _QLOVE_FLAT_KEYS if k in params}
        if params:
            raise ValueError(
                f"metric {self.name!r}: unknown QLOVE parameter(s) "
                f"{sorted(params)}; accepted: 'config' or "
                f"{sorted(_QLOVE_FLAT_KEYS)}"
            )
        if config is not None and flat:
            raise ValueError(
                f"metric {self.name!r}: pass either 'config' or the flat "
                f"keys {sorted(flat)}, not both"
            )
        if config is None:
            if not flat:
                return {}
            fewk = _as_fewk(flat.pop("fewk", None), self.name)
            try:
                config = QLOVEConfig(fewk=fewk, **flat)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"metric {self.name!r}: {exc}") from None
        elif isinstance(config, Mapping):
            entries = dict(config)
            fewk = _as_fewk(entries.pop("fewk", None), self.name)
            try:
                config = QLOVEConfig(fewk=fewk, **entries)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"metric {self.name!r}: {exc}") from None
        elif not isinstance(config, QLOVEConfig):
            raise ValueError(
                f"metric {self.name!r}: 'config' must be a QLOVEConfig or "
                f"its dict form, got {type(config).__name__}"
            )
        return {"config": config}

    def _check_param_names(self, params: Mapping[str, object]) -> None:
        """Reject parameter names the policy constructor does not accept."""
        if not params:
            return
        from repro.sketches.registry import get_policy_factory

        factory = get_policy_factory(self.policy)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # pragma: no cover - C callables
            return
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if accepts_kwargs:
            return
        known = [
            n
            for n, p in signature.parameters.items()
            if n not in ("self", "phis", "window")
            and p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        ]
        unknown = sorted(set(params) - set(known))
        if unknown:
            raise ValueError(
                f"metric {self.name!r}: policy {self.policy!r} does not "
                f"accept parameter(s) {unknown}; accepted: {sorted(known)}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def build_policy(self) -> "QuantilePolicy":
        """Instantiate a fresh policy for this metric via the registry."""
        try:
            return make_policy(
                self.policy, self.quantiles, self.window, **self.resolved_params()
            )
        except TypeError as exc:
            raise ValueError(
                f"metric {self.name!r}: invalid parameters for policy "
                f"{self.policy!r}: {exc}"
            ) from None

    def policy_factory(self) -> Callable[[], "QuantilePolicy"]:
        """Zero-argument fresh-policy builder (picklable, for sharding)."""
        return functools.partial(
            make_policy,
            self.policy,
            self.quantiles,
            self.window,
            **self.resolved_params(),
        )

    def build_operator(self) -> "PolicyOperator":
        """Fresh policy wrapped for the streaming engine's aggregate stage."""
        from repro.sketches.base import PolicyOperator

        return PolicyOperator(self.build_policy())

    def build_query(self, source) -> "Query":
        """The equivalent hand-assembled ``Qmonitor`` query over ``source``."""
        from repro.streaming.query import Query

        return Query(source).windowed_by(self.window).aggregate(self.build_operator())

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricSpec":
        """Build a spec from its JSON/YAML dict form (see :meth:`to_dict`)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a metric spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown metric-spec key(s) {sorted(unknown)}; "
                f"accepted: {list(_SPEC_KEYS)}"
            )
        missing = {"name", "quantiles", "window"} - set(data)
        if missing:
            raise ValueError(
                f"metric spec is missing required key(s) {sorted(missing)} "
                f"(got {sorted(data)})"
            )
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            quantiles=data["quantiles"],  # type: ignore[arg-type]
            window=data["window"],  # type: ignore[arg-type]
            policy=data.get("policy", "qlove"),  # type: ignore[arg-type]
            policy_params=data.get("policy_params", {}),  # type: ignore[arg-type]
            labels=data.get("labels"),  # type: ignore[arg-type]
            series=data.get("series"),  # type: ignore[arg-type]
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; ``MetricSpec.from_dict`` round-trips it."""
        params = self.resolved_params()
        if self.policy == "qlove" and "config" in params:
            config = params["config"]
            assert isinstance(config, QLOVEConfig)
            serialised: Dict[str, object] = {
                "quantize_digits": config.quantize_digits,
                "backend": config.backend,
            }
            if config.fewk is not None:
                serialised["fewk"] = asdict(config.fewk)
            params = serialised
        from repro import serde

        # as_native strips numpy scalars that rode in through policy_params
        # (e.g. an epsilon computed from an array), so the dict always
        # survives the stdlib json encoder.
        data: Dict[str, object] = {
            "name": self.name,
            "quantiles": list(self.quantiles),
            "window": {"size": self.window.size, "period": self.window.period},
            "policy": self.policy,
            "policy_params": dict(params),
        }
        # Labeled fields appear only when set, so unlabeled specs (and
        # everything persisted under them) serialise exactly as before.
        if self.labels is not None:
            data["labels"] = list(self.labels)
        if self.series is not None:
            data["series"] = dict(self.series)
        return serde.as_native(data)

    def for_series(self, series_key: str) -> "MetricSpec":
        """The derived single-series spec a labeled family's series
        persists under: the series key becomes the metric name, the
        label schema and series options drop (the labels are encoded in
        the key).  This is what :class:`~repro.store.writer.HistoryWriter`
        registers with the store for each lazily-created series."""
        if self.labels is None:
            raise ValueError(
                f"metric {self.name!r} is not labeled; for_series() derives "
                "per-series specs of a labeled family"
            )
        return MetricSpec(
            name=series_key,
            quantiles=self.quantiles,
            window=self.window,
            policy=self.policy,
            policy_params=self.policy_params,
        )


def load_specs(path: str) -> List[MetricSpec]:
    """Load metric specs from a JSON file.

    The file holds either a list of spec dicts or an object with a
    ``"metrics"`` list — the format ``python -m repro monitor`` consumes.
    A missing file and malformed JSON raise with the path and the fix.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = handle.read()
    except FileNotFoundError:
        raise FileNotFoundError(
            f"metric-spec file {path!r} does not exist; pass the path of a "
            "JSON file holding a list of metric specs (or {'metrics': [...]})"
        ) from None
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: not valid JSON ({exc}); expected a list of metric "
            "specs or an object with a 'metrics' list"
        ) from None
    if isinstance(data, Mapping):
        if "metrics" not in data:
            raise ValueError(
                f"{path}: expected a top-level 'metrics' list or a JSON "
                f"array of metric specs (got object with keys {sorted(data)})"
            )
        data = data["metrics"]
    if not isinstance(data, list) or not data:
        raise ValueError(f"{path}: expected a non-empty list of metric specs")
    specs = [MetricSpec.from_dict(entry) for entry in data]
    names = [spec.name for spec in specs]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(f"{path}: duplicate metric name(s) {duplicates}")
    return specs
