"""Engine semantics: window lifecycle, filters, time windows, partials."""

import pytest

from repro.streaming import (
    CountWindow,
    Event,
    MeanOperator,
    Query,
    StreamEngine,
    SubWindowOperator,
    SumOperator,
    TimeWindow,
    merge_sources,
    value_stream,
)
from repro.streaming.engine import run_query
from repro.streaming.sources import events_from_values, map_values


class RecordingOperator(SubWindowOperator):
    """Fake sub-window operator that logs its lifecycle calls."""

    def __init__(self):
        self.calls = []
        self.in_flight = []
        self.sealed = []

    def accumulate(self, event):
        self.calls.append(("acc", event.value))
        self.in_flight.append(event.value)

    def seal_subwindow(self):
        self.calls.append(("seal", len(self.in_flight)))
        self.sealed.append(list(self.in_flight))
        self.in_flight = []

    def expire_subwindow(self):
        self.calls.append(("expire",))
        self.sealed.pop(0)

    def compute_result(self):
        flat = [v for sub in self.sealed for v in sub]
        return sum(flat) / len(flat) if flat else None


class TestCountSubWindow:
    def test_lifecycle_and_results(self):
        op = RecordingOperator()
        values = [float(i) for i in range(12)]
        results = run_query(value_stream(values), CountWindow(size=6, period=3), op)
        # Windows: [0..5], [3..8], [6..11] -> means 2.5, 5.5, 8.5
        assert [r.result for r in results] == [2.5, 5.5, 8.5]
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.window_count == 6 for r in results)

    def test_expire_called_only_after_full(self):
        op = RecordingOperator()
        run_query(value_stream(range(9)), CountWindow(size=6, period=3), op)
        seals = [i for i, c in enumerate(op.calls) if c[0] == "seal"]
        expires = [i for i, c in enumerate(op.calls) if c[0] == "expire"]
        assert len(seals) == 3
        assert len(expires) == 1
        assert expires[0] > seals[2]  # expiry happens when the 3rd seal overflows

    def test_tumbling_subwindow(self):
        op = RecordingOperator()
        results = run_query(value_stream(range(6)), CountWindow.tumbling(3), op)
        assert [r.result for r in results] == [1.0, 4.0]

    def test_no_emission_before_full_window(self):
        op = RecordingOperator()
        results = run_query(value_stream(range(5)), CountWindow(size=6, period=3), op)
        assert results == []

    def test_emit_partial(self):
        op = RecordingOperator()
        query = Query(value_stream(range(6))).window(6, 3).aggregate(op)
        results = StreamEngine(emit_partial=True).run_to_list(query)
        assert [r.result for r in results] == [1.0, 2.5]
        assert [r.window_count for r in results] == [3, 6]

    def test_trailing_partial_subwindow_never_evaluated(self):
        op = RecordingOperator()
        results = run_query(value_stream(range(10)), CountWindow(size=6, period=3), op)
        # 10 elements -> seals at 3, 6, 9; the 10th element stays in-flight.
        assert len(results) == 2
        assert op.in_flight == [9.0]


class TestCountIncremental:
    def test_sliding_mean(self):
        values = [float(i) for i in range(12)]
        results = run_query(value_stream(values), CountWindow(size=6, period=3), MeanOperator())
        assert [r.result for r in results] == [2.5, 5.5, 8.5]

    def test_tumbling_never_deaccumulates(self):
        class ExplodingMean(MeanOperator):
            def deaccumulate(self, state, event):
                raise AssertionError("tumbling must not deaccumulate")

        results = run_query(value_stream(range(9)), CountWindow.tumbling(3), ExplodingMean())
        assert [r.result for r in results] == [1.0, 4.0, 7.0]

    def test_filters_applied_before_windowing(self):
        events = [Event(float(i), float(i), error_code=i % 2) for i in range(20)]
        query = (
            Query(events)
            .window(4, 2)
            .where(lambda e: e.error_code != 0)
            .aggregate(SumOperator())
        )
        results = StreamEngine().run_to_list(query)
        # Odd values 1,3,5,... windows of 4 at every 2: [1,3,5,7]=16, [5,7,9,11]=32...
        assert [r.result for r in results] == [16.0, 32.0, 48.0, 64.0]

    def test_select_projects_values(self):
        query = (
            Query(value_stream(range(8)))
            .window(4, 4)
            .select(lambda e: e.value * 10)
            .aggregate(SumOperator())
        )
        results = StreamEngine().run_to_list(query)
        assert [r.result for r in results] == [60.0, 220.0]


class TestTimeWindows:
    def test_time_subwindow_with_gap(self):
        op = RecordingOperator()
        # Slot period 10: events in slots 0, 1, 3 (slot 2 empty).
        stamps = [1.0, 5.0, 12.0, 15.0, 31.0]
        events = events_from_values([10.0, 20.0, 30.0, 40.0, 50.0], stamps)
        query = Query(events).windowed_by(TimeWindow(size=20.0, period=10.0)).aggregate(op)
        results = StreamEngine(emit_partial=True).run_to_list(query)
        # Boundaries crossed when slot-3 event arrives: seals slots 0,1,2.
        assert [r.end for r in results] == [10.0, 20.0, 30.0]
        assert [r.result for r in results] == [15.0, 25.0, 35.0]
        # Slot 2 empty: window [10,30) holds slot-1 events only.
        assert results[2].window_count == 2

    def test_time_incremental_mean(self):
        stamps = [float(t) for t in range(40)]
        events = events_from_values([float(t) for t in range(40)], stamps)
        query = Query(events).windowed_by(TimeWindow(size=20.0, period=10.0)).aggregate(MeanOperator())
        results = StreamEngine().run_to_list(query)
        # First full window ends at t=20: values 0..19 -> mean 9.5; next 10..29 -> 19.5
        assert [r.result for r in results] == [9.5, 19.5]

    def test_out_of_order_raises(self):
        events = [Event(5.0, 1.0), Event(1.0, 2.0), Event(30.0, 2.0)]
        query = Query(events).windowed_by(TimeWindow(10.0, 10.0)).aggregate(MeanOperator())
        with pytest.raises(ValueError, match="timestamp-ordered"):
            StreamEngine().run_to_list(query)

    def test_out_of_order_raises_subwindow(self):
        events = [Event(5.0, 1.0), Event(1.0, 2.0), Event(30.0, 2.0)]
        query = Query(events).windowed_by(TimeWindow(10.0, 10.0)).aggregate(RecordingOperator())
        with pytest.raises(ValueError, match="timestamp-ordered"):
            StreamEngine().run_to_list(query)


class TestQueryValidation:
    def test_missing_window(self):
        query = Query(value_stream(range(4))).aggregate(MeanOperator())
        with pytest.raises(ValueError, match="window"):
            StreamEngine().run_to_list(query)

    def test_missing_aggregate(self):
        query = Query(value_stream(range(4))).window(2, 2)
        with pytest.raises(ValueError, match="aggregate"):
            StreamEngine().run_to_list(query)

    def test_builder_immutability(self):
        base = Query(value_stream(range(4)))
        windowed = base.window(2, 2)
        assert base.window_spec is None
        assert windowed.window_spec is not None


class TestSources:
    def test_value_stream_timestamps(self):
        events = list(value_stream([5.0, 6.0], start=10.0, dt=2.0, source="probe"))
        assert [(e.timestamp, e.value, e.source) for e in events] == [
            (10.0, 5.0, "probe"),
            (12.0, 6.0, "probe"),
        ]

    def test_events_from_values_alignment_checks(self):
        with pytest.raises(ValueError):
            events_from_values([1.0, 2.0], timestamps=[0.0])
        with pytest.raises(ValueError):
            events_from_values([1.0, 2.0], error_codes=[0])

    def test_merge_sources_orders_by_timestamp(self):
        a = value_stream([1.0, 2.0], start=0.0, dt=10.0, source="a")
        b = value_stream([3.0, 4.0], start=5.0, dt=10.0, source="b")
        merged = list(merge_sources(a, b))
        assert [e.timestamp for e in merged] == [0.0, 5.0, 10.0, 15.0]
        assert [e.source for e in merged] == ["a", "b", "a", "b"]

    def test_map_values(self):
        stream = map_values(value_stream([1.0, 2.0]), lambda v: v * 100)
        assert [e.value for e in stream] == [100.0, 200.0]
