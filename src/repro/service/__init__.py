"""The operator-facing service layer: one front door for monitoring.

Everything below this package — query builder, engines, policies,
sketches — is the machinery; this layer is the monitoring *product* the
paper pitches:

- :class:`~repro.service.spec.MetricSpec` — declarative description of
  one monitored metric (quantiles, window, policy by registry name),
  JSON round-trippable via ``from_dict``/``to_dict``.
- :class:`~repro.service.monitor.Monitor` — a multi-metric session:
  ``register(spec)``, ``observe``/``observe_batch``, ``snapshot()``,
  per-period callbacks, and ``merge(other)`` so monitors shard and
  combine like the sketches they host.
- :class:`~repro.service.server.TelemetryServer` /
  :class:`~repro.service.client.TelemetryClient` — the network front
  door: stdlib-only serving of a monitor with bounded-queue
  backpressure, seq-ordered multi-connection ingest and periodic
  checkpoints.  Connections speak newline-delimited JSON by default and
  can negotiate the length-prefixed binary framing of
  :mod:`repro.service.binary` — raw float64 observe payloads and
  opaque serialized-state frames (see ``docs/serving.md``).
- :class:`~repro.service.client.LoadGenerator` — deterministic seeded
  multi-connection load for the server (the ``python -m repro loadgen``
  CLI).

A spec with ``labels=[...]`` registers a *labeled* metric — a
high-cardinality family of per-labelset series with group-by quantile
queries; the machinery lives in :mod:`repro.series` (see
``docs/labels.md``).

Scaling work (sharding, batching, future async ingest and multi-backend
storage) plugs in underneath via
:class:`~repro.streaming.plan.ExecutionPlan` without touching this
surface.
"""

from repro.service.client import (
    LoadGenerator,
    ServerError,
    TelemetryClient,
    wait_for_server,
)
from repro.service.monitor import MetricChannel, Monitor
from repro.service.server import IngestQueue, TelemetryServer
from repro.service.spec import MetricSpec, load_specs

__all__ = [
    "IngestQueue",
    "LoadGenerator",
    "MetricChannel",
    "MetricSpec",
    "Monitor",
    "ServerError",
    "TelemetryClient",
    "TelemetryServer",
    "load_specs",
    "wait_for_server",
]
