"""Adapters turning raw values and datasets into event streams.

Telemetry arrives at the engine as :class:`~repro.streaming.event.Event`
objects.  These helpers wrap numpy arrays, Python iterables and multiple
concurrent probes (merged by timestamp) into event iterators.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.streaming.event import Event


def value_stream(
    values: Iterable[float],
    start: float = 0.0,
    dt: float = 1.0,
    error_code: int = 0,
    source: Optional[str] = None,
) -> Iterator[Event]:
    """Wrap plain values into events with evenly spaced timestamps.

    The default spacing of one time unit per element makes count windows and
    time windows coincide, which simplifies cross-checking the two engines.
    """
    timestamp = start
    for value in values:
        yield Event(
            timestamp=timestamp, value=float(value), error_code=error_code, source=source
        )
        timestamp += dt


def events_from_values(
    values: Sequence[float],
    timestamps: Optional[Sequence[float]] = None,
    error_codes: Optional[Sequence[int]] = None,
    source: Optional[str] = None,
) -> list[Event]:
    """Materialise an event list from parallel value/timestamp sequences."""
    if timestamps is not None and len(timestamps) != len(values):
        raise ValueError("timestamps must align with values")
    if error_codes is not None and len(error_codes) != len(values):
        raise ValueError("error_codes must align with values")
    events = []
    for i, value in enumerate(values):
        events.append(
            Event(
                timestamp=float(timestamps[i]) if timestamps is not None else float(i),
                value=float(value),
                error_code=int(error_codes[i]) if error_codes is not None else 0,
                source=source,
            )
        )
    return events


def merge_sources(*streams: Iterable[Event]) -> Iterator[Event]:
    """Merge timestamp-ordered event streams into one ordered stream.

    Models a monitoring pipeline ingesting many probes at once ("a large
    stream of data may originate from different sources to be processed by
    a streaming engine", Section 6).  Each input must itself be ordered.
    """
    return heapq.merge(*streams)


def map_values(
    stream: Iterable[Event], transform: Callable[[float], float]
) -> Iterator[Event]:
    """Apply a value transform to every event (e.g. unit conversion)."""
    for event in stream:
        yield event.with_value(transform(event.value))
