"""Compaction mechanics: rollup shapes, horizons, durability."""

from __future__ import annotations

import pytest

from repro.store import SegmentStore, StoreError, query_range

from tests.store.conftest import make_spec, stream_values, write_history


@pytest.fixture()
def populated(tmp_path):
    """A 16-period exact-policy history plus its backing directory."""
    spec = make_spec("exact")
    values = stream_values(3, 16)
    store = write_history(tmp_path, [spec], values)
    return spec, store, tmp_path / "hist"


class TestRollupShapes:
    def test_rollup_width_and_kind(self, populated):
        spec, store, _ = populated
        built = store.compact(rollup_periods=4, min_age=0)
        assert built == 4
        segments = store.segments(spec.name)
        assert [(s.kind, s.start_period, s.end_period) for s in segments] == [
            ("rollup", 0, 4),
            ("rollup", 4, 8),
            ("rollup", 8, 12),
            ("rollup", 12, 16),
        ]

    def test_rollup_counts_sum_children(self, populated):
        spec, store, _ = populated
        store.compact(rollup_periods=4, min_age=0)
        assert all(s.count == 4 * 250 for s in store.segments(spec.name))

    def test_coverage_unchanged_by_compaction(self, populated):
        spec, store, _ = populated
        before = store.coverage(spec.name)
        store.compact(rollup_periods=4, min_age=0)
        assert store.coverage(spec.name) == before

    def test_min_age_keeps_recent_tail_fine(self, populated):
        spec, store, _ = populated
        store.compact(rollup_periods=4, min_age=6)
        segments = store.segments(spec.name)
        # Periods within min_age of the write head stay un-compacted.
        tail = [s for s in segments if s.start_period >= 10]
        assert all(s.kind == "period" for s in tail)
        head = [s for s in segments if s.end_period <= 8]
        assert all(s.kind == "rollup" for s in head)

    def test_remnant_short_run_stays_fine(self, tmp_path):
        spec = make_spec("exact")
        store = write_history(tmp_path, [spec], stream_values(1, 6))
        built = store.compact(rollup_periods=4, min_age=0)
        assert built == 1
        kinds = [s.kind for s in store.segments(spec.name)]
        assert kinds == ["rollup", "period", "period"]

    def test_noop_when_nothing_old_enough(self, populated):
        spec, store, _ = populated
        assert store.compact(rollup_periods=4, min_age=100) == 0
        assert all(s.kind == "period" for s in store.segments(spec.name))

    def test_idempotent_second_pass(self, populated):
        _, store, _ = populated
        assert store.compact(rollup_periods=4, min_age=0) == 4
        assert store.compact(rollup_periods=4, min_age=0) == 0

    def test_wider_repack_of_existing_rollups(self, populated):
        spec, store, _ = populated
        store.compact(rollup_periods=2, min_age=0)
        assert store.compact(rollup_periods=8, min_age=0) == 2
        assert [s.periods for s in store.segments(spec.name)] == [8, 8]


class TestCompactionArgs:
    def test_noop_without_width_or_policy(self, populated):
        """No configured width means maintain()-style calls are a no-op."""
        spec, store, _ = populated
        assert store.compact() == 0
        assert all(s.kind == "period" for s in store.segments(spec.name))

    def test_rejects_width_one(self, populated):
        _, store, _ = populated
        with pytest.raises((StoreError, ValueError), match="rollup_periods"):
            store.compact(rollup_periods=1)

    def test_unknown_metric(self, populated):
        _, store, _ = populated
        with pytest.raises(StoreError):
            store.compact(metric="nope", rollup_periods=4)


class TestDurability:
    def test_compaction_survives_reopen(self, populated):
        spec, store, directory = populated
        before = query_range(store, spec.name, 0, 16)
        store.compact(rollup_periods=4, min_age=0)
        store.close()
        reopened = SegmentStore(str(directory))
        segments = reopened.segments(spec.name)
        assert [s.kind for s in segments] == ["rollup"] * 4
        after = query_range(reopened, spec.name, 0, 16)
        assert after["quantiles"] == before["quantiles"]
        assert after["count"] == before["count"]
        assert after["segments_merged"] == 4

    def test_log_shrinks_on_disk(self, populated):
        spec, store, directory = populated
        path = directory / f"{spec.name}.seg"
        fine_size = path.stat().st_size
        store.compact(rollup_periods=16, min_age=0)
        assert path.stat().st_size < fine_size

    def test_append_continues_after_compaction(self, populated, tmp_path):
        spec, store, _ = populated
        store.compact(rollup_periods=4, min_age=0)
        from repro.service.monitor import Monitor
        from repro.store import HistoryWriter

        # A resumed writer over the same store keeps appending period 16+.
        monitor = Monitor()
        monitor.register(spec)
        writer = HistoryWriter(store)
        writer.attach(monitor)
        values = stream_values(9, 17)
        monitor.observe_batch(spec.name, values)
        # Replay of periods 0..15 is duplicate-skipped; period 16 lands.
        assert store.coverage(spec.name) == (0, 17)
        assert store.duplicates_skipped == 16

    def test_misaligned_query_names_boundaries(self, populated):
        spec, store, _ = populated
        store.compact(rollup_periods=4, min_age=0)
        with pytest.raises(StoreError, match=r"\[0, 4, 8, 12, 16\]"):
            query_range(store, spec.name, 2, 10)
