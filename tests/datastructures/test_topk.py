"""Tests for the bounded top-k keeper."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import TopKKeeper


class TestTopK:
    def test_keeps_largest(self):
        keeper = TopKKeeper(3, [1.0, 9.0, 5.0, 7.0, 2.0])
        assert keeper.values_descending() == [9.0, 7.0, 5.0]

    def test_under_capacity(self):
        keeper = TopKKeeper(10, [3.0, 1.0])
        assert keeper.values_descending() == [3.0, 1.0]
        assert len(keeper) == 2

    def test_zero_capacity(self):
        keeper = TopKKeeper(0)
        assert keeper.offer(5.0) is False
        assert keeper.values_descending() == []

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            TopKKeeper(-1)

    def test_offer_reports_retention(self):
        keeper = TopKKeeper(2, [5.0, 6.0])
        assert keeper.offer(1.0) is False
        assert keeper.offer(9.0) is True
        assert keeper.values_descending() == [9.0, 6.0]

    def test_duplicates_retained(self):
        keeper = TopKKeeper(3, [4.0, 4.0, 4.0, 1.0])
        assert keeper.values_descending() == [4.0, 4.0, 4.0]

    def test_threshold(self):
        keeper = TopKKeeper(2, [1.0, 5.0, 3.0])
        assert keeper.threshold() == 3.0

    def test_threshold_empty_raises(self):
        with pytest.raises(IndexError):
            TopKKeeper(2).threshold()

    def test_merge(self):
        a = TopKKeeper(3, [1.0, 2.0, 3.0])
        b = TopKKeeper(3, [10.0, 0.5])
        a.merge(b)
        assert a.values_descending() == [10.0, 3.0, 2.0]

    def test_clear_preserves_capacity(self):
        keeper = TopKKeeper(2, [1.0, 2.0])
        keeper.clear()
        assert len(keeper) == 0
        assert keeper.k == 2
        keeper.offer(7.0)
        assert keeper.values_descending() == [7.0]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=200),
    st.integers(min_value=0, max_value=20),
)
def test_property_matches_sorted_slice(values, k):
    keeper = TopKKeeper(k, values)
    assert keeper.values_descending() == sorted(values, reverse=True)[:k]


def test_streaming_equivalence_large():
    rng = random.Random(5)
    values = [rng.gauss(0, 100) for _ in range(5000)]
    keeper = TopKKeeper(50, values)
    assert keeper.values_descending() == sorted(values, reverse=True)[:50]
