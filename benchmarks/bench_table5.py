"""Table 5: non-i.i.d. robustness on AR(1) streams."""


def test_table5(run_experiment):
    result = run_experiment("table5", scale=0.25, evaluations=12)
    data = result.data

    for psi, payload in data.items():
        # Errors stay tiny on normal-marginal data for every correlation
        # level (paper: 1e-5..1e-3).
        for phi, error in payload["errors"].items():
            assert error < 0.02, (psi, phi)
        # Theorem 1's bound covers the aggregation error essentially always
        # (paper: empirical probability 1).
        assert payload["coverage"] >= 0.95, psi

    # Errors grow only mildly with correlation (0.8 vs iid within ~10x).
    assert data[0.8]["errors"][0.99] < 10 * max(data[0.0]["errors"][0.99], 1e-5)
