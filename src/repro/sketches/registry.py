"""Policy factory: instantiate any compared algorithm by name.

Experiments and benchmarks refer to policies by the names used in the
paper's tables: ``qlove``, ``exact``, ``cmqs``, ``am``, ``random``,
``moment``.  QLOVE lives in :mod:`repro.core` and is imported lazily to
keep the dependency direction core -> sketches.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro import serde
from repro.sketches.am import AMPolicy
from repro.sketches.base import QuantilePolicy
from repro.sketches.cmqs import CMQSPolicy
from repro.sketches.exact import ExactPolicy
from repro.sketches.moments import MomentPolicy
from repro.sketches.random_sketch import RandomPolicy
from repro.streaming.windows import CountWindow

PolicyFactory = Callable[..., QuantilePolicy]

#: Loads a policy from its ``to_state()`` dict.
StateLoader = Callable[[dict], QuantilePolicy]


def _qlove_factory(
    phis: Sequence[float], window: CountWindow, **params: object
) -> QuantilePolicy:
    from repro.core.qlove import QLOVEPolicy

    return QLOVEPolicy(phis, window, **params)  # type: ignore[arg-type]


def _qlove_state_loader(state: dict) -> QuantilePolicy:
    from repro.core.qlove import QLOVEPolicy

    return QLOVEPolicy.from_state(state)


_REGISTRY: Dict[str, PolicyFactory] = {
    "exact": ExactPolicy,
    "cmqs": CMQSPolicy,
    "am": AMPolicy,
    "random": RandomPolicy,
    "moment": MomentPolicy,
    "qlove": _qlove_factory,
}

_STATE_LOADERS: Dict[str, StateLoader] = {
    "exact": ExactPolicy.from_state,
    "cmqs": CMQSPolicy.from_state,
    "am": AMPolicy.from_state,
    "random": RandomPolicy.from_state,
    "moment": MomentPolicy.from_state,
    "qlove": _qlove_state_loader,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_REGISTRY)


def register_policy(
    name: str,
    factory: PolicyFactory,
    state_loader: Optional[StateLoader] = None,
) -> None:
    """Add (or replace) a policy factory under ``name``.

    The factory is called as ``factory(phis, window, **params)`` and must
    return a :class:`~repro.sketches.base.QuantilePolicy`.  Registration
    makes the policy constructible from declarative
    :class:`~repro.service.spec.MetricSpec` configs and the CLI without
    any imports at the call site.

    ``state_loader`` (usually the policy class's ``from_state``) makes the
    policy restorable through :func:`policy_from_state`, which is what
    ``Monitor.load`` and checkpoint resume dispatch through; without it a
    saved state of this policy cannot be loaded back.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"policy factory must be callable, got {type(factory).__name__}")
    if state_loader is not None and not callable(state_loader):
        raise TypeError(
            f"state_loader must be callable, got {type(state_loader).__name__}"
        )
    _REGISTRY[name] = factory
    if state_loader is not None:
        _STATE_LOADERS[name] = state_loader
    else:
        _STATE_LOADERS.pop(name, None)


def policy_from_state(state: dict) -> QuantilePolicy:
    """Rebuild any registered policy from its ``to_state()`` dict.

    Dispatches on the state's ``policy`` tag, so callers (checkpoint
    resume, ``Monitor.load``) need no knowledge of the concrete class.
    Raises :class:`~repro.serde.StateError` with an actionable message
    when the dict is not a policy state or names an unregistered policy.
    """
    if not isinstance(state, dict) or state.get("kind") != "policy":
        raise serde.StateError(
            "expected a policy state dict (kind='policy') as produced by "
            f"QuantilePolicy.to_state(), got "
            f"{state.get('kind') if isinstance(state, dict) else type(state).__name__!r}"
        )
    name = state.get("policy")
    try:
        loader = _STATE_LOADERS[name]
    except KeyError:
        raise serde.StateError(
            f"cannot restore policy state: policy {name!r} has no registered "
            f"state loader; loadable policies: {sorted(_STATE_LOADERS)} "
            "(register one with register_policy(name, factory, state_loader=...))"
        ) from None
    return loader(state)


def get_policy_factory(name: str) -> PolicyFactory:
    """The raw registered factory for ``name`` (for signature inspection)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None


def make_policy(
    name: str,
    phis: Sequence[float],
    window: CountWindow,
    **params: object,
) -> QuantilePolicy:
    """Instantiate a policy by its paper name with algorithm parameters.

    ``params`` are forwarded to the policy constructor (e.g.
    ``epsilon=0.02`` for CMQS/AM/Random, ``k=12`` for Moment, few-k
    settings for QLOVE).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(phis, window, **params)
