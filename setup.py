"""Package metadata and console scripts.

The execution environment is offline and ships setuptools without the
``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``; install with
``pip install -e . --no-use-pep517 --no-build-isolation`` (the legacy
``setup.py develop`` path).

Installs two equivalent console scripts: ``repro`` (matching
``python -m repro``) and the historical ``qlove-bench`` alias — both
expose the experiments plus the ``monitor`` / ``serve`` / ``loadgen``
subcommands.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.5.0",
    description=(
        "Reproduction of 'Approximate Quantiles for Datacenter Telemetry "
        "Monitoring' grown into a servable monitoring system"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.evalkit.cli:main",
            "qlove-bench=repro.evalkit.cli:main",
        ]
    },
)
