"""Sharded execution study: accuracy invariance and scaling vs shard count.

The paper's Section 7 outlook argues QLOVE's mergeable state lets a
coordinator combine independently built per-node summaries.  This
experiment exercises the whole sharded subsystem over the NetMon
workload:

- **Invariance** — QLOVE and Exact answers through
  :class:`~repro.streaming.sharded.ShardedEngine` are identical to the
  single-engine chunked path at every shard count (commutative Level-1
  merges), and the sketch policies stay within their error bounds.
- **Scaling** — serial sharded ingest throughput per shard count, showing
  the partition-and-merge overhead the parallel backend has to amortise.
- **Space** — coordinator-side accounting via
  :class:`~repro.core.distributed.FleetCoordinator`.
"""

from __future__ import annotations

from typing import Dict

from repro.core.distributed import FleetCoordinator
from repro.evalkit.experiments.common import (
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    scaled_window,
    stream_length,
)
from repro.evalkit.metrics import exact_quantiles, relative_value_error
from repro.evalkit.reporting import Table
from repro.evalkit.throughput import measure_throughput_sharded
from repro.sketches.base import PolicyOperator
from repro.sketches.registry import make_policy
from repro.streaming import ExecutionPlan, Query, StreamEngine
from repro.workloads import generate_netmon

WINDOW_SIZE = 32_768
PERIOD = 4_096
SHARD_COUNTS = (1, 2, 4, 8)
POLICIES = ("qlove", "exact", "cmqs", "random")


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 8) -> ExperimentResult:
    """Compare sharded vs single-engine execution across shard counts."""
    window = scaled_window(WINDOW_SIZE, PERIOD, scale)
    values = generate_netmon(stream_length(window, evaluations), seed=seed)

    accuracy = Table(
        f"Sharded vs single-engine answers, NetMon {len(values):,} elements, "
        f"window {window.size:,}/{window.period:,}",
        ["policy", "shards", "identical", "max rel.err vs exact"],
    )
    throughput = Table(
        "Serial sharded ingest throughput (QLOVE, round-robin partitioner)",
        ["shards", "M ev/s"],
    )
    data: Dict[str, object] = {}

    engine = StreamEngine()
    for name in POLICIES:
        factory = lambda name=name: make_policy(name, QMONITOR_PHIS, window)
        reference = engine.execute_to_list(
            Query(values).windowed_by(window).aggregate(PolicyOperator(factory())),
            ExecutionPlan(mode="batched"),
        )
        truth = dict(
            zip(
                QMONITOR_PHIS,
                exact_quantiles(values[-window.size :], QMONITOR_PHIS),
            )
        )
        for n_shards in SHARD_COUNTS:
            results = engine.execute_to_list(
                Query(values).windowed_by(window),
                ExecutionPlan(
                    mode="sharded", n_shards=n_shards, policy_factory=factory
                ),
            )
            identical = results == reference
            final = results[-1].result
            max_err = max(
                relative_value_error(final[phi], truth[phi])
                for phi in QMONITOR_PHIS
            )
            data[f"{name}/shards={n_shards}"] = {
                "identical": identical,
                "max_rel_err": max_err,
            }
            accuracy.add_row(
                name, str(n_shards), "yes" if identical else "no", f"{max_err:.4f}"
            )

    qlove_factory = lambda: make_policy("qlove", QMONITOR_PHIS, window)  # noqa: E731
    for n_shards in SHARD_COUNTS:
        outcome = measure_throughput_sharded(
            qlove_factory, values, window, n_shards=n_shards
        )
        data[f"throughput/shards={n_shards}"] = outcome.million_events_per_second
        throughput.add_row(str(n_shards), f"{outcome.million_events_per_second:.3f}")

    # Coordinator-side accounting over a 4-node fleet built via the sharded
    # subsystem's machinery: combine per-shard policies and report space.
    coordinator = FleetCoordinator(qlove_factory)
    nodes = [qlove_factory() for _ in range(4)]
    quarter = len(values) // 4
    for i, node in enumerate(nodes):
        shard_values = values[i * quarter : (i + 1) * quarter]
        position = 0
        while position + window.period <= len(shard_values):
            node.accumulate_batch(shard_values[position : position + window.period])
            node.seal_subwindow()
            if node.live_summaries() > window.subwindow_count:
                node.expire_subwindow()
            position += window.period
    report = coordinator.fleet_report(nodes)
    data["fleet_report"] = report
    space = Table(
        "FleetCoordinator accounting (4 QLOVE nodes, NetMon quarters)",
        ["nodes", "total space (vars)", "max node space"],
    )
    space.add_row(
        str(report["node_count"]),
        f"{report['total_space']:,}",
        f"{report['max_node_space']:,}",
    )

    return ExperimentResult(
        name="sharded",
        tables=[accuracy, throughput, space],
        data=data,
        notes=describe_scale(scale),
    )
