"""Mann–Whitney U test — "a test of whether one of two random variables is
stochastically larger than the other" [22].

QLOVE's burst detector (Section 4.3) asks whether the sampled largest
values of the current sub-window are stochastically larger than those of
the previous sub-window.  We implement the rank-sum form with midrank tie
handling and the normal approximation with tie correction, which is
appropriate for the sample sizes few-k produces (tens of values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.stats.normal import normal_cdf

_ALTERNATIVES = ("two-sided", "greater", "less")


@dataclass(frozen=True, slots=True)
class MannWhitneyResult:
    """Outcome of a Mann–Whitney U test."""

    u_statistic: float  # U of the first sample
    z_score: float
    p_value: float

    def rejects_at(self, alpha: float) -> bool:
        """True when the null (no stochastic ordering) is rejected."""
        return self.p_value < alpha


def _midranks(pooled: Sequence[float]) -> tuple[list[float], float]:
    """Midranks of the pooled sample and the tie-correction sum T.

    T = sum over tie groups of (t^3 - t), used in the variance correction.
    """
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    tie_sum = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and pooled[order[j + 1]] == pooled[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        t = j - i + 1
        if t > 1:
            tie_sum += t**3 - t
        i = j + 1
    return ranks, tie_sum


def mann_whitney_u(
    x: Sequence[float],
    y: Sequence[float],
    alternative: str = "greater",
) -> MannWhitneyResult:
    """Test whether ``x`` is stochastically larger than ``y``.

    ``alternative="greater"`` (the burst-detection direction) rejects when
    x's values tend to exceed y's.  Uses the normal approximation with tie
    correction and a 0.5 continuity correction.
    """
    if alternative not in _ALTERNATIVES:
        raise ValueError(f"alternative must be one of {_ALTERNATIVES}")
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    pooled = list(x) + list(y)
    ranks, tie_sum = _midranks(pooled)
    rank_sum_x = sum(ranks[:n1])
    u_x = rank_sum_x - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0
    n = n1 + n2
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_sum / (n * (n - 1)))
    if variance <= 0.0:
        # All pooled values identical: no evidence of any ordering.
        return MannWhitneyResult(u_statistic=u_x, z_score=0.0, p_value=1.0)
    sd = variance**0.5
    if alternative == "greater":
        z = (u_x - mean_u - 0.5) / sd
        p = 1.0 - normal_cdf(z)
    elif alternative == "less":
        z = (u_x - mean_u + 0.5) / sd
        p = normal_cdf(z)
    else:
        z = (u_x - mean_u) / sd
        shift = 0.5 if z < 0 else -0.5
        z_corrected = (u_x - mean_u + shift) / sd
        p = 2.0 * (1.0 - normal_cdf(abs(z_corrected)))
        p = min(1.0, p)
    return MannWhitneyResult(u_statistic=u_x, z_score=z, p_value=p)
