"""Quickstart: the paper's Qmonitor query through the Monitor facade.

The monitoring primitive of Section 5.1 —

    Qmonitor = Stream
        .Window(windowSize, period)
        .Aggregate(c => c.Quantile(0.5, 0.9, 0.99, 0.999))

— is one declarative spec at the service layer:

    monitor.register(MetricSpec(name="rtt", quantiles=[...],
                                window={"size": N, "period": P}))
    monitor.observe_batch("rtt", values)

This script runs it with the QLOVE policy, cross-checks the final
evaluation against numpy-exact quantiles, and then peels the facade
back: the same pipeline hand-assembled as a Query and driven through
``StreamEngine.execute`` on the per-event and batched paths returns
identical results.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import ExecutionPlan, MetricSpec, Monitor, StreamEngine
from repro.evalkit import exact_quantiles
from repro.workloads import generate_netmon

PHIS = [0.5, 0.9, 0.99, 0.999]
WINDOW = {"size": 100_000, "period": 10_000}
STREAM_LENGTH = 200_000


def main() -> None:
    values = generate_netmon(STREAM_LENGTH, seed=7)

    # ------------------------------------------------------------------
    # The front door: a declarative metric spec + the Monitor facade.
    # ------------------------------------------------------------------
    spec = MetricSpec(name="rtt", quantiles=PHIS, window=WINDOW)
    monitor = Monitor()
    monitor.register(spec)

    print(f"QLOVE over a sliding window of {spec.window.size:,} RTTs, "
          f"evaluated every {spec.window.period:,} events\n")
    start = time.perf_counter()
    monitor.observe_batch("rtt", values)
    monitor_seconds = time.perf_counter() - start

    results = monitor.results("rtt")
    print(f"{'eval':>4}  " + "  ".join(f"Q{phi:<5}" for phi in PHIS))
    for result in results:
        row = "  ".join(f"{result.result[phi]:6.0f}" for phi in PHIS)
        print(f"{result.index:>4}  {row}")
    last = results[-1]
    assert monitor.snapshot()["rtt"] == last.result

    # Cross-check the final window against exact order statistics.
    window_values = values[int(last.end) - spec.window.size : int(last.end)]
    truth = exact_quantiles(window_values, PHIS)
    print("\nfinal window, exact vs QLOVE:")
    for phi, exact in zip(PHIS, truth):
        estimate = last.result[phi]
        err = 100 * abs(estimate - exact) / exact
        print(f"  Q{phi:<5}  exact={exact:8.0f}  qlove={estimate:8.0f}  "
              f"rel.err={err:5.2f}%")
    accounting = monitor.space_report()["rtt"]
    print(f"\nstate: {accounting['peak_space']:,} variables "
          f"(window holds {spec.window.size:,} elements)")

    # ------------------------------------------------------------------
    # Under the hood: the same pipeline as a hand-assembled query, driven
    # through the unified planner on both ingestion paths.
    # ------------------------------------------------------------------
    engine = StreamEngine()
    start = time.perf_counter()
    per_event = engine.execute_to_list(
        spec.build_query(values), ExecutionPlan(mode="events")
    )
    per_event_seconds = time.perf_counter() - start
    assert per_event == results, "facade must match the per-event engine"

    # mode="auto" sees the numpy-array source and picks the batched path.
    start = time.perf_counter()
    batched = engine.execute_to_list(spec.build_query(values))
    batched_seconds = time.perf_counter() - start
    assert batched == results, "batched path must be bit-identical"
    print(f"\nbatched ingestion: identical results, "
          f"{per_event_seconds / batched_seconds:.1f}x faster "
          f"({len(values) / batched_seconds / 1e6:.1f} M ev/s vs "
          f"{len(values) / per_event_seconds / 1e6:.1f} M ev/s; "
          f"facade ingest: {len(values) / monitor_seconds / 1e6:.1f} M ev/s)")


if __name__ == "__main__":
    main()
