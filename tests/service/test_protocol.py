"""Wire-protocol framing: newline-delimited JSON, errors, limits."""

import io
import json

import pytest

from repro.service import protocol


class TestEncode:
    def test_one_compact_json_line(self):
        frame = protocol.encode_message({"op": "ping", "n": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        assert json.loads(frame) == {"op": "ping", "n": 1}

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="JSON objects"):
            protocol.encode_message(["not", "an", "object"])

    def test_round_trips_through_recv(self):
        message = {"op": "observe", "metric": "rtt", "values": [1.5, 2.25], "seq": 3}
        stream = io.BytesIO(protocol.encode_message(message))
        assert protocol.recv_message(stream) == message

    def test_float_values_round_trip_exactly(self):
        values = [0.1, 1e-300, 12345.6789, 2.0**53 - 1]
        stream = io.BytesIO(
            protocol.encode_message({"op": "observe", "values": values})
        )
        assert protocol.recv_message(stream)["values"] == values


class TestRecv:
    def test_clean_eof_returns_none(self):
        assert protocol.recv_message(io.BytesIO(b"")) is None

    def test_eof_mid_line_raises_connection_closed(self):
        stream = io.BytesIO(b'{"op": "ping"')  # no trailing newline
        with pytest.raises(protocol.ConnectionClosed, match="mid-message"):
            protocol.recv_message(stream)

    def test_invalid_json_raises_protocol_error(self):
        stream = io.BytesIO(b"{nope}\n")
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.recv_message(stream)

    def test_non_object_frame_raises_protocol_error(self):
        stream = io.BytesIO(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.recv_message(stream)

    def test_oversized_frame_raises_protocol_error(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        stream = io.BytesIO(b"x" * 200 + b"\n")
        with pytest.raises(protocol.ProtocolError, match="exceeds 64 bytes"):
            protocol.recv_message(stream)

    def test_multiple_messages_read_in_order(self):
        stream = io.BytesIO(
            protocol.encode_message({"op": "ping"})
            + protocol.encode_message({"op": "stats"})
        )
        assert protocol.recv_message(stream) == {"op": "ping"}
        assert protocol.recv_message(stream) == {"op": "stats"}
        assert protocol.recv_message(stream) is None


class TestResponses:
    def test_ok_response_merges_payload(self):
        assert protocol.ok_response(pong=True) == {"ok": True, "pong": True}

    def test_error_response_shape(self):
        assert protocol.error_response("nope") == {"ok": False, "error": "nope"}
