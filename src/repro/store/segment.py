"""Segment records: the on-disk unit of the historical quantile store.

A **segment** is one time-slice of one metric's sketch state: the
versioned ``to_state()`` dict of a policy that ingested *exactly* the
events of periods ``[start_period, end_period)`` and sealed them.  Fine
segments written by the :class:`~repro.store.writer.HistoryWriter` cover
one period each (``end_period == start_period + 1``); compaction rolls
runs of them into coarser ``rollup`` segments whose state is the merge of
their children — for time-composable policies, query-equivalent bit for
bit (see ``docs/history.md``).

On disk a segment is one **framed record line**::

    <crc32 of body, 8 lowercase hex chars> <body JSON, one line>\\n

The CRC plus the trailing newline make torn writes detectable: a record
interrupted by a crash (``kill -9`` mid-append) fails the checksum or
lacks its newline, and :class:`~repro.store.store.SegmentStore` truncates
the log back to the last intact record on reopen — committed history is
never lost, and no torn segment is ever served.

Forward compatibility is two-tier, matching the serde contract:

- an unknown *version* raises :class:`~repro.serde.StateError` (the dump
  was written by a newer release — upgrading is the only safe move);
- an unknown *field* on a known version warns
  (:class:`~repro.serde.StateCompatWarning`) and is ignored — a newer
  minor release may annotate records with extra fields without breaking
  older readers.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import serde

#: State-format version written by :meth:`Segment.to_record`.
SEGMENT_VERSION = 1

#: State-format version of the per-metric spec record heading each log.
SPEC_RECORD_VERSION = 1

#: Segment kinds: one period ("period") or a compacted run ("rollup").
SEGMENT_KINDS = ("period", "rollup")

#: Fields a version-1 segment record is known to carry.
_SEGMENT_FIELDS = ("metric", "segment_kind", "start_period", "end_period", "count", "state")

#: Fields a version-1 spec record is known to carry.
_SPEC_FIELDS = ("metric", "spec")


class TornRecord(ValueError):
    """A framed record line that fails CRC/framing checks (torn write)."""


@dataclass(frozen=True)
class Segment:
    """One durable time-slice of one metric's sketch state.

    ``state`` is the ``to_state()`` dict of a policy holding exactly the
    sealed sub-windows of periods ``[start_period, end_period)`` (one
    sealed sub-window per period, empty in-flight state).
    """

    metric: str
    start_period: int
    end_period: int
    count: int
    state: Dict[str, Any]
    kind: str = "period"

    def __post_init__(self) -> None:
        if not isinstance(self.metric, str) or not self.metric:
            raise ValueError(f"segment metric must be a non-empty string, got {self.metric!r}")
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(
                f"segment kind must be one of {list(SEGMENT_KINDS)}, got {self.kind!r}"
            )
        for name in ("start_period", "end_period", "count"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"segment {name} must be a non-negative int, got {value!r}"
                )
        if self.end_period <= self.start_period:
            raise ValueError(
                f"segment period range [{self.start_period}, {self.end_period}) "
                "is empty; end_period must exceed start_period"
            )
        if not isinstance(self.state, dict):
            raise ValueError(
                f"segment state must be a policy to_state() dict, got "
                f"{type(self.state).__name__}"
            )

    @property
    def periods(self) -> int:
        """Number of periods this segment covers."""
        return self.end_period - self.start_period

    # ------------------------------------------------------------------
    # Record (de)serialisation
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """The JSON-safe record dict framed into one log line."""
        record = serde.header("segment", SEGMENT_VERSION)
        record["metric"] = self.metric
        record["segment_kind"] = self.kind
        record["start_period"] = int(self.start_period)
        record["end_period"] = int(self.end_period)
        record["count"] = int(self.count)
        record["state"] = serde.as_native(self.state)
        return record

    @classmethod
    def from_record(cls, record: Any) -> "Segment":
        """Rebuild a segment from its record dict.

        Unknown versions raise :class:`~repro.serde.StateError`; unknown
        extra fields on a known version warn and are ignored (see the
        module docstring's forward-compatibility contract).
        """
        serde.check_state(record, "segment", SEGMENT_VERSION, "segment record")
        serde.require_fields(record, _SEGMENT_FIELDS, "segment record")
        serde.warn_unknown_fields(record, _SEGMENT_FIELDS, "segment record")
        state = record["state"]
        if not isinstance(state, dict):
            raise serde.StateError(
                "segment record: 'state' must be a policy to_state() dict, "
                f"got {type(state).__name__}"
            )
        try:
            return cls(
                metric=record["metric"],
                start_period=int(record["start_period"]),
                end_period=int(record["end_period"]),
                count=int(record["count"]),
                state=dict(state),
                kind=record["segment_kind"],
            )
        except (TypeError, ValueError) as exc:
            raise serde.StateError(f"segment record: {exc}") from None


def spec_record(metric: str, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The log-heading record carrying a metric's canonical spec dict."""
    record = serde.header("metric_spec_record", SPEC_RECORD_VERSION)
    record["metric"] = metric
    record["spec"] = serde.as_native(spec_dict)
    return record


def read_spec_record(record: Any) -> Dict[str, Any]:
    """Validate a spec record; returns its spec dict.

    Same two-tier compatibility as :meth:`Segment.from_record`.
    """
    serde.check_state(record, "metric_spec_record", SPEC_RECORD_VERSION, "spec record")
    serde.require_fields(record, _SPEC_FIELDS, "spec record")
    serde.warn_unknown_fields(record, _SPEC_FIELDS, "spec record")
    spec = record["spec"]
    if not isinstance(spec, dict):
        raise serde.StateError(
            f"spec record: 'spec' must be a MetricSpec dict, got {type(spec).__name__}"
        )
    return spec


# ----------------------------------------------------------------------
# Framed record lines (CRC + newline = torn-write detection)
# ----------------------------------------------------------------------
def encode_line(record: Dict[str, Any]) -> bytes:
    """Frame one record dict into a CRC-prefixed log line."""
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Unframe one log line back into its record dict.

    Raises :class:`TornRecord` on any framing defect — missing trailing
    newline (the classic torn tail), malformed CRC prefix, checksum
    mismatch, or a body that is not a JSON object.  The store treats a
    torn record and everything after it as never written.
    """
    if not line.endswith(b"\n"):
        raise TornRecord("record has no trailing newline (torn tail)")
    payload = line[:-1]
    if len(payload) < 10 or payload[8:9] != b" ":
        raise TornRecord("record is too short to carry a CRC frame")
    try:
        expected = int(payload[:8], 16)
    except ValueError:
        raise TornRecord(f"malformed CRC prefix {payload[:8]!r}") from None
    body = payload[9:]
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise TornRecord(
            f"CRC mismatch (expected {expected:08x}, got {actual:08x}); "
            "the record was torn or corrupted"
        )
    try:
        record = json.loads(body)
    except json.JSONDecodeError as exc:
        raise TornRecord(f"record body is not valid JSON ({exc})") from None
    if not isinstance(record, dict):
        raise TornRecord(
            f"record body must be a JSON object, got {type(record).__name__}"
        )
    return record
