"""The serving CLI end to end: real processes, real sockets, real kills.

Mirrors the CI serving smoke job: ``python -m repro serve`` in a child
process, driven by ``python -m repro loadgen``, with the served final
snapshot diffed against an offline ``python -m repro monitor`` run — and
a SIGKILL mid-stream recovered through the checkpoint file.

Also pins the actionable-error contract: a missing or malformed spec
file makes ``monitor``/``serve`` exit with status 2 and a one-line
``error:`` message, never a traceback.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

SPECS = {
    "metrics": [
        {
            "name": "rtt",
            "quantiles": [0.5, 0.99],
            "window": {"size": 2000, "period": 500},
            "policy": "qlove",
            "policy_params": {"fewk": {"samplek_fraction": 0.01}},
        },
        {
            "name": "rtt.exact",
            "quantiles": [0.5, 0.9],
            "window": {"size": 1500, "period": 500},
            "policy": "exact",
        },
    ]
}

EVENTS = 8_000
BLOCK = 700
COMMON = ["--dataset", "netmon", "--seed", "0"]


def cli_env():
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(subcommand, args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", subcommand, *args],
        capture_output=True,
        text=True,
        env=cli_env(),
        check=False,
        **kwargs,
    )


def spawn_server(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=cli_env(),
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def final_snapshot(stdout: str) -> list:
    lines = stdout.splitlines()
    start = lines.index("final snapshot:")
    return lines[start : start + 1 + len(SPECS["metrics"]) * 2]


@pytest.fixture()
def specs_path(tmp_path):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(SPECS), encoding="utf-8")
    return str(path)


@pytest.fixture()
def offline_snapshot(specs_path):
    offline = run_cli(
        "monitor",
        [specs_path, *COMMON, "--events", str(EVENTS), "--chunk-size", str(BLOCK)],
    )
    assert offline.returncode == 0, offline.stderr
    return final_snapshot(offline.stdout)


def wait_and_terminate(server, timeout=30):
    try:
        output, _ = server.communicate(timeout=timeout)
        return output
    except subprocess.TimeoutExpired:
        server.kill()
        output, _ = server.communicate()
        raise AssertionError(f"server did not exit cleanly; output:\n{output}")


class TestServeLoadgenRoundTrip:
    def test_served_snapshot_matches_offline_monitor(
        self, specs_path, offline_snapshot
    ):
        port = free_port()
        server = spawn_server([specs_path, "--port", str(port)])
        try:
            driven = run_cli(
                "loadgen",
                [
                    "--port", str(port), *COMMON,
                    "--events", str(EVENTS), "--block-size", str(BLOCK),
                    "--connections", "3", "--wait-server", "30",
                    "--snapshot", "--shutdown",
                ],
                timeout=120,
            )
            assert driven.returncode == 0, driven.stderr
            assert final_snapshot(driven.stdout) == offline_snapshot
        finally:
            output = wait_and_terminate(server)
        assert server.returncode == 0, output
        assert f"served {EVENTS * 2:,} events" in output

    def test_sigkill_then_resume_matches_offline_monitor(
        self, specs_path, offline_snapshot, tmp_path
    ):
        checkpoint = str(tmp_path / "serve-ckpt.json")
        port = free_port()
        server = spawn_server(
            [specs_path, "--port", str(port), "--checkpoint", checkpoint]
        )
        try:
            # Stream the head, force a checkpoint, then SIGKILL the server.
            head = run_cli(
                "loadgen",
                [
                    "--port", str(port), *COMMON,
                    "--events", str(EVENTS), "--block-size", str(BLOCK),
                    "--connections", "3", "--wait-server", "30",
                    "--stop-after", "4900", "--checkpoint-request",
                ],
                timeout=120,
            )
            assert head.returncode == 0, head.stderr
            assert f"checkpoint saved to {checkpoint!r}" in head.stdout
        finally:
            server.send_signal(signal.SIGKILL)
            server.communicate()
        assert os.path.exists(checkpoint)

        # A brand-new process resumes from the file and finishes the stream.
        port = free_port()
        server = spawn_server(
            [
                specs_path, "--port", str(port),
                "--checkpoint", checkpoint, "--resume", checkpoint,
            ]
        )
        try:
            resumed = run_cli(
                "loadgen",
                [
                    "--port", str(port), *COMMON,
                    "--events", str(EVENTS), "--block-size", str(BLOCK),
                    "--connections", "3", "--wait-server", "30",
                    "--resume", "--snapshot", "--shutdown",
                ],
                timeout=120,
            )
            assert resumed.returncode == 0, resumed.stderr
            assert "resuming from element 4,900" in resumed.stdout
            assert final_snapshot(resumed.stdout) == offline_snapshot
        finally:
            output = wait_and_terminate(server)
        assert server.returncode == 0, output
        assert "resumed 2 metric(s)" in output

    def test_loadgen_checkpoint_request_without_server_checkpoint(
        self, specs_path
    ):
        """A server-side op error reaches the user as a one-line error:,
        not a traceback."""
        port = free_port()
        server = spawn_server([specs_path, "--port", str(port)])
        try:
            result = run_cli(
                "loadgen",
                ["--port", str(port), "--events", "1000", "--block-size", "500",
                 "--wait-server", "30", "--checkpoint-request"],
                timeout=60,
            )
            assert result.returncode == 2
            assert "Traceback" not in result.stderr
            assert result.stderr.startswith("error: ")
            assert "no checkpoint path" in result.stderr
        finally:
            server.kill()
            server.communicate()

    def test_serve_rejects_invalid_queue_configuration(self, specs_path):
        result = run_cli("serve", [specs_path, "--queue-blocks", "0"], timeout=60)
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert "queue capacity" in result.stderr

    def test_serve_rejects_interval_without_checkpoint(self, specs_path):
        result = run_cli(
            "serve", [specs_path, "--checkpoint-interval", "5"], timeout=60
        )
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert "requires --checkpoint" in result.stderr

    def test_loadgen_fails_fast_when_no_server(self):
        result = run_cli(
            "loadgen",
            ["--port", str(free_port()), "--wait-server", "0.5",
             "--events", "100"],
            timeout=60,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr


class TestSpecFileErrors:
    """Missing/malformed spec files: exit 2, one actionable line, no
    traceback — for both the offline and the serving front door."""

    @pytest.mark.parametrize("subcommand", ["monitor", "serve"])
    def test_missing_spec_file(self, subcommand, tmp_path):
        missing = str(tmp_path / "nope.json")
        result = run_cli(subcommand, [missing], timeout=60)
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        lines = [line for line in result.stderr.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "does not exist" in lines[0]

    @pytest.mark.parametrize("subcommand", ["monitor", "serve"])
    def test_malformed_spec_file(self, subcommand, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        result = run_cli(subcommand, [str(path)], timeout=60)
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        lines = [line for line in result.stderr.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "not valid JSON" in lines[0]

    @pytest.mark.parametrize("subcommand", ["monitor", "serve"])
    def test_invalid_spec_contents(self, subcommand, tmp_path):
        path = tmp_path / "badspec.json"
        path.write_text(
            json.dumps({"metrics": [{"name": "x", "quantiles": [2.0],
                                     "window": {"size": 10, "period": 5}}]}),
            encoding="utf-8",
        )
        result = run_cli(subcommand, [str(path)], timeout=60)
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert "outside (0, 1)" in result.stderr

    def test_serve_missing_resume_checkpoint(self, specs_path, tmp_path):
        result = run_cli(
            "serve",
            [specs_path, "--resume", str(tmp_path / "nope-ckpt.json")],
            timeout=60,
        )
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert result.stderr.startswith("error: ")

    def test_serve_mismatched_resume_checkpoint(self, specs_path, tmp_path):
        # Checkpoint written under a different metric roster.
        import sys as _sys

        _sys.path.insert(
            0,
            os.path.abspath(
                os.path.join(os.path.dirname(__file__), "..", "..", "src")
            ),
        )
        from repro.service import Monitor

        other = Monitor()
        other.register(
            {"name": "other", "quantiles": [0.5],
             "window": {"size": 100, "period": 50}, "policy": "exact"}
        )
        checkpoint = str(tmp_path / "other-ckpt.json")
        other.save(checkpoint)
        result = run_cli("serve", [specs_path, "--resume", checkpoint], timeout=60)
        assert result.returncode == 2
        assert "spec/state mismatch" in result.stderr
        assert "Traceback" not in result.stderr
