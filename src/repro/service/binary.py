"""Length-prefixed binary framing for the serving hot path.

The JSON wire (``repro.service.protocol``) renders every observe block
as decimal text — ~20 bytes and a float parse per value.  This module is
the negotiated alternative: fixed eight-byte headers, raw little-endian
IEEE-754 float64 observe payloads (``ndarray.tobytes`` on the way out,
``np.frombuffer`` on the way in, no per-value python objects), and
opaque serialized-sketch frames for checkpoint/merge shipping — the
datasketches ``serialize()/deserialize()`` idiom of moving sketch bytes
between nodes and merging on arrival.

Frame layout (all integers little-endian)::

    offset  size  field
    0       2     magic ``b"QW"``
    2       1     protocol version (currently 1)
    3       1     opcode
    4       4     payload length ``n`` (u32)
    8       n     payload

Opcodes:

``OP_JSON``
    Payload is one compact UTF-8 JSON object — any request or response
    that has no specialised encoding rides inside the binary framing
    unchanged, so the binary protocol speaks the full op vocabulary.
``OP_OBSERVE``
    An observe request: flags, metric name, optional sequence number and
    labels, then the raw float64 block.  Non-finite values survive the
    trip bit-for-bit (the server still rejects them at ingest, with the
    same error on both protocols).
``OP_ACK``
    The observe response: accepted flag plus the server's applied-events
    counter.
``OP_ERROR``
    Any failure response: a UTF-8 message.
``OP_STATE``
    An opaque serialized-monitor blob plus a short tag: tag ``b"merge"``
    as a request ships state to fold into the server's monitor; tag
    ``b"state"`` as a response answers a ``state`` pull.

A connection starts on the JSON protocol; the client sends
``{"op": "hello", "protocol": "binary"}`` (still as JSON), and on an
``ok`` response both sides switch to these frames.  Servers keep
speaking JSON to clients that never negotiate.

Unlike the newline framing, an oversized binary frame is recoverable:
the declared length lets the receiver drain the payload and stay
synchronised, so :func:`recv_frame` raises :class:`FrameTooLarge` with
``recoverable=True`` and the connection survives.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Optional, Tuple

import numpy as np

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
)

#: First two bytes of every binary frame.
MAGIC = b"QW"

#: Binary protocol version carried in every frame header.
BINARY_VERSION = 1

#: ``<`` pins little-endian with no padding: magic, version, opcode, length.
_HEADER = struct.Struct("<2sBBI")
HEADER_BYTES = _HEADER.size

OP_JSON = 0
OP_OBSERVE = 1
OP_ACK = 2
OP_ERROR = 3
OP_STATE = 4

_OPCODES = frozenset({OP_JSON, OP_OBSERVE, OP_ACK, OP_ERROR, OP_STATE})

_FLAG_SEQ = 0x01
_FLAG_LABELS = 0x02

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_ACK = struct.Struct("<BQ")

#: Little-endian float64, the one payload dtype on the wire.
WIRE_DTYPE = np.dtype("<f8")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(opcode: int, payload: bytes) -> bytes:
    """One binary frame: header plus payload."""
    if opcode not in _OPCODES:
        raise ProtocolError(f"unknown binary opcode {opcode}")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise FrameTooLarge(
            f"frame payload of {len(payload)} bytes exceeds "
            f"{MAX_MESSAGE_BYTES}; split observe batches into smaller blocks"
        )
    return _HEADER.pack(MAGIC, BINARY_VERSION, opcode, len(payload)) + payload


def _read_exact(stream: BinaryIO, n: int, what: str) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ConnectionClosed(f"connection closed mid-{what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def recv_frame(stream: BinaryIO) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ConnectionClosed` on EOF mid-frame,
    :class:`ProtocolError` on a bad magic/version/opcode, and
    :class:`FrameTooLarge` — with ``recoverable=True`` and the oversized
    payload already drained — on a frame above the cap.
    """
    first = stream.read(1)
    if not first:
        return None
    header = first + _read_exact(stream, HEADER_BYTES - 1, "frame header")
    magic, version, opcode, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); is the peer "
            "speaking the JSON protocol without negotiating?"
        )
    if version != BINARY_VERSION:
        raise ProtocolError(
            f"unsupported binary protocol version {version} "
            f"(this side speaks {BINARY_VERSION})"
        )
    if opcode not in _OPCODES:
        raise ProtocolError(f"unknown binary opcode {opcode}")
    if length > MAX_MESSAGE_BYTES:
        # The length prefix tells us exactly how much to skip, so the
        # stream stays synchronised — drain and let the connection live.
        remaining = length
        while remaining:
            chunk = stream.read(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionClosed("connection closed mid-oversized-frame")
            remaining -= len(chunk)
        exc = FrameTooLarge(
            f"frame payload of {length} bytes exceeds {MAX_MESSAGE_BYTES}; "
            "split observe batches into smaller blocks (the frame was "
            "drained; the connection remains usable)"
        )
        exc.recoverable = True
        raise exc
    payload = _read_exact(stream, length, "frame payload") if length else b""
    return opcode, payload


# ----------------------------------------------------------------------
# JSON-in-binary (the fallback carrier for non-specialised ops)
# ----------------------------------------------------------------------
def encode_json_frame(message: dict) -> bytes:
    """Wrap any request/response object in an :data:`OP_JSON` frame."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    try:
        payload = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise ProtocolError(
            f"message is not JSON-encodable ({exc}); only observe and "
            "state payloads carry raw IEEE-754 values on the binary wire"
        ) from None
    return encode_frame(OP_JSON, payload.encode("utf-8"))


def decode_json_payload(payload: bytes) -> dict:
    """The inverse of :func:`encode_json_frame`."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"OP_JSON payload is not valid JSON ({exc})") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"OP_JSON payload must be a JSON object, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# Observe / ack / error
# ----------------------------------------------------------------------
def _pack_str(text: str, what: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"{what} of {len(raw)} bytes exceeds the u16 field")
    return _U16.pack(len(raw)) + raw


def encode_observe(
    metric: str,
    values: "np.ndarray",
    seq: Optional[int] = None,
    labels: Optional[dict] = None,
) -> bytes:
    """An observe request as one :data:`OP_OBSERVE` frame.

    ``values`` is any array-like; it is shipped as raw little-endian
    float64 via ``tobytes`` — no per-value text, no per-value python
    objects, non-finite values preserved bit-for-bit.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ProtocolError("observe values must be one-dimensional")
    flags = 0
    parts = [b"", _pack_str(metric, "metric name")]
    if seq is not None:
        flags |= _FLAG_SEQ
        parts.append(_U64.pack(seq))
    if labels:
        flags |= _FLAG_LABELS
        if len(labels) > 0xFFFF:
            raise ProtocolError("too many labels for the u16 pair-count field")
        pairs = [_U16.pack(len(labels))]
        for key, value in labels.items():
            pairs.append(_pack_str(str(key), "label key"))
            pairs.append(_pack_str(str(value), "label value"))
        parts.append(b"".join(pairs))
    parts[0] = _U8.pack(flags)
    parts.append(_U32.pack(array.size))
    parts.append(array.astype(WIRE_DTYPE, copy=False).tobytes())
    return encode_frame(OP_OBSERVE, b"".join(parts))


def _unpack_str(payload: bytes, offset: int, what: str) -> Tuple[str, int]:
    if offset + 2 > len(payload):
        raise ProtocolError(f"truncated observe payload ({what} length)")
    (length,) = _U16.unpack_from(payload, offset)
    offset += 2
    if offset + length > len(payload):
        raise ProtocolError(f"truncated observe payload ({what})")
    try:
        text = payload[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"observe {what} is not valid UTF-8 ({exc})") from None
    return text, offset + length


def decode_observe(payload: bytes) -> dict:
    """An :data:`OP_OBSERVE` payload as the dispatcher's request shape.

    ``values`` comes back as a float64 ndarray viewing the payload bytes
    — the server's ingest path consumes it without ever materialising a
    python list.
    """
    if len(payload) < 1:
        raise ProtocolError("truncated observe payload (flags)")
    (flags,) = _U8.unpack_from(payload, 0)
    metric, offset = _unpack_str(payload, 1, "metric name")
    request: dict = {"op": "observe", "metric": metric}
    if flags & _FLAG_SEQ:
        if offset + 8 > len(payload):
            raise ProtocolError("truncated observe payload (seq)")
        (request["seq"],) = _U64.unpack_from(payload, offset)
        offset += 8
    if flags & _FLAG_LABELS:
        if offset + 2 > len(payload):
            raise ProtocolError("truncated observe payload (label count)")
        (n_pairs,) = _U16.unpack_from(payload, offset)
        offset += 2
        labels = {}
        for _ in range(n_pairs):
            key, offset = _unpack_str(payload, offset, "label key")
            value, offset = _unpack_str(payload, offset, "label value")
            labels[key] = value
        request["labels"] = labels
    if offset + 4 > len(payload):
        raise ProtocolError("truncated observe payload (value count)")
    (count,) = _U32.unpack_from(payload, offset)
    offset += 4
    if offset + 8 * count != len(payload):
        raise ProtocolError(
            f"observe payload declares {count} values but carries "
            f"{len(payload) - offset} bytes"
        )
    request["values"] = np.frombuffer(payload, dtype=WIRE_DTYPE, count=count, offset=offset)
    return request


def encode_ack(accepted: bool, events: int) -> bytes:
    """The observe response as one :data:`OP_ACK` frame."""
    return encode_frame(OP_ACK, _ACK.pack(1 if accepted else 0, events))


def decode_ack(payload: bytes) -> dict:
    if len(payload) != _ACK.size:
        raise ProtocolError(f"OP_ACK payload must be {_ACK.size} bytes")
    accepted, events = _ACK.unpack(payload)
    return {"ok": True, "accepted": bool(accepted), "events": events}


def encode_error(message: str) -> bytes:
    """A failure response as one :data:`OP_ERROR` frame."""
    return encode_frame(OP_ERROR, message.encode("utf-8"))


def decode_error(payload: bytes) -> dict:
    return {"ok": False, "error": payload.decode("utf-8", errors="replace")}


# ----------------------------------------------------------------------
# Serialized-state shipping
# ----------------------------------------------------------------------
def encode_state(tag: str, state: dict) -> bytes:
    """A serialized-monitor blob as one :data:`OP_STATE` frame.

    The blob is opaque to the framing layer: compact JSON of the
    versioned ``to_state()`` tree today, whatever the state format says
    tomorrow — peers round-trip the bytes, only monitors interpret them.
    """
    blob = json.dumps(state, separators=(",", ":")).encode("utf-8")
    return encode_frame(OP_STATE, _pack_str(tag, "state tag") + blob)


def decode_state(payload: bytes) -> Tuple[str, dict]:
    """The inverse of :func:`encode_state`: ``(tag, state)``."""
    tag, offset = _unpack_str(payload, 0, "state tag")
    try:
        state = json.loads(payload[offset:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"OP_STATE blob is not valid JSON ({exc})") from None
    if not isinstance(state, dict):
        raise ProtocolError(
            f"OP_STATE blob must be a JSON object, got {type(state).__name__}"
        )
    return tag, state


# ----------------------------------------------------------------------
# Message <-> frame dispatch (shared by client and server loops)
# ----------------------------------------------------------------------
def encode_request(message: dict) -> bytes:
    """A request dict as its preferred binary frame."""
    op = message.get("op")
    if op == "observe":
        return encode_observe(
            str(message.get("metric", "")),
            message.get("values", ()),
            seq=message.get("seq"),
            labels=message.get("labels"),
        )
    if op == "merge" and isinstance(message.get("state"), dict):
        return encode_state("merge", message["state"])
    return encode_json_frame(message)


def decode_request(opcode: int, payload: bytes) -> dict:
    """An incoming frame as the request shape the server dispatches on."""
    if opcode == OP_OBSERVE:
        return decode_observe(payload)
    if opcode == OP_STATE:
        tag, state = decode_state(payload)
        return {"op": tag, "state": state}
    if opcode == OP_JSON:
        return decode_json_payload(payload)
    raise ProtocolError(f"opcode {opcode} is not a request frame")


def encode_response(message: dict, request_op: Optional[str] = None) -> bytes:
    """A response dict as its preferred binary frame."""
    if not message.get("ok", False):
        return encode_error(str(message.get("error", "unknown error")))
    if request_op == "observe" and "accepted" in message:
        return encode_ack(bool(message["accepted"]), int(message.get("events", 0)))
    if request_op == "state" and isinstance(message.get("state"), dict):
        return encode_state("state", message["state"])
    return encode_json_frame(message)


def decode_response(opcode: int, payload: bytes) -> dict:
    """An incoming frame as the response dict the client returns."""
    if opcode == OP_ACK:
        return decode_ack(payload)
    if opcode == OP_ERROR:
        return decode_error(payload)
    if opcode == OP_STATE:
        tag, state = decode_state(payload)
        return {"ok": True, "tag": tag, "state": state}
    if opcode == OP_JSON:
        return decode_json_payload(payload)
    raise ProtocolError(f"opcode {opcode} is not a response frame")
