"""Dataset generators: calibration against the paper's published statistics."""

import numpy as np
import pytest

from repro.workloads import (
    available_datasets,
    generate_ar1,
    generate_netmon,
    generate_normal,
    generate_pareto,
    generate_search,
    generate_uniform,
    get_dataset,
    reduce_precision,
)


class TestNetMon:
    def test_paper_quantile_anchors(self):
        values = generate_netmon(500_000, seed=0)
        q50, q90, q99 = np.quantile(values, [0.5, 0.9, 0.99])
        # Paper: Q0.5 = 798, >90% below 1,247, Q0.99 = 1,874.
        assert 700 < q50 < 900
        assert 1050 < q90 < 1450
        assert 1500 < q99 < 2600

    def test_long_tail(self):
        values = generate_netmon(500_000, seed=0)
        # Paper: max 74,265 in a 100K window; heavy but capped tail.
        assert values.max() > 20_000
        assert values.max() <= 100_000

    def test_integer_microseconds(self):
        values = generate_netmon(10_000, seed=1)
        np.testing.assert_array_equal(values, np.round(values))
        assert values.min() >= 50

    def test_high_redundancy(self):
        # Paper: only ~0.08% of elements in a window are unique (after
        # 3-digit compression); raw integers are already highly redundant.
        values = generate_netmon(1_000_000, seed=2)
        unique_fraction = len(np.unique(values)) / len(values)
        assert unique_fraction < 0.05

    def test_reproducible(self):
        np.testing.assert_array_equal(
            generate_netmon(1000, seed=7), generate_netmon(1000, seed=7)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_netmon(0)
        with pytest.raises(ValueError):
            generate_netmon(10, tail_weight=1.5)


class TestSearch:
    def test_sla_truncation_density(self):
        values = generate_search(200_000, seed=0)
        assert values.max() == 200_000
        capped_fraction = float(np.mean(values == 200_000))
        # A few percent of queries terminated by the SLA (footnote 1).
        assert 0.005 < capped_fraction < 0.10
        # High quantiles sit exactly at the SLA -> easy for any policy.
        assert np.quantile(values, 0.999) == 200_000

    def test_median_reasonable(self):
        values = generate_search(200_000, seed=0)
        assert 30_000 < np.median(values) < 50_000

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_search(0)
        with pytest.raises(ValueError):
            generate_search(10, sla_us=-1)


class TestSynthetic:
    def test_normal_moments(self):
        values = generate_normal(200_000, seed=0)
        assert abs(values.mean() - 1e6) < 1e3
        assert abs(values.std() - 5e4) < 1e3

    def test_uniform_range_and_uniqueness(self):
        values = generate_uniform(100_000, seed=0)
        assert values.min() >= 90
        assert values.max() <= 110
        # Continuous floats: virtually all unique (Exact's stress case).
        assert len(np.unique(values)) > 0.999 * len(values)

    def test_pareto_paper_anchors(self):
        values = generate_pareto(2_000_000, seed=0)
        q50 = np.quantile(values, 0.5)
        q999 = np.quantile(values, 0.999)
        assert 18 <= q50 <= 22  # paper: Q0.5 = 20
        assert 8_000 <= q999 <= 12_000  # paper: Q0.999 = 10,000
        assert values.max() <= 1.1e9

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_normal(0)
        with pytest.raises(ValueError):
            generate_normal(10, std=-1)
        with pytest.raises(ValueError):
            generate_uniform(10, low=5, high=5)
        with pytest.raises(ValueError):
            generate_pareto(-1)


class TestAR1:
    def test_marginal_preserved_across_psi(self):
        for psi in (0.0, 0.2, 0.8):
            values = generate_ar1(200_000, psi=psi, seed=0)
            assert abs(values.mean() - 1e6) < 2e3, psi
            assert abs(values.std() - 5e4) < 2e3, psi

    def test_autocorrelation_matches_psi(self):
        for psi in (0.2, 0.8):
            values = generate_ar1(100_000, psi=psi, seed=1)
            centered = values - values.mean()
            corr = float(
                np.corrcoef(centered[:-1], centered[1:])[0, 1]
            )
            assert abs(corr - psi) < 0.02

    def test_psi_zero_is_iid_like(self):
        values = generate_ar1(100_000, psi=0.0, seed=2)
        centered = values - values.mean()
        corr = float(np.corrcoef(centered[:-1], centered[1:])[0, 1])
        assert abs(corr) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ar1(10, psi=1.0)
        with pytest.raises(ValueError):
            generate_ar1(0, psi=0.5)


class TestPrecision:
    def test_drops_two_digits(self):
        values = np.array([1247.0, 798.0, 74265.0])
        np.testing.assert_array_equal(
            reduce_precision(values), np.array([1200.0, 700.0, 74200.0])
        )

    def test_zero_drop_is_copy(self):
        values = np.array([123.0])
        out = reduce_precision(values, drop_digits=0)
        np.testing.assert_array_equal(out, values)
        assert out is not values

    def test_increases_redundancy(self):
        values = generate_netmon(200_000, seed=3)
        coarse = reduce_precision(values)
        assert len(np.unique(coarse)) < len(np.unique(values)) / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            reduce_precision(np.array([1.0]), drop_digits=-1)


class TestRegistry:
    def test_available(self):
        assert set(available_datasets()) == {
            "ar1",
            "netmon",
            "normal",
            "pareto",
            "search",
            "uniform",
        }

    def test_get_dataset(self):
        values = get_dataset("netmon", 1000, seed=0)
        assert len(values) == 1000
        ar1 = get_dataset("ar1", 1000, seed=0, psi=0.5)
        assert len(ar1) == 1000

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            get_dataset("zipf", 100)
