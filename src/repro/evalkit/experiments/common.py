"""Shared infrastructure for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.evalkit.reporting import Table
from repro.streaming.windows import CountWindow

#: The paper's standard quantile set (the Qmonitor query).
QMONITOR_PHIS = (0.5, 0.9, 0.99, 0.999)

#: Paper-size anchors; experiments scale these down via the `scale` knob.
PAPER_WINDOW = 131_072  # "128K"
PAPER_PERIOD = 16_384  # "16K"


@dataclass
class ExperimentResult:
    """Everything an experiment produces.

    ``tables`` render like the paper's tables; ``data`` holds the raw
    numbers keyed by series name for programmatic checks (benchmarks and
    EXPERIMENTS.md assertions); ``notes`` records scaling substitutions.
    """

    name: str
    tables: List[Table] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Full plain-text report."""
        parts = [f"=== {self.name} ==="]
        if self.notes:
            parts.append(self.notes)
        parts.extend(table.render() for table in self.tables)
        return "\n\n".join(parts)


def scaled(size: int, scale: float, minimum: int = 64) -> int:
    """Scale a paper size, keeping it positive and round."""
    return max(minimum, int(round(size * scale)))


def scaled_window(window: int, period: int, scale: float) -> CountWindow:
    """Scale a window/period pair, preserving integer sub-window alignment."""
    p = scaled(period, scale)
    n_sub = max(1, round(window / period))
    return CountWindow(size=p * n_sub, period=p)


def stream_length(window: CountWindow, evaluations: int) -> int:
    """Elements needed for ``evaluations`` full-window query evaluations."""
    if evaluations < 1:
        raise ValueError("evaluations must be at least 1")
    return window.size + (evaluations - 1) * window.period


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as the paper's percent cells."""
    if value != value:
        return "NA"
    return f"{100.0 * value:.{digits}f}"


def describe_scale(scale: float) -> str:
    """Human note about the size substitution in play."""
    if scale == 1.0:
        return "Paper-size windows."
    return (
        f"Scaled reproduction: window/period sizes multiplied by {scale:g} "
        "(pure-Python substrate; shapes and ratios are the comparison target)."
    )
