"""QLOVE — approximate Quantiles with LOw Value Error (the paper's core).

The two-level hierarchical design of Section 3:

- **Level 1** (:mod:`~repro.core.summary`) runs a tumbling window per
  period, keeping in-flight data as a compressed frequency distribution
  (optionally quantized to three significant digits,
  :mod:`~repro.core.compression`) and sealing it into a tiny summary: the
  exact sub-window quantiles plus the few-k tail values.
- **Level 2** (:mod:`~repro.core.level2`) slides over summaries only,
  averaging each quantile across live sub-windows (CLT-guided).
- **Few-k merging** (:mod:`~repro.core.fewk`) repairs high quantiles under
  statistical inefficiency (top-k) and bursty traffic (sample-k with
  Mann–Whitney burst detection, :mod:`~repro.core.burst`).
- :mod:`~repro.core.error_bound` implements Theorem 1's probabilistic
  error bound.

:class:`~repro.core.qlove.QLOVEPolicy` assembles all of it behind the
shared :class:`~repro.sketches.base.QuantilePolicy` interface.
"""

from repro.core.burst import BurstDetector
from repro.core.compression import Quantizer, quantize_array, quantize_significant
from repro.core.config import FewKConfig, QLOVEConfig
from repro.core.distributed import (
    FleetCoordinator,
    fleet_space_variables,
    merge_level2,
    merge_node_estimates,
)
from repro.core.error_bound import clt_error_bound, density_at_quantile, error_bound_from_data
from repro.core.fewk import FewKMerger
from repro.core.level2 import Level2Aggregator
from repro.core.qlove import QLOVEPolicy
from repro.core.summary import SubWindowBuilder, SubWindowSummary

__all__ = [
    "BurstDetector",
    "FewKConfig",
    "FewKMerger",
    "FleetCoordinator",
    "Level2Aggregator",
    "QLOVEConfig",
    "QLOVEPolicy",
    "Quantizer",
    "SubWindowBuilder",
    "SubWindowSummary",
    "clt_error_bound",
    "density_at_quantile",
    "error_bound_from_data",
    "fleet_space_variables",
    "merge_level2",
    "merge_node_estimates",
    "quantize_array",
    "quantize_significant",
]
