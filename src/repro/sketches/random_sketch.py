"""Random — the sampling-based sliding-window baseline (Luo et al. [21]).

One randomized :class:`~repro.sketches.kll.KLLSketch` is built per
sub-window; expired sub-windows drop their sketch wholesale and a window
query merges the weighted items of the live sketches.  Rank error is
bounded by ``eps * N`` with constant probability, matching the paper's
description of Random as "a state of the art using sampling to bound rank
error with constant probabilities".
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro import serde
from repro.sketches.base import QuantilePolicy
from repro.sketches.gk import interpolated_rank_value
from repro.sketches.kll import KLLSketch
from repro.streaming.windows import CountWindow


def _k_for_epsilon(epsilon: float) -> int:
    """Compactor capacity delivering ~epsilon expected rank error.

    KLL's expected rank error is ~ c / k with c around 1; doubling gives
    headroom so empirical error stays below epsilon with good probability.
    """
    return max(8, int(math.ceil(2.0 / epsilon)))


class RandomPolicy(QuantilePolicy):
    """Per-sub-window KLL sketches combined at query time."""

    name = "random"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        epsilon: float = 0.02,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(phis, window)
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._k = _k_for_epsilon(epsilon)
        self._rng = random.Random(seed)
        self._in_flight = KLLSketch(self._k, rng=self._rng)
        self._sealed: Deque[KLLSketch] = deque()
        self._sealed_space = 0

    def accumulate(self, value: float) -> None:
        self._in_flight.insert(value)

    def accumulate_batch(self, values) -> None:
        # Bit-identical to per-element insertion (same compaction points,
        # same RNG consumption); see KLLSketch.insert_batch.
        self._in_flight.insert_batch(values)

    def seal_subwindow(self) -> None:
        self.record_space()
        self._sealed.append(self._in_flight)
        self._sealed_space += self._in_flight.space_variables()
        self._in_flight = KLLSketch(self._k, rng=self._rng)

    def expire_subwindow(self) -> None:
        if not self._sealed:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        self._sealed_space -= self._sealed.popleft().space_variables()

    def merge(self, other: "RandomPolicy") -> None:
        """Fold another Random policy's state into this one.

        Sealed KLL sketches pool (queries combine every live sketch's
        weighted items); the in-flight sketches merge through KLL's native
        same-level concatenation, preserving the rank-error guarantee.
        """
        self._require_compatible(other)
        if other.epsilon != self.epsilon:
            raise ValueError("merge requires the same epsilon")
        for sketch in other._sealed:
            self._sealed.append(sketch)
        self._sealed_space += other._sealed_space
        if other._in_flight.n:
            self._in_flight.merge(other._in_flight)

    def composable_over_time(self) -> bool:
        """Never bit-composable: all sketches share one RNG stream.

        A fresh per-period delta restarts ``random.Random(seed)`` at the
        seed, while a sequential run's RNG has advanced through every
        earlier period's compaction coin flips — the sketches diverge
        bitwise (though both stay inside the rank-error guarantee).
        """
        return False

    def reset(self) -> None:
        self._in_flight = KLLSketch(self._k, rng=self._rng)
        self._sealed.clear()
        self._sealed_space = 0
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Sketches plus the policy-level RNG position.

        All of this policy's KLL sketches share one :class:`random.Random`
        (constructor wiring), so the RNG is persisted once here and the
        per-sketch states omit it; a restored policy's future compactions
        consume the RNG exactly where the original would have — the
        bit-identical-resume property.
        """
        state = self._state_header()
        state["epsilon"] = float(self.epsilon)
        state["rng"] = serde.rng_to_state(self._rng)
        state["in_flight"] = self._in_flight.to_state(include_rng=False)
        state["sealed"] = [
            sketch.to_state(include_rng=False) for sketch in self._sealed
        ]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "RandomPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state, ("epsilon", "rng", "in_flight", "sealed"), "random policy"
        )
        policy = cls(phis, window, epsilon=float(state["epsilon"]))
        policy._rng = serde.rng_from_state(state["rng"], "random policy")
        policy._in_flight = KLLSketch.from_state(state["in_flight"], rng=policy._rng)
        policy._sealed = deque(
            KLLSketch.from_state(entry, rng=policy._rng)
            for entry in state["sealed"]
        )
        policy._sealed_space = sum(
            sketch.space_variables() for sketch in policy._sealed
        )
        policy._restore_header(state)
        return policy

    def query(self) -> Dict[float, float]:
        if not self._sealed:
            raise ValueError("query() before any sealed sub-window")
        items: List[Tuple[float, int]] = []
        for sketch in self._sealed:
            items.extend(sketch.weighted_items())
        items.sort(key=lambda pair: pair[0])
        weight_total = sum(weight for _, weight in items)
        results: Dict[float, float] = {}
        for phi in self.phis:
            rank = max(1, math.ceil(round(phi * weight_total, 9)))
            results[phi] = interpolated_rank_value(items, rank)
        return results

    def space_variables(self) -> int:
        return self._sealed_space + self._in_flight.space_variables()

    @classmethod
    def analytical_space(
        cls, window: CountWindow, epsilon: float = 0.02, **params: float
    ) -> Optional[int]:
        """Sum over sub-windows of the KLL capacity schedule (~3k per sketch)."""
        k = _k_for_epsilon(epsilon)
        per_sketch = int(math.ceil(3 * k))
        return per_sketch * window.subwindow_count
