"""A Trill-like incremental streaming engine (Section 2 of the paper).

The paper implements QLOVE inside the Trill streaming analytics engine; the
only properties it relies on are (i) the incremental-evaluation operator
contract ``InitialState / Accumulate / Deaccumulate / ComputeResult`` and
(ii) count- or time-based tumbling and sliding windows evaluated once per
period.  This subpackage provides exactly that contract:

- :mod:`~repro.streaming.event` — timestamped stream elements.
- :mod:`~repro.streaming.windows` — tumbling/sliding window specifications.
- :mod:`~repro.streaming.operator` — the operator ABCs (per-element and
  sub-window-granular).
- :mod:`~repro.streaming.aggregates` — reference operators (count, sum,
  mean, min/max, variance) including the paper's running-average example.
- :mod:`~repro.streaming.query` — LINQ-like query builder
  (``window().where().select().aggregate()``).
- :mod:`~repro.streaming.engine` — the execution loops and the unified
  ``StreamEngine.execute`` entry point.
- :mod:`~repro.streaming.plan` — :class:`ExecutionPlan`, the declarative
  choice of execution path (auto / events / batched / sharded).
- :mod:`~repro.streaming.checkpoint` — :class:`EngineCheckpoint`,
  period-boundary freeze/resume of a run (bit-identical restarts).
- :mod:`~repro.streaming.sources` — adapters turning arrays/iterables into
  event streams.
- :mod:`~repro.streaming.partition` — deterministic chunk-stream
  partitioners (round-robin, value hash).
- :mod:`~repro.streaming.sharded` — the sharded execution subsystem:
  partition across N per-shard policies, merge at period boundaries.
"""

from repro.streaming.aggregates import (
    CountOperator,
    MaxOperator,
    MeanOperator,
    MinOperator,
    SumOperator,
    VarianceOperator,
)
from repro.streaming.checkpoint import EngineCheckpoint
from repro.streaming.engine import (
    StreamEngine,
    WindowResult,
    run_query,
    run_query_batched,
    run_query_chunked,
)
from repro.streaming.event import Event
from repro.streaming.operator import IncrementalOperator, SubWindowOperator
from repro.streaming.partition import StreamPartitioner, available_partitioners
from repro.streaming.plan import ExecutionPlan
from repro.streaming.query import Query
from repro.streaming.sharded import ShardedEngine, run_sharded
from repro.streaming.sources import (
    Chunk,
    as_chunk,
    chunk_stream,
    events_from_values,
    events_of_chunks,
    merge_sources,
    value_stream,
)
from repro.streaming.windows import CountWindow, TimeWindow

__all__ = [
    "Chunk",
    "CountOperator",
    "CountWindow",
    "EngineCheckpoint",
    "Event",
    "ExecutionPlan",
    "IncrementalOperator",
    "MaxOperator",
    "MeanOperator",
    "MinOperator",
    "Query",
    "ShardedEngine",
    "StreamEngine",
    "StreamPartitioner",
    "SubWindowOperator",
    "SumOperator",
    "TimeWindow",
    "VarianceOperator",
    "WindowResult",
    "as_chunk",
    "available_partitioners",
    "chunk_stream",
    "events_from_values",
    "events_of_chunks",
    "merge_sources",
    "run_query",
    "run_query_batched",
    "run_query_chunked",
    "run_sharded",
    "value_stream",
]
