"""Table 1: accuracy and space of the five approximation algorithms.

NetMon, 16K window period, 128K window size; QLOVE's few-k merging
disabled (Section 5.2 compares the base algorithm); epsilon = 0.02 for
CMQS / AM / Random and K = 12 for Moment, as in the paper.
"""

from __future__ import annotations

from typing import Dict

from repro.evalkit.experiments.common import (
    PAPER_PERIOD,
    PAPER_WINDOW,
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    percent,
    scaled_window,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import AccuracyReport, run_accuracy
from repro.workloads import generate_netmon

EPSILON = 0.02
MOMENT_K = 12

POLICY_PARAMS: Dict[str, Dict[str, object]] = {
    "qlove": {},
    "cmqs": {"epsilon": EPSILON},
    "am": {"epsilon": EPSILON},
    "random": {"epsilon": EPSILON, "seed": 0},
    "moment": {"k": MOMENT_K},
}


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 20) -> ExperimentResult:
    """Regenerate Table 1."""
    window = scaled_window(PAPER_WINDOW, PAPER_PERIOD, scale)
    values = generate_netmon(stream_length(window, evaluations), seed=seed)

    reports: Dict[str, AccuracyReport] = {}
    for name, params in POLICY_PARAMS.items():
        reports[name] = run_accuracy(name, values, window, QMONITOR_PHIS, **params)

    table = Table(
        f"Table 1: accuracy and space (NetMon, window={window.size}, "
        f"period={window.period}, eps={EPSILON}, K={MOMENT_K})",
        [
            "Policy",
            "e'Q0.5",
            "e'Q0.9",
            "e'Q0.99",
            "e'Q0.999",
            "VE%Q0.5",
            "VE%Q0.9",
            "VE%Q0.99",
            "VE%Q0.999",
            "Analytical",
            "Observed",
        ],
    )
    data: Dict[str, object] = {}
    for name, report in reports.items():
        table.add_row(
            name.upper(),
            *(f"{report.rank_error(phi):.4f}" for phi in QMONITOR_PHIS),
            *(percent(report.errors.mean_value_error(phi)) for phi in QMONITOR_PHIS),
            str(report.analytical_space) if report.analytical_space else "NA",
            str(report.observed_space),
        )
        data[name] = {
            "rank_error": {phi: report.rank_error(phi) for phi in QMONITOR_PHIS},
            "value_error": {
                phi: report.errors.mean_value_error(phi) for phi in QMONITOR_PHIS
            },
            "observed_space": report.observed_space,
            "analytical_space": report.analytical_space,
        }

    return ExperimentResult(
        name="table1",
        tables=[table],
        data=data,
        notes=describe_scale(scale),
    )
