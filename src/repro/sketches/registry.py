"""Policy factory: instantiate any compared algorithm by name.

Experiments and benchmarks refer to policies by the names used in the
paper's tables: ``qlove``, ``exact``, ``cmqs``, ``am``, ``random``,
``moment``.  QLOVE lives in :mod:`repro.core` and is imported lazily to
keep the dependency direction core -> sketches.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.sketches.am import AMPolicy
from repro.sketches.base import QuantilePolicy
from repro.sketches.cmqs import CMQSPolicy
from repro.sketches.exact import ExactPolicy
from repro.sketches.moments import MomentPolicy
from repro.sketches.random_sketch import RandomPolicy
from repro.streaming.windows import CountWindow

PolicyFactory = Callable[..., QuantilePolicy]


def _qlove_factory(
    phis: Sequence[float], window: CountWindow, **params: object
) -> QuantilePolicy:
    from repro.core.qlove import QLOVEPolicy

    return QLOVEPolicy(phis, window, **params)  # type: ignore[arg-type]


_REGISTRY: Dict[str, PolicyFactory] = {
    "exact": ExactPolicy,
    "cmqs": CMQSPolicy,
    "am": AMPolicy,
    "random": RandomPolicy,
    "moment": MomentPolicy,
    "qlove": _qlove_factory,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_REGISTRY)


def make_policy(
    name: str,
    phis: Sequence[float],
    window: CountWindow,
    **params: object,
) -> QuantilePolicy:
    """Instantiate a policy by its paper name with algorithm parameters.

    ``params`` are forwarded to the policy constructor (e.g.
    ``epsilon=0.02`` for CMQS/AM/Random, ``k=12`` for Moment, few-k
    settings for QLOVE).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(phis, window, **params)
