"""Reference incremental operators.

These exercise the :class:`~repro.streaming.operator.IncrementalOperator`
contract and give downstream users the usual aggregation vocabulary.  The
``MeanOperator`` is the paper's worked example (Section 2)::

    InitialState: () => S = {Count: 0, Sum: 0}
    Accumulate:   (S, E) => {S.Count + 1, S.Sum + E.Value}
    Deaccumulate: (S, E) => {S.Count - 1, S.Sum - E.Value}
    ComputeResult: S => S.Sum / S.Count

Min/Max cannot be deaccumulated from constant state (removing the current
minimum requires knowing the runner-up), so they keep a frequency map — the
same trick the Exact quantile baseline uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.datastructures import FrequencyMap, make_frequency_map
from repro.streaming.event import Event
from repro.streaming.operator import IncrementalOperator


@dataclass(slots=True)
class _CountState:
    count: int = 0


class CountOperator(IncrementalOperator[_CountState, int]):
    """Number of events in the window."""

    def initial_state(self) -> _CountState:
        return _CountState()

    def accumulate(self, state: _CountState, event: Event) -> _CountState:
        state.count += 1
        return state

    def deaccumulate(self, state: _CountState, event: Event) -> _CountState:
        state.count -= 1
        return state

    def compute_result(self, state: _CountState) -> int:
        return state.count


@dataclass(slots=True)
class _SumState:
    total: float = 0.0


class SumOperator(IncrementalOperator[_SumState, float]):
    """Sum of event values in the window."""

    def initial_state(self) -> _SumState:
        return _SumState()

    def accumulate(self, state: _SumState, event: Event) -> _SumState:
        state.total += event.value
        return state

    def deaccumulate(self, state: _SumState, event: Event) -> _SumState:
        state.total -= event.value
        return state

    def compute_result(self, state: _SumState) -> float:
        return state.total


@dataclass(slots=True)
class _MeanState:
    count: int = 0
    total: float = 0.0


class MeanOperator(IncrementalOperator[_MeanState, float]):
    """Arithmetic mean — the incremental-evaluation example of Section 2."""

    def initial_state(self) -> _MeanState:
        return _MeanState()

    def accumulate(self, state: _MeanState, event: Event) -> _MeanState:
        state.count += 1
        state.total += event.value
        return state

    def deaccumulate(self, state: _MeanState, event: Event) -> _MeanState:
        state.count -= 1
        state.total -= event.value
        return state

    def compute_result(self, state: _MeanState) -> float:
        if state.count == 0:
            return math.nan
        return state.total / state.count


@dataclass(slots=True)
class _VarianceState:
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0


class VarianceOperator(IncrementalOperator[_VarianceState, float]):
    """Population variance via deaccumulatable power sums."""

    def initial_state(self) -> _VarianceState:
        return _VarianceState()

    def accumulate(self, state: _VarianceState, event: Event) -> _VarianceState:
        state.count += 1
        state.total += event.value
        state.total_sq += event.value * event.value
        return state

    def deaccumulate(self, state: _VarianceState, event: Event) -> _VarianceState:
        state.count -= 1
        state.total -= event.value
        state.total_sq -= event.value * event.value
        return state

    def compute_result(self, state: _VarianceState) -> float:
        if state.count == 0:
            return math.nan
        mean = state.total / state.count
        # Guard tiny negative values from floating-point cancellation.
        return max(0.0, state.total_sq / state.count - mean * mean)


@dataclass(slots=True)
class _ExtremumState:
    values: FrequencyMap = field(default_factory=lambda: make_frequency_map("dict"))


class MinOperator(IncrementalOperator[_ExtremumState, float]):
    """Minimum over the window, deaccumulatable via a frequency map."""

    def initial_state(self) -> _ExtremumState:
        return _ExtremumState()

    def accumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.add(event.value)
        return state

    def deaccumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.discard(event.value)
        return state

    def compute_result(self, state: _ExtremumState) -> float:
        if state.values.total == 0:
            return math.nan
        return next(iter(state.values.items_sorted()))[0]


class MaxOperator(IncrementalOperator[_ExtremumState, float]):
    """Maximum over the window, deaccumulatable via a frequency map."""

    def initial_state(self) -> _ExtremumState:
        return _ExtremumState()

    def accumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.add(event.value)
        return state

    def deaccumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.discard(event.value)
        return state

    def compute_result(self, state: _ExtremumState) -> float:
        if state.values.total == 0:
            return math.nan
        return next(iter(state.values.items_descending()))[0]
