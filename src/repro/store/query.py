"""Time-range queries over a :class:`~repro.store.store.SegmentStore`.

The read side of the historical layer: given a period range ``[t0, t1)``,
load the covering segments, rebuild their delta policies from state, fold
them together in time order through the universal merge contract, and ask
the merged policy for quantiles.  For time-composable policies (see
:meth:`~repro.sketches.base.QuantilePolicy.composable_over_time`) the
answer is bit-identical to a sequential run over exactly those periods'
events — before and after compaction, since a rollup's state is itself
the in-order merge of its children.

Merging never expires: the merged "query master" holds one sealed
sub-window per covered period regardless of the metric's live window
``subwindow_count`` — expiry is externally driven in this codebase, so a
query over 500 periods of a 8-sub-window metric is well-defined (it is
the quantile over all 500 periods' events).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.sketches.base import QuantilePolicy
from repro.sketches.registry import policy_from_state
from repro.store.segment import Segment
from repro.store.store import SegmentStore, StoreError


def rebuild_policy(segment: Segment) -> QuantilePolicy:
    """A segment's delta policy, rebuilt from its stored state."""
    return policy_from_state(segment.state)


def merge_segments(segments: Sequence[Segment], *, kind: str = "rollup") -> Segment:
    """Fold adjacent segments (time order) into one combined segment.

    Used by compaction to build rollups and by tests; the combined state
    is the in-order merge of the children's delta policies, so for
    time-composable policies the rollup answers queries bit-identically
    to its children.
    """
    if not segments:
        raise StoreError("merge_segments() needs at least one segment")
    for earlier, later in zip(segments, segments[1:]):
        if later.metric != earlier.metric:
            raise StoreError(
                f"cannot merge segments of different metrics "
                f"({earlier.metric!r}, {later.metric!r})"
            )
        if later.start_period != earlier.end_period:
            raise StoreError(
                f"metric {earlier.metric!r}: segments "
                f"[{earlier.start_period}, {earlier.end_period}) and "
                f"[{later.start_period}, {later.end_period}) are not "
                "adjacent; merge covers contiguous period runs only"
            )
    master = rebuild_policy(segments[0])
    for segment in segments[1:]:
        master.merge(rebuild_policy(segment))
    return Segment(
        metric=segments[0].metric,
        start_period=segments[0].start_period,
        end_period=segments[-1].end_period,
        count=sum(segment.count for segment in segments),
        state=master.to_state(),
        kind=kind,
    )


def _select_phis(
    answer: Dict[float, float],
    quantiles: Optional[Sequence[float]],
    metric: str,
) -> Dict[float, float]:
    """Restrict a full query answer to the requested quantiles."""
    if quantiles is None:
        return dict(answer)
    selected: Dict[float, float] = {}
    for phi in quantiles:
        key = float(phi)
        if key not in answer:
            raise StoreError(
                f"metric {metric!r}: quantile {key} is not tracked; the "
                f"stored sketch answers {sorted(answer)} — historical "
                "queries can only read quantiles the metric was configured "
                "with"
            )
        selected[key] = answer[key]
    return selected


def query_range(
    store: SegmentStore,
    metric: str,
    start: int,
    end: int,
    quantiles: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """Quantiles of one metric over periods ``[start, end)``.

    Returns a JSON-safe result dict::

        {"metric": ..., "start_period": t0, "end_period": t1,
         "count": events, "segments_merged": n,
         "quantiles": {"0.99": 41.5, ...}}

    Raises :class:`~repro.store.store.StoreError` with an actionable
    message when the range is uncovered or misaligned with compaction
    boundaries (the error names the nearest achievable boundaries).
    """
    segments = store.covering(metric, start, end)
    master = rebuild_policy(segments[0])
    for segment in segments[1:]:
        master.merge(rebuild_policy(segment))
    answer = _select_phis(master.query(), quantiles, metric)
    return {
        "metric": metric,
        "start_period": start,
        "end_period": end,
        "count": sum(segment.count for segment in segments),
        "segments_merged": len(segments),
        "quantiles": {repr(phi): float(value) for phi, value in sorted(answer.items())},
    }


def query_at(
    store: SegmentStore,
    metric: str,
    period: int,
    quantiles: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """Point-in-time quantiles: one period's events (``[P, P+1)``)."""
    return query_range(store, metric, period, period + 1, quantiles)


def query_series(
    store: SegmentStore,
    metric: str,
    start: int,
    end: int,
    step: int,
    quantiles: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """Group-over-time: one answer per ``step``-period bucket of a range.

    Buckets are ``[start, start+step), [start+step, start+2*step), ...``;
    the final bucket is clipped at ``end``.  Each bucket is an independent
    :func:`query_range`, so every bucket must align with stored segment
    boundaries (fine history always does; compacted history constrains
    steps to rollup multiples — the per-bucket error says which).
    """
    if not isinstance(step, int) or isinstance(step, bool) or step < 1:
        raise StoreError(f"series step must be a positive int, got {step!r}")
    if end <= start:
        raise StoreError(
            f"period range [{start}, {end}) is empty; end must exceed start"
        )
    buckets: List[Dict[str, Any]] = []
    cursor = start
    while cursor < end:
        bucket_end = min(cursor + step, end)
        buckets.append(query_range(store, metric, cursor, bucket_end, quantiles))
        cursor = bucket_end
    return {
        "metric": metric,
        "start_period": start,
        "end_period": end,
        "step": step,
        "buckets": buckets,
    }


def render_result(result: Dict[str, Any]) -> str:
    """One query answer as the CLI's stable, byte-diffable text form.

    The same renderer backs ``python -m repro query`` against a local
    store and against a live server's ``history`` op, so the acceptance
    check "server bytes == CLI bytes" is a straight diff.
    """
    lines: List[str] = []
    if "buckets" in result:
        header = (
            f"{result['metric']} periods [{result['start_period']}, "
            f"{result['end_period']}) step {result['step']}"
        )
        lines.append(header)
        for bucket in result["buckets"]:
            lines.extend("  " + line for line in _render_single(bucket))
    else:
        lines.extend(_render_single(result))
    return "\n".join(lines) + "\n"


def _render_single(result: Dict[str, Any]) -> List[str]:
    lines = [
        f"{result['metric']} periods [{result['start_period']}, "
        f"{result['end_period']}) count={result['count']} "
        f"segments={result['segments_merged']}"
    ]
    for phi, value in result["quantiles"].items():
        lines.append(f"  p{phi}: {value!r}")
    return lines
