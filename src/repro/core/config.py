"""Configuration objects for the QLOVE policy.

Defaults follow the paper: three-significant-digit value compression, the
dict frequency-map backend, top-k merging switched on automatically when a
quantile is statistically inefficient (``P (1 - phi) < T_s`` with
``T_s = 10``), and Mann–Whitney burst detection at the 5% level.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional

from repro.streaming.windows import CountWindow


@dataclass(frozen=True)
class FewKConfig:
    """Few-k merging knobs (Section 4).

    Parameters
    ----------
    ts_threshold:
        ``T_s``: top-k merging activates for quantile phi when the expected
        number of tail data points per sub-window ``P (1 - phi)`` falls
        below this ("We set Ts as 10", Section 4.3).
    topk_fraction:
        Per-sub-window top-k cache as a fraction of the exact-guarantee
        size ``N (1 - phi)`` (the "fraction" axis of Table 3).  ``None``
        selects the paper's automatic rule ``k_t = ceil(P (1 - phi))``.
    samplek_fraction:
        Per-sub-window sample count as a fraction of ``N (1 - phi)``
        (Table 4's "fraction"); 0 disables sample-k merging.
    budget:
        Optional total window budget ``B`` in retained values.  When set it
        overrides the fractions: each sub-window gets ``k = B / (N / P)``,
        split ``k_t = ceil(P (1 - phi))`` with the remainder to ``k_s``
        ("QLOVE assigns all the remaining budget for ks", Section 4.2).
    burst_detection / burst_alpha:
        Enable the Mann–Whitney comparison of the current sub-window's
        sampled tail against the previous sub-window's, at this level.
    """

    ts_threshold: int = 10
    topk_fraction: Optional[float] = None
    samplek_fraction: float = 0.0
    budget: Optional[int] = None
    burst_detection: bool = True
    burst_alpha: float = 0.05

    def __post_init__(self) -> None:
        for name in ("ts_threshold", "topk_fraction", "samplek_fraction",
                     "budget", "burst_alpha"):
            value = getattr(self, name)
            if value is None:
                continue
            # numbers.Real admits numpy scalars (np.int64 budgets from
            # len()/array arithmetic); bool is excluded explicitly.
            if isinstance(value, bool) or not isinstance(value, numbers.Real):
                raise ValueError(
                    f"{name} must be a number, got {value!r} "
                    f"({type(value).__name__})"
                )
        if self.ts_threshold < 0:
            raise ValueError(
                f"ts_threshold must be non-negative, got {self.ts_threshold} "
                "(the paper uses T_s = 10)"
            )
        if self.topk_fraction is not None and not 0.0 <= self.topk_fraction <= 1.0:
            raise ValueError(
                f"topk_fraction must be in [0, 1] (a fraction of the exact "
                f"tail size N(1-phi)), got {self.topk_fraction}"
            )
        if not 0.0 <= self.samplek_fraction <= 1.0:
            raise ValueError(
                f"samplek_fraction must be in [0, 1] (a fraction of the exact "
                f"tail size N(1-phi)), got {self.samplek_fraction}"
            )
        if self.budget is not None and self.budget < 0:
            raise ValueError(
                f"budget must be non-negative (total retained values across "
                f"the window), got {self.budget}"
            )
        if not 0.0 < self.burst_alpha < 1.0:
            raise ValueError(
                f"burst_alpha must be in (0, 1) (a significance level such "
                f"as 0.05), got {self.burst_alpha}"
            )

    # ------------------------------------------------------------------
    # Budget resolution (Section 4.2)
    # ------------------------------------------------------------------
    def resolve_kt(self, phi: float, window: CountWindow) -> int:
        """Per-sub-window top-k cache size ``k_t`` for quantile ``phi``."""
        exact_need = exact_tail_size(phi, window.size)
        if self.budget is not None:
            per_subwindow = self.budget // window.subwindow_count
            return min(exact_tail_size(phi, window.period), per_subwindow)
        if self.topk_fraction is not None:
            return int(math.ceil(round(self.topk_fraction * exact_need, 9)))
        return exact_tail_size(phi, window.period)

    def resolve_ks(self, phi: float, window: CountWindow) -> int:
        """Per-sub-window sample count ``k_s`` for quantile ``phi``."""
        exact_need = exact_tail_size(phi, window.size)
        if self.budget is not None:
            per_subwindow = self.budget // window.subwindow_count
            return max(0, per_subwindow - self.resolve_kt(phi, window))
        return int(math.ceil(round(self.samplek_fraction * exact_need, 9)))

    def topk_active(self, phi: float, window: CountWindow) -> bool:
        """Whether top-k merging is on for ``phi``.

        Section 4.3: top-k switches on exactly for the quantiles that suffer
        statistical inefficiency, i.e. ``P (1 - phi) < T_s``; the fraction /
        budget knobs only size the cache, they never widen the trigger.
        """
        return round(window.period * (1.0 - phi), 9) < self.ts_threshold

    def samplek_active(self, phi: float, window: CountWindow) -> bool:
        """Whether sample-k merging is on for ``phi``."""
        return self.resolve_ks(phi, window) > 0

    # ------------------------------------------------------------------
    # Serialisation (plain-data round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON field mapping; :meth:`from_dict` round-trips it."""
        data = asdict(self)
        data["ts_threshold"] = int(data["ts_threshold"])
        if data["topk_fraction"] is not None:
            data["topk_fraction"] = float(data["topk_fraction"])
        data["samplek_fraction"] = float(data["samplek_fraction"])
        if data["budget"] is not None:
            data["budget"] = int(data["budget"])
        data["burst_detection"] = bool(data["burst_detection"])
        data["burst_alpha"] = float(data["burst_alpha"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FewKConfig":
        """Rebuild a config from its :meth:`to_dict` form."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a FewKConfig dict form must be a mapping, got "
                f"{type(data).__name__}"
            )
        return cls(**data)


def exact_tail_size(phi: float, window_size: int) -> int:
    """Number of largest values that pin down the exact phi-quantile.

    The paper writes this as ``N (1 - phi)``; with the rank convention
    r = ceil(phi N) (1-based from the smallest), the quantile element is the
    ``N - ceil(phi N) + 1``-th largest, which equals ``ceil(N (1 - phi))``
    except when ``phi N`` is an integer, where one more value is needed.
    (For the paper's 128K = 131,072-element window at phi = 0.999 this gives
    the 132 entries quoted in Section 5.3.)  Products are rounded to 9
    decimals first so binary float fuzz cannot shift the ceiling.
    """
    if window_size <= 0:
        raise ValueError("window_size must be positive")
    bottom_rank = max(1, math.ceil(round(phi * window_size, 9)))
    return max(1, window_size - bottom_rank + 1)


@dataclass(frozen=True)
class QLOVEConfig:
    """Top-level QLOVE configuration.

    ``quantize_digits=None`` disables value compression; ``backend``
    selects the Level-1 frequency-map implementation (``"dict"`` fast path
    or the paper's ``"tree"``); ``fewk=None`` disables few-k merging
    entirely (the Section 5.2 configuration).
    """

    quantize_digits: Optional[int] = 3
    backend: str = "dict"
    fewk: Optional[FewKConfig] = None

    def __post_init__(self) -> None:
        if self.backend not in ("dict", "tree"):
            raise ValueError(f"backend must be 'dict' or 'tree', got {self.backend!r}")
        if self.quantize_digits is not None:
            if isinstance(self.quantize_digits, bool) or not isinstance(
                self.quantize_digits, numbers.Integral
            ):
                raise ValueError(
                    f"quantize_digits must be an integer number of significant "
                    f"digits (or None to disable compression), got "
                    f"{self.quantize_digits!r}"
                )
            if self.quantize_digits < 1:
                raise ValueError(
                    f"quantize_digits must be >= 1 or None, got "
                    f"{self.quantize_digits}"
                )
        if self.fewk is not None and not isinstance(self.fewk, FewKConfig):
            raise ValueError(
                f"fewk must be a FewKConfig or None, got "
                f"{type(self.fewk).__name__}; build one with "
                "QLOVEConfig.with_fewk(...) or FewKConfig(...)"
            )

    @classmethod
    def with_fewk(cls, **fewk_kwargs: object) -> "QLOVEConfig":
        """Convenience: default config with few-k merging enabled."""
        return cls(fewk=FewKConfig(**fewk_kwargs))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Serialisation (plain-data round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON field mapping; :meth:`from_dict` round-trips it."""
        return {
            "quantize_digits": (
                None if self.quantize_digits is None else int(self.quantize_digits)
            ),
            "backend": self.backend,
            "fewk": None if self.fewk is None else self.fewk.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QLOVEConfig":
        """Rebuild a config from its :meth:`to_dict` form."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a QLOVEConfig dict form must be a mapping, got "
                f"{type(data).__name__}"
            )
        entries = dict(data)
        fewk = entries.pop("fewk", None)
        if fewk is not None and not isinstance(fewk, FewKConfig):
            fewk = FewKConfig.from_dict(fewk)
        return cls(fewk=fewk, **entries)
