"""Window specifications for the two windowing models of Section 2.

A window has a *size* (how much data a query evaluation sees) and a *period*
(how often the query evaluates).  Tumbling windows have size == period;
sliding windows have size > period.  Sub-windows — the unit QLOVE summarises
— are always aligned with the period ("the size of each sub-window is
aligned with window period", Section 3.1), so a sliding window spans exactly
``size / period`` sub-windows and the engine requires that ratio to be an
integer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CountWindow:
    """Count-based window: evaluate every ``period`` elements over the last
    ``size`` elements.

    This is the windowing model used throughout the paper's evaluation
    (e.g. "16K window period and 128K window size").
    """

    size: int
    period: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.size < self.period:
            raise ValueError("window size must be at least the period")
        if self.size % self.period != 0:
            raise ValueError(
                "window size must be a multiple of the period so sub-windows "
                f"align (got size={self.size}, period={self.period})"
            )

    @property
    def is_tumbling(self) -> bool:
        """True when size == period (no overlap between evaluations)."""
        return self.size == self.period

    @property
    def is_sliding(self) -> bool:
        """True when size > period (elements live across evaluations)."""
        return self.size > self.period

    @property
    def subwindow_count(self) -> int:
        """Number of sub-windows n = N / P covered by one full window."""
        return self.size // self.period

    @classmethod
    def tumbling(cls, size: int) -> "CountWindow":
        """Convenience constructor for a tumbling window."""
        return cls(size=size, period=size)


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """Time-based window: evaluate every ``period`` seconds over the last
    ``size`` seconds of events.

    "Our work can be applied to windows defined by time parameters, e.g.,
    evaluate the query every one minute for the elements seen last one
    hour" (Section 2).  Sub-windows are the half-open timestamp intervals
    ``[k * period, (k + 1) * period)``.
    """

    size: float
    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.size < self.period:
            raise ValueError("window size must be at least the period")
        ratio = self.size / self.period
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                "window size must be a multiple of the period so sub-windows "
                f"align (got size={self.size}, period={self.period})"
            )

    @property
    def is_tumbling(self) -> bool:
        """True when size == period."""
        return self.size == self.period

    @property
    def is_sliding(self) -> bool:
        """True when size > period."""
        return self.size > self.period

    @property
    def subwindow_count(self) -> int:
        """Number of period-length intervals covered by one full window."""
        return round(self.size / self.period)

    def subwindow_index(self, timestamp: float) -> int:
        """Index of the period interval containing ``timestamp``."""
        return int(timestamp // self.period)

    @classmethod
    def tumbling(cls, size: float) -> "TimeWindow":
        """Convenience constructor for a tumbling window."""
        return cls(size=size, period=size)
