"""End-to-end scenarios across the full stack.

These combine the datacenter simulator, the streaming engine, the Qmonitor
query pipeline and the QLOVE policy — the complete system the paper
deploys, exercised the way a user would.
"""

import math

import numpy as np
import pytest

from repro import (
    CountWindow,
    FewKConfig,
    PolicyOperator,
    QLOVEConfig,
    QLOVEPolicy,
    Query,
    StreamEngine,
    TimeWindow,
    make_policy,
)
from repro.evalkit import exact_quantile
from repro.streaming.sources import merge_sources, value_stream
from repro.workloads import (
    BurstPattern,
    Datacenter,
    DatacenterConfig,
    Incident,
    pattern_window,
)


class TestQmonitorPipeline:
    """The paper's query over the simulated datacenter."""

    def test_filtered_quantiles_over_probe_stream(self):
        datacenter = Datacenter(DatacenterConfig(drop_probability=0.01), seed=0)
        window = CountWindow(size=8000, period=2000)
        policy = QLOVEPolicy([0.5, 0.99], window)
        query = (
            Query(datacenter.probe_stream(20_000, probes_per_second=1e6))
            .where(lambda e: e.error_code == 0)
            .windowed_by(window)
            .aggregate(PolicyOperator(policy))
        )
        results = StreamEngine().run_to_list(query)
        assert len(results) >= 5
        for result in results:
            # Sane RTT quantiles: sub-millisecond median, bounded tail.
            assert 100 < result.result[0.5] < 2000
            assert result.result[0.99] < 100_000
            assert result.result[0.5] <= result.result[0.99]

    def test_incident_visible_in_tail_quantile(self):
        config = DatacenterConfig(tail_probability=0.0, drop_probability=0.0)
        incident = Incident(pod=0, start=0.01, end=1.0, factor=20.0)
        calm = Datacenter(config, seed=1)
        stormy = Datacenter(config, incidents=[incident], seed=1)
        window = CountWindow.tumbling(5000)

        def p99_series(dc):
            policy = QLOVEPolicy([0.99], window)
            query = (
                Query(dc.probe_stream(15_000, probes_per_second=1e6))
                .windowed_by(window)
                .aggregate(PolicyOperator(policy))
            )
            return [r.result[0.99] for r in StreamEngine().run(query)]

        calm_p99 = p99_series(calm)
        storm_p99 = p99_series(stormy)
        assert max(storm_p99) > 2 * max(calm_p99)


class TestTimeWindowedQLOVE:
    def test_time_windows_with_idle_gaps(self):
        # Events only in alternating seconds; empty sub-windows must seal
        # without breaking Level 2.
        events = []
        rng = np.random.default_rng(2)
        for second in range(0, 20, 2):
            stamps = np.sort(rng.uniform(second, second + 1, size=500))
            for t in stamps:
                events.append((float(t), float(rng.normal(1000, 100))))
        from repro.streaming import Event

        stream = [Event(t, v) for t, v in events]
        window = TimeWindow(size=4.0, period=1.0)
        policy = QLOVEPolicy([0.5], window)
        query = Query(stream).windowed_by(window).aggregate(PolicyOperator(policy))
        results = StreamEngine(emit_partial=True).run_to_list(query)
        assert results
        for result in results:
            if result.window_count > 0:
                assert 800 < result.result[0.5] < 1200


class TestMultiSourceIngest:
    def test_merged_probes_from_many_sources(self):
        # Three probes with interleaved timestamps feeding one query.
        rng = np.random.default_rng(3)
        streams = [
            value_stream(rng.normal(1000, 50, size=2000), start=i * 0.3, dt=1.0, source=f"probe{i}")
            for i in range(3)
        ]
        window = CountWindow(size=3000, period=1000)
        policy = QLOVEPolicy([0.5], window)
        query = (
            Query(merge_sources(*streams))
            .windowed_by(window)
            .aggregate(PolicyOperator(policy))
        )
        results = StreamEngine().run_to_list(query)
        assert len(results) == 4
        for result in results:
            assert abs(result.result[0.5] - 1000) < 20


class TestFigure3Patterns:
    """Few-k behaviour across the paper's E1-E4 tail placements."""

    @pytest.mark.parametrize("pattern", list(BurstPattern))
    def test_topk_full_budget_exact_for_even_spread(self, pattern):
        window = CountWindow(size=10_000, period=1_000)
        values = pattern_window(pattern, window, phi=0.999, seed=4)
        config = QLOVEConfig(
            quantize_digits=None, fewk=FewKConfig(topk_fraction=1.0)
        )
        policy = QLOVEPolicy([0.999], window, config)
        for i, v in enumerate(values):
            policy.accumulate(float(v))
            if (i + 1) % window.period == 0:
                policy.seal_subwindow()
        truth = exact_quantile(values, 0.999)
        estimate = policy.query()[0.999]
        # Full-budget top-k is exact for every placement pattern (E1-E4).
        assert estimate == pytest.approx(truth)

    def test_small_k_ranks_patterns_by_difficulty(self):
        # With k=1 per sub-window: "E1 performing the worst, followed by
        # E2, and then E3" (Section 4.1); E4 stays exact.
        window = CountWindow(size=10_000, period=1_000)
        errors = {}
        for pattern in BurstPattern:
            values = pattern_window(pattern, window, phi=0.999, seed=5)
            config = QLOVEConfig(
                quantize_digits=None,
                fewk=FewKConfig(topk_fraction=1.0 / 11.0),  # k_t = 1
            )
            policy = QLOVEPolicy([0.999], window, config)
            for i, v in enumerate(values):
                policy.accumulate(float(v))
                if (i + 1) % window.period == 0:
                    policy.seal_subwindow()
            truth = exact_quantile(values, 0.999)
            estimate = policy.query()[0.999]
            errors[pattern] = abs(estimate - truth) / truth
        assert errors[BurstPattern.E1] >= errors[BurstPattern.E3]
        assert errors[BurstPattern.E1] >= errors[BurstPattern.E4]
        assert errors[BurstPattern.E4] < 0.15


class TestPolicyAgreementEndToEnd:
    def test_all_policies_bounded_error_on_smooth_data(self):
        # Every policy should track a well-behaved stream's median within
        # a few percent end-to-end through the engine.
        rng = np.random.default_rng(6)
        values = rng.normal(1e6, 5e4, size=24_000)
        window = CountWindow(size=8000, period=2000)
        for name, params in [
            ("qlove", {}),
            ("exact", {}),
            ("cmqs", {"epsilon": 0.05}),
            ("am", {"epsilon": 0.05}),
            ("random", {"epsilon": 0.05, "seed": 0}),
            ("moment", {"k": 8}),
        ]:
            policy = make_policy(name, [0.5], window, **params)
            query = (
                Query(value_stream(values))
                .windowed_by(window)
                .aggregate(PolicyOperator(policy))
            )
            for result in StreamEngine().run(query):
                end = int(result.end)
                truth = exact_quantile(values[end - window.size : end], 0.5)
                err = abs(result.result[0.5] - truth) / truth
                assert err < 0.03, (name, err)
