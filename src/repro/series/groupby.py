"""Group-by quantile queries: merge per-series policies per label subset.

Answers ``quantiles(latency) group by region`` against a live
:class:`~repro.series.index.SeriesIndex` (:func:`group_by_live`) or a
historical :class:`~repro.store.store.SegmentStore` holding per-series
segment logs (:func:`group_by_store`).  Both build each group's answer
by folding the member series' policies together through the universal
merge contract, in canonical series-key order, without ever expiring —
the same discipline as :mod:`repro.store.query`, so for time-composable
policies a group's answer is **bit-identical** to an offline run that
ingested the group's member streams concatenated in that same order
(the property the group-by equivalence battery pins, across seeds,
shard counts and eviction on/off).

Live donors are never mutated: each group's first member is cloned
through the serde path (a bit-identical twin) to serve as the merge
master, and :meth:`QuantilePolicy.merge` leaves donors untouched, so a
query is a pure read.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.series.labels import LabelItems, encode_labelset, try_parse_series_key
from repro.sketches.registry import policy_from_state


def _validated_by(by: object, schema: Sequence[str], metric: str) -> Tuple[str, ...]:
    """Validate the group-by label subset against the metric's schema."""
    if isinstance(by, str):
        by = [by]
    if not isinstance(by, Sequence) or not by:
        raise ValueError(
            f"metric {metric!r}: group_by takes a non-empty list of label "
            f"names, got {by!r}"
        )
    unknown = sorted(set(by) - set(schema))
    if unknown:
        raise ValueError(
            f"metric {metric!r}: cannot group by unknown label(s) {unknown}; "
            f"the schema is {sorted(schema)}"
        )
    duplicates = sorted({name for name in by if list(by).count(name) > 1})
    if duplicates:
        raise ValueError(
            f"metric {metric!r}: duplicate group-by label(s) {duplicates}"
        )
    return tuple(sorted(by))


def _group_items(labels: LabelItems, by: Tuple[str, ...]) -> LabelItems:
    """The member's group key: its labels restricted to ``by`` (canonical
    order is preserved because ``labels`` is already sorted)."""
    return tuple((name, value) for name, value in labels if name in by)


def _select(answer: Dict[float, float], quantiles, metric: str) -> Dict[float, float]:
    """Restrict a policy answer to the requested quantiles (all if None)."""
    if quantiles is None:
        return dict(answer)
    selected: Dict[float, float] = {}
    for phi in quantiles:
        key = float(phi)
        if key not in answer:
            raise ValueError(
                f"metric {metric!r}: quantile {key} is not tracked; the "
                f"sketch answers {sorted(answer)} — group-by can only read "
                "quantiles the metric was configured with"
            )
        selected[key] = answer[key]
    return selected


def group_by_live(index, by, quantiles: Optional[Sequence[float]] = None) -> Dict[str, Any]:
    """Current-window group-by over a live (or checkpointed) index.

    Every known series — active or evicted — contributes its full
    current state (sealed sub-windows plus in-flight events).  Returns a
    JSON-safe result dict::

        {"metric": ..., "by": ["region"],
         "groups": [{"key": {"region": "eu"}, "series": 3, "evicted": 1,
                     "count": 1234, "quantiles": {"0.99": 41.5}}, ...]}

    Groups are ordered by their canonical encoded key.
    """
    by = _validated_by(by, index.spec.labels, index.spec.name)
    grouped: Dict[str, Dict[str, Any]] = {}
    for key, labels, entry, state in index.members():
        items = _group_items(labels, by)
        enc = encode_labelset(items)
        bucket = grouped.setdefault(
            enc, {"items": items, "members": [], "evicted": 0, "count": 0}
        )
        if entry is not None:
            bucket["members"].append(entry.channel.policy)
            bucket["count"] += sum(entry.channel._counts) + entry.channel._in_flight
        else:
            bucket["members"].append(state["policy"])
            bucket["evicted"] += 1
            bucket["count"] += sum(state["counts"]) + int(state["in_flight"])
    groups: List[Dict[str, Any]] = []
    for enc in sorted(grouped):
        bucket = grouped[enc]
        members = bucket["members"]
        # Clone the first member bit-identically; later members merge in
        # directly (merge never mutates its donor).
        first = members[0]
        master = policy_from_state(first if isinstance(first, dict) else first.to_state())
        for donor in members[1:]:
            master.merge(policy_from_state(donor) if isinstance(donor, dict) else donor)
        answer = _select(master.query(), quantiles, index.spec.name)
        groups.append(
            {
                "key": {name: value for name, value in bucket["items"]},
                "series": len(members),
                "evicted": int(bucket["evicted"]),
                "count": int(bucket["count"]),
                "quantiles": {
                    repr(phi): float(value) for phi, value in sorted(answer.items())
                },
            }
        )
    return {"metric": index.spec.name, "by": list(by), "groups": groups}


def group_by_store(
    store,
    metric: str,
    by,
    start: int,
    end: int,
    quantiles: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """Historical group-by: periods ``[start, end)`` of a labeled family.

    Scans the store for series keys of ``metric`` (written by a
    ``--history`` run with labeled specs), decodes their labelsets,
    groups by the ``by`` subset, and merges each member's covering
    segments in time order, then members in canonical key order — the
    same bit-identity discipline as :func:`group_by_live`.  Series whose
    labelsets were length-capped into hashes cannot be grouped
    historically and raise with the offending keys.
    """
    from repro.store.query import rebuild_policy
    from repro.store.store import StoreError

    members: List[Tuple[str, Dict[str, str]]] = []
    hashed: List[str] = []
    for key in store.metrics():
        parsed = try_parse_series_key(key)
        if parsed is None or parsed.metric != metric:
            continue
        if parsed.hashed:
            hashed.append(key)
            continue
        members.append((key, parsed.labels))
    if hashed:
        raise StoreError(
            f"metric {metric!r}: series {sorted(hashed)} were stored under "
            "length-capped (hashed) keys and their labels cannot be "
            "recovered for grouping; query them individually, or keep "
            "labelset encodings under the length cap"
        )
    if not members:
        raise StoreError(
            f"no labeled series of metric {metric!r} in this store; "
            f"stored metrics: {store.metrics() or '(none)'} — labeled "
            "history is written by 'monitor'/'serve' runs whose specs "
            "declare labels"
        )
    schema = sorted({name for _, labels in members for name in labels})
    by = _validated_by(by, schema, metric)
    grouped: Dict[str, Dict[str, Any]] = {}
    for key, labels in sorted(members):
        items = tuple((name, labels[name]) for name in sorted(labels) if name in by)
        enc = encode_labelset(items)
        bucket = grouped.setdefault(
            enc, {"items": items, "keys": [], "count": 0, "segments": 0}
        )
        bucket["keys"].append(key)
    groups: List[Dict[str, Any]] = []
    for enc in sorted(grouped):
        bucket = grouped[enc]
        master = None
        for key in bucket["keys"]:  # canonical order (members pre-sorted)
            segments = store.covering(key, start, end)
            bucket["segments"] += len(segments)
            bucket["count"] += sum(segment.count for segment in segments)
            for segment in segments:
                delta = rebuild_policy(segment)
                if master is None:
                    master = delta
                else:
                    master.merge(delta)
        answer = master.query()
        if quantiles is not None:
            try:
                answer = _select(answer, quantiles, metric)
            except ValueError as exc:
                raise StoreError(str(exc)) from None
        groups.append(
            {
                "key": {name: value for name, value in bucket["items"]},
                "series": len(bucket["keys"]),
                "count": int(bucket["count"]),
                "segments_merged": int(bucket["segments"]),
                "quantiles": {
                    repr(phi): float(value) for phi, value in sorted(answer.items())
                },
            }
        )
    return {
        "metric": metric,
        "by": list(by),
        "start_period": int(start),
        "end_period": int(end),
        "groups": groups,
    }


def render_group_result(result: Dict[str, Any]) -> str:
    """A group-by answer as stable, byte-diffable text (the CLI form).

    One header line, then one block per group; the same renderer backs
    local-store and live-server answers so their bytes match.
    """
    header = f"{result['metric']} group by {','.join(result['by'])}"
    if "start_period" in result:
        header += f" periods [{result['start_period']}, {result['end_period']})"
    lines = [header]
    for group in result["groups"]:
        key = ",".join(f"{name}={value}" for name, value in sorted(group["key"].items()))
        parts = [f"series={group['series']}", f"count={group['count']}"]
        if "evicted" in group:
            parts.append(f"evicted={group['evicted']}")
        if "segments_merged" in group:
            parts.append(f"segments={group['segments_merged']}")
        lines.append(f"  {{{key}}} " + " ".join(parts))
        for phi, value in group["quantiles"].items():
            lines.append(f"    p{phi}: {value!r}")
    return "\n".join(lines) + "\n"
