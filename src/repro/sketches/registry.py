"""Policy factory: instantiate any compared algorithm by name.

Experiments and benchmarks refer to policies by the names used in the
paper's tables: ``qlove``, ``exact``, ``cmqs``, ``am``, ``random``,
``moment``.  QLOVE lives in :mod:`repro.core` and is imported lazily to
keep the dependency direction core -> sketches.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.sketches.am import AMPolicy
from repro.sketches.base import QuantilePolicy
from repro.sketches.cmqs import CMQSPolicy
from repro.sketches.exact import ExactPolicy
from repro.sketches.moments import MomentPolicy
from repro.sketches.random_sketch import RandomPolicy
from repro.streaming.windows import CountWindow

PolicyFactory = Callable[..., QuantilePolicy]


def _qlove_factory(
    phis: Sequence[float], window: CountWindow, **params: object
) -> QuantilePolicy:
    from repro.core.qlove import QLOVEPolicy

    return QLOVEPolicy(phis, window, **params)  # type: ignore[arg-type]


_REGISTRY: Dict[str, PolicyFactory] = {
    "exact": ExactPolicy,
    "cmqs": CMQSPolicy,
    "am": AMPolicy,
    "random": RandomPolicy,
    "moment": MomentPolicy,
    "qlove": _qlove_factory,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_REGISTRY)


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Add (or replace) a policy factory under ``name``.

    The factory is called as ``factory(phis, window, **params)`` and must
    return a :class:`~repro.sketches.base.QuantilePolicy`.  Registration
    makes the policy constructible from declarative
    :class:`~repro.service.spec.MetricSpec` configs and the CLI without
    any imports at the call site.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"policy factory must be callable, got {type(factory).__name__}")
    _REGISTRY[name] = factory


def get_policy_factory(name: str) -> PolicyFactory:
    """The raw registered factory for ``name`` (for signature inspection)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None


def make_policy(
    name: str,
    phis: Sequence[float],
    window: CountWindow,
    **params: object,
) -> QuantilePolicy:
    """Instantiate a policy by its paper name with algorithm parameters.

    ``params`` are forwarded to the policy constructor (e.g.
    ``epsilon=0.02`` for CMQS/AM/Random, ``k=12`` for Moment, few-k
    settings for QLOVE).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(phis, window, **params)
