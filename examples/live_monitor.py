"""Live telemetry serving walkthrough: network ingest → Monitor.

The deployment the paper targets is *continuous*: telemetry arrives
over the network from many nodes, not from pre-materialized arrays.
This example runs the whole serving stack in one process:

1. **Serve** — a :class:`~repro.service.server.TelemetryServer` fronts a
   multi-metric :class:`~repro.service.monitor.Monitor` on an ephemeral
   TCP port, checkpointing its state every second.
2. **Drive** — a seeded :class:`~repro.service.client.LoadGenerator`
   streams a NetMon workload over **four concurrent connections**.
   Blocks carry global sequence numbers, so the server's consumer
   reassembles the exact stream order however the connections race.
3. **Query** — a :class:`~repro.service.client.TelemetryClient` asks for
   the served snapshot, which is asserted **bit-identical** to an
   offline monitor fed the same stream.
4. **Crash + resume** — the server is killed without a clean drain, a
   fresh server restores the checkpoint file, the generator resumes
   from the server's own position, and the final report again equals
   the offline run.

Run:  python examples/live_monitor.py

The same flow runs as separate processes via the CLI::

    python -m repro serve specs.json --port 7733 --checkpoint ckpt.json
    python -m repro loadgen --port 7733 --connections 4 --snapshot
"""

import os
import tempfile

from repro.service import (
    LoadGenerator,
    Monitor,
    TelemetryClient,
    TelemetryServer,
)

EVENTS = 120_000
BLOCK_SIZE = 8_192
SEED = 3
CONNECTIONS = 4

SPECS = [
    {
        "name": "netmon.rtt",
        "quantiles": [0.5, 0.9, 0.99, 0.999],
        "window": {"size": 60_000, "period": 10_000},
        "policy": "qlove",
        "policy_params": {"fewk": {"samplek_fraction": 0.01}},
    },
    {
        "name": "netmon.rtt.exact",
        "quantiles": [0.5, 0.99],
        "window": {"size": 30_000, "period": 10_000},
        "policy": "exact",
    },
]


def build_monitor() -> Monitor:
    monitor = Monitor()
    for spec in SPECS:
        monitor.register(spec)
    return monitor


def offline_reference(values) -> Monitor:
    """The same stream ingested directly, block for block."""
    monitor = build_monitor()
    for start in range(0, len(values), BLOCK_SIZE):
        block = values[start : start + BLOCK_SIZE]
        for name in monitor.metrics():
            monitor.observe_batch(name, block)
    return monitor


def print_snapshot(title: str, snapshot) -> None:
    print(f"\n{title}:")
    for name, estimates in snapshot.items():
        if estimates is None:
            print(f"  {name:<18} (no full window yet)")
            continue
        rendered = "  ".join(
            f"Q{phi:g}={estimate:,.1f}" for phi, estimate in estimates.items()
        )
        print(f"  {name:<18} {rendered}")


def main() -> None:
    checkpoint = os.path.join(tempfile.mkdtemp(), "live-monitor-ckpt.json")

    # ------------------------------------------------------------------
    # Serve + drive + query.
    # ------------------------------------------------------------------
    server = TelemetryServer(
        build_monitor(), checkpoint_path=checkpoint, checkpoint_interval=1.0
    )
    server.start()
    host, port = server.address
    print(f"serving {len(server.monitor)} metric(s) on {host}:{port}")

    generator = LoadGenerator(
        host,
        port,
        dataset="netmon",
        events=EVENTS,
        seed=SEED,
        connections=CONNECTIONS,
        block_size=BLOCK_SIZE,
    )
    crash_at = (EVENTS // 2 // BLOCK_SIZE) * BLOCK_SIZE  # a block boundary
    summary = generator.run(stop_after=crash_at)
    print(
        f"streamed {summary['events']:,} events in {summary['blocks']} blocks "
        f"over {summary['connections']} connections "
        f"({summary['elapsed']:.2f}s, drained={summary['drained']})"
    )

    with TelemetryClient(host, port) as client:
        client.checkpoint()  # drain + save, on demand
        mid_snapshot = client.snapshot()
    print_snapshot("served snapshot at half-stream", mid_snapshot)

    # ------------------------------------------------------------------
    # Crash: no clean drain, no final save — the checkpoint is all that
    # survives.
    # ------------------------------------------------------------------
    server.stop(drain=False)
    print(f"\nserver killed; state lives in {checkpoint!r}")

    # ------------------------------------------------------------------
    # Resume: a brand-new server restores the file; the generator asks
    # the server where it stopped and sends only the remainder.
    # ------------------------------------------------------------------
    with TelemetryServer(Monitor.load(checkpoint)) as revived:
        host, port = revived.address
        resumed = LoadGenerator(
            host,
            port,
            dataset="netmon",
            events=EVENTS,
            seed=SEED,
            connections=CONNECTIONS,
            block_size=BLOCK_SIZE,
        )
        offset = resumed.resume_offset()
        print(f"resumed server reports position {offset:,}; streaming the rest")
        resumed.run(start_offset=offset)
        with TelemetryClient(host, port) as client:
            final_snapshot = client.snapshot()
            final_results = {
                name: client.results(name) for name in revived.monitor.metrics()
            }
    print_snapshot("served snapshot after crash + resume", final_snapshot)

    # ------------------------------------------------------------------
    # The served answers equal an offline monitor's, bit for bit.
    # ------------------------------------------------------------------
    offline = offline_reference(generator.event_sequence())
    assert final_snapshot == offline.snapshot(), (
        "served snapshot must be bit-identical to the offline monitor"
    )
    for name in offline.metrics():
        assert final_results[name] == offline.results(name), (
            f"served results for {name!r} must equal the offline run"
        )
    print(
        "\nserved == offline: every metric's snapshot and per-period results "
        "are bit-identical to a monitor fed the same stream directly — "
        "through 4 racing connections, one kill and one checkpoint resume."
    )


if __name__ == "__main__":
    main()
