"""Figure 4: throughput — QLOVE vs CMQS(eps sweep) vs Exact."""


def test_figure4(run_experiment):
    result = run_experiment("figure4", scale=0.25, evaluations=40)
    data = result.data

    # Paper shape: QLOVE fastest; CMQS at tight epsilon slower than Exact.
    assert data["QLOVE"] > data["Exact"]
    assert data["CMQS(1x)"] < data["Exact"]
    # Loosening epsilon recovers CMQS throughput (1x -> 10x direction).
    assert data["CMQS(10x)"] >= data["CMQS(1x)"]
    # All policies made progress.
    for label, rate in data.items():
        assert rate > 0, label
