"""QLOVE: Approximate Quantiles for Datacenter Telemetry Monitoring.

A from-scratch reproduction of Lim et al. (ICDE 2020).  The package
provides:

- :mod:`repro.core` — the QLOVE algorithm (two-level quantile
  approximation, value compression, few-k merging, CLT error bound);
- :mod:`repro.streaming` — a Trill-like incremental streaming engine;
- :mod:`repro.sketches` — Exact and the four compared baselines
  (CMQS, AM, Random, Moment);
- :mod:`repro.workloads` — NetMon/Search-style telemetry generators and
  the synthetic datasets of the evaluation;
- :mod:`repro.evalkit` — metrics, runners and per-table experiment
  definitions regenerating the paper's results.

Quickstart::

    from repro import QLOVEPolicy, CountWindow, Query, StreamEngine, value_stream
    from repro.sketches.base import PolicyOperator

    window = CountWindow(size=100_000, period=10_000)
    policy = QLOVEPolicy([0.5, 0.99], window)
    query = Query(value_stream(values)).windowed_by(window).aggregate(
        PolicyOperator(policy))
    for result in StreamEngine().run(query):
        print(result.result)
"""

from repro.core import FewKConfig, QLOVEConfig, QLOVEPolicy
from repro.sketches import (
    AMPolicy,
    CMQSPolicy,
    ExactPolicy,
    MomentPolicy,
    PolicyOperator,
    RandomPolicy,
    available_policies,
    make_policy,
)
from repro.streaming import (
    Chunk,
    CountWindow,
    Event,
    Query,
    StreamEngine,
    TimeWindow,
    chunk_stream,
    value_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AMPolicy",
    "CMQSPolicy",
    "Chunk",
    "CountWindow",
    "Event",
    "ExactPolicy",
    "FewKConfig",
    "MomentPolicy",
    "PolicyOperator",
    "QLOVEConfig",
    "QLOVEPolicy",
    "Query",
    "RandomPolicy",
    "StreamEngine",
    "TimeWindow",
    "available_policies",
    "chunk_stream",
    "make_policy",
    "value_stream",
    "__version__",
]
