"""Fully synthetic datasets specified directly by the paper (Section 5).

- Normal: "a normal distribution, with a mean of 1 million and a standard
  deviation of 50 thousand" (scalability study, Figure 5a).
- Uniform: "a uniform distribution ranging from 90 to 110" (Figure 5b);
  continuous values, so virtually every element is unique — the
  low-redundancy stress case for Exact.
- Pareto: "integers from a skewed, heavy-tailed Pareto distribution, with
  Q0.5 of 20, Q0.999 of 10,000, and the max of 1.1 billion" (Section
  5.4).  Those anchors pin shape alpha = 1 and scale x_m = 10:
  Q(phi) = x_m (1 - phi)^(-1/alpha) gives Q0.5 = 20 and Q0.999 = 10,000,
  and the expected maximum of ~1e8 samples is ~1e9.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

PARETO_SCALE = 10.0
PARETO_SHAPE = 1.0
PARETO_CAP = 1.1e9


def generate_normal(
    size: int,
    mean: float = 1e6,
    std: float = 5e4,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Normal dataset of the scalability study."""
    if size <= 0:
        raise ValueError("size must be positive")
    if std <= 0:
        raise ValueError("std must be positive")
    rng = np.random.default_rng(seed)
    return rng.normal(mean, std, size=size)


def generate_uniform(
    size: int,
    low: float = 90.0,
    high: float = 110.0,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Uniform dataset of the scalability study (continuous floats)."""
    if size <= 0:
        raise ValueError("size must be positive")
    if high <= low:
        raise ValueError("high must exceed low")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=size)


def generate_pareto(size: int, seed: Optional[int] = 0) -> np.ndarray:
    """Pareto dataset of the skewness study (integer values, capped).

    Inverse-CDF sampling of Pareto(x_m = 10, alpha = 1), rounded to
    integers and capped at 1.1e9 (the paper's observed maximum).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    rng = np.random.default_rng(seed)
    u = rng.random(size)
    u = np.maximum(u, 1e-12)  # avoid division blow-up beyond the cap anyway
    values = PARETO_SCALE / np.power(u, 1.0 / PARETO_SHAPE)
    return np.minimum(np.round(values), PARETO_CAP).astype(np.float64)
