"""The common contract for sliding-window quantile policies.

All policies in the paper's comparison (QLOVE, Exact, CMQS, AM, Random,
Moment) answer a fixed set of quantiles over a count-based sliding window
processed in period-aligned sub-windows.  :class:`QuantilePolicy` captures
that lifecycle; :class:`PolicyOperator` adapts any policy to the streaming
engine's :class:`~repro.streaming.operator.SubWindowOperator` so the same
``Qmonitor``-style query can swap algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import serde
from repro.streaming.event import Event
from repro.streaming.operator import SubWindowOperator
from repro.streaming.sources import Chunk
from repro.streaming.windows import CountWindow


def validate_phis(phis: Sequence[float]) -> tuple[float, ...]:
    """Check and canonicalise a quantile list (sorted, unique, in (0, 1])."""
    if not phis:
        raise ValueError("at least one quantile is required")
    for phi in phis:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
    unique = sorted(set(float(p) for p in phis))
    return tuple(unique)


class QuantilePolicy(ABC):
    """A streaming algorithm answering fixed quantiles over a sliding window.

    Lifecycle (driven once per element / period by the engine)::

        accumulate(v) ... accumulate(v)    # elements of one sub-window
        seal_subwindow()                   # period boundary
        expire_subwindow()                 # oldest sub-window leaves window
        query()                            # {phi: estimate}

    Policies know the window shape at construction so they can size their
    per-sub-window state (a point the paper stresses: the quantiles to
    compute are fixed throughout the temporal window).

    Every policy is additionally **mergeable**: :meth:`merge` folds another
    instance's state (sealed sub-windows plus the in-flight one) into this
    one, so per-shard or per-node sketches built independently can be
    combined into a single answer without moving raw data — the property
    the survey literature treats as defining for a production sketch, and
    what :class:`~repro.streaming.sharded.ShardedEngine` and
    :class:`~repro.core.distributed.FleetCoordinator` are built on.
    """

    #: Short identifier used in experiment configs and reports.
    name: ClassVar[str] = "abstract"

    #: Version written by :meth:`to_state`; loaders accept 1..this.
    STATE_VERSION: ClassVar[int] = 1

    def __init__(self, phis: Sequence[float], window: CountWindow) -> None:
        self.phis = validate_phis(phis)
        self.window = window
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def accumulate(self, value: float) -> None:
        """Fold one element of the in-flight sub-window into the state."""

    @abstractmethod
    def seal_subwindow(self) -> None:
        """Close the in-flight sub-window at a period boundary."""

    @abstractmethod
    def expire_subwindow(self) -> None:
        """Drop the oldest sealed sub-window from the window state."""

    @abstractmethod
    def query(self) -> Dict[float, float]:
        """Estimate every configured quantile for the current window."""

    def accumulate_batch(self, values: np.ndarray) -> None:
        """Fold a whole array of elements into the in-flight sub-window.

        The fallback is a tight scalar loop — already faster than the
        per-event engine path (no ``Event`` objects, no operator dispatch)
        and guaranteed to produce the exact per-element state.  Policies
        whose state admits order-independent bulk updates (QLOVE, Exact,
        Random) override this with vectorised implementations that remain
        *bit-identical* to the loop.
        """
        accumulate = self.accumulate
        for value in np.asarray(values, dtype=np.float64).tolist():
            accumulate(value)

    # ------------------------------------------------------------------
    # Mergeability (sharded / distributed execution)
    # ------------------------------------------------------------------
    @abstractmethod
    def merge(self, other: "QuantilePolicy") -> None:
        """Fold ``other``'s window state into this policy.

        Both the sealed sub-window states and the in-flight sub-window are
        merged, so a policy that never sealed (a shard accumulator) and a
        policy holding a full window (a monitoring node) combine through
        the same call.  ``other`` is not modified, but the merged policy
        may share immutable state with it — discard or reset the donor
        rather than continuing to drive it.

        Merging is defined for compatible instances only (same concrete
        type, quantiles, window shape and algorithm parameters); use
        :meth:`_require_compatible` to validate.
        """

    def composable_over_time(self) -> bool:
        """Whether per-period deltas merge back bit-identically in time.

        The historical store splits a stream into per-period **delta**
        policies (each a fresh instance that ingested exactly one period's
        events and sealed them).  A policy is *time-composable* when
        merging those deltas in time order reproduces, bit for bit, the
        state a single sequential instance would hold over the same
        periods — the property the range-query equivalence battery
        asserts (``tests/store/test_range_equivalence.py``).

        Deterministic policies are composable by construction; override
        to return ``False`` when per-instance mutable state breaks it
        (a shared RNG whose position differs between fresh-per-period and
        sequential runs, or cross-period detectors such as burst EWMA).
        Non-composable policies still answer historical queries within
        their error bounds — they just are not bit-reproducible against a
        sequential run.
        """
        return True

    @abstractmethod
    def reset(self) -> None:
        """Discard all accumulated state, keeping the configuration.

        After ``reset()`` the policy behaves like a freshly constructed
        one (including the peak-space tracker).  Randomized policies keep
        their RNG position, so a reset-and-replay run is distributionally
        — not bitwise — identical to a fresh instance's.  The sharded
        engine resets its shard accumulators after every merge instead of
        reconstructing them.
        """

    # ------------------------------------------------------------------
    # Durable state (checkpoint / restore / cross-node shipping)
    # ------------------------------------------------------------------
    @abstractmethod
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot of configuration *and* data.

        The contract is the serialization twin of :meth:`merge`: the dict
        contains only native Python types (``json.dumps`` with the stdlib
        encoder always succeeds), round-trips through
        ``json.dumps``/``json.loads`` exactly, and
        :meth:`from_state` rebuilds a policy whose future behaviour —
        accumulation, sealing, expiry, queries, merging — is
        bit-identical to the original's.  Start from
        :meth:`_state_header` and add algorithm fields.
        """

    @classmethod
    def from_state(cls, state: dict) -> "QuantilePolicy":
        """Rebuild a policy instance from :meth:`to_state` output.

        Every registered policy implements this; use
        :func:`~repro.sketches.registry.policy_from_state` to dispatch on
        the ``policy`` tag without knowing the concrete class.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not implement from_state()"
        )

    def _state_header(self) -> dict:
        """The shared header every policy state starts from."""
        state = serde.header("policy", type(self).STATE_VERSION)
        state["policy"] = self.name
        state["phis"] = [float(phi) for phi in self.phis]
        state["window"] = {
            "size": int(self.window.size),
            "period": int(self.window.period),
        }
        state["peak_space"] = int(self._peak_space)
        return state

    @classmethod
    def _check_policy_state(cls, state: dict) -> Tuple[tuple, CountWindow]:
        """Validate the shared header; returns ``(phis, window)``.

        Raises :class:`~repro.serde.StateError` with an actionable message
        on a foreign kind, an unknown version, a different policy tag or a
        malformed header — the error paths ``Monitor.load`` surfaces.
        """
        context = f"{cls.name} policy"
        serde.check_state(state, "policy", cls.STATE_VERSION, context)
        serde.require_fields(
            state, ("policy", "phis", "window", "peak_space"), context
        )
        if state["policy"] != cls.name:
            raise serde.StateError(
                f"{context}: state was produced by policy "
                f"{state['policy']!r}, not {cls.name!r}; restore it with "
                "policy_from_state() (which dispatches on the tag) or the "
                "matching class"
            )
        window_state = state["window"]
        if not isinstance(window_state, dict) or not {
            "size",
            "period",
        } <= set(window_state):
            raise serde.StateError(
                f"{context}: malformed window in state (expected "
                "{'size', 'period'}, got " f"{window_state!r})"
            )
        window = CountWindow(
            size=int(window_state["size"]), period=int(window_state["period"])
        )
        return tuple(float(phi) for phi in state["phis"]), window

    def _restore_header(self, state: dict) -> None:
        """Adopt the header's accounting fields (call after construction)."""
        self._peak_space = int(state["peak_space"])

    def _require_compatible(self, other: "QuantilePolicy") -> None:
        """Validate that ``other`` can be merged into this policy."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other.phis != self.phis:
            raise ValueError("merge requires the same quantiles")
        if other.window != self.window:
            raise ValueError("merge requires the same window shape")

    # ------------------------------------------------------------------
    # Space accounting (paper metric: "number of variables")
    # ------------------------------------------------------------------
    @abstractmethod
    def space_variables(self) -> int:
        """Observed number of stored variables right now."""

    def record_space(self) -> None:
        """Sample the current footprint into the peak tracker.

        Policies call this at the top of ``seal_subwindow`` — the moment the
        in-flight state is fullest — so ``peak_space_variables`` reflects the
        footprint the paper's "Observed" space column measures.
        """
        space = self.space_variables()
        if space > self._peak_space:
            self._peak_space = space

    def peak_space_variables(self) -> int:
        """Largest footprint observed so far (at least the current one)."""
        return max(self._peak_space, self.space_variables())

    @classmethod
    def analytical_space(cls, window: CountWindow, **params: float) -> Optional[int]:
        """Theoretical space bound in variables; None when not defined."""
        return None


class PolicyOperator(SubWindowOperator[Dict[float, float]]):
    """Adapter: run any :class:`QuantilePolicy` inside the streaming engine.

    This is the ``Aggregate(c => c.Quantile(...))`` stage of the paper's
    ``Qmonitor`` query; the result of each evaluation is the policy's
    ``{phi: estimate}`` mapping.
    """

    def __init__(self, policy: QuantilePolicy) -> None:
        self.policy = policy

    def accumulate(self, event: Event) -> None:
        self.policy.accumulate(event.value)

    def accumulate_batch(self, chunk: Chunk) -> None:
        self.policy.accumulate_batch(chunk.values)

    def seal_subwindow(self) -> None:
        self.policy.seal_subwindow()

    def expire_subwindow(self) -> None:
        self.policy.expire_subwindow()

    def compute_result(self) -> Dict[float, float]:
        return self.policy.query()

    def merge(self, other: SubWindowOperator) -> None:
        if not isinstance(other, PolicyOperator):
            raise TypeError(
                f"cannot merge {type(other).__name__} into PolicyOperator"
            )
        self.policy.merge(other.policy)

    def reset(self) -> None:
        self.policy.reset()

    def to_state(self) -> dict:
        """The wrapped policy's state (checkpointing delegates here)."""
        return self.policy.to_state()

    def restore_state(self, state: dict) -> None:
        """Replace the wrapped policy with one rebuilt from ``state``.

        The restored policy must be compatible (same concrete type,
        quantiles and window shape) with the one this operator was
        configured with — a checkpoint from a different metric fails with
        an actionable error instead of silently changing the query.
        """
        from repro.streaming.checkpoint import restore_policy

        self.policy = restore_policy(state, self.policy)
