"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table1 --scale 0.25
    python -m repro figure5 --seed 7
    python -m repro all --scale 0.125
    qlove-bench table4            # console-script alias

``--scale`` multiplies the paper's window/period sizes (1.0 = paper
size); smaller scales run proportionally faster with the same shapes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.evalkit.experiments import available_experiments, get_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="qlove-bench",
        description="Regenerate the QLOVE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on the paper's window/period sizes (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    return parser


def run_one(name: str, scale: float, seed: int, markdown: bool) -> None:
    """Execute one experiment and print its report."""
    runner = get_experiment(name)
    started = time.perf_counter()
    result = runner(scale=scale, seed=seed)
    elapsed = time.perf_counter() - started
    if markdown:
        print(f"\n## {result.name}\n")
        if result.notes:
            print(result.notes + "\n")
        for table in result.tables:
            print(table.render_markdown())
            print()
    else:
        print()
        print(result.render())
    print(f"\n[{name} completed in {elapsed:.1f}s]")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names = available_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, scale=args.scale, seed=args.seed, markdown=args.markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
