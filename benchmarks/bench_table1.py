"""Table 1: accuracy and space of QLOVE vs the four baselines."""

QMONITOR = (0.5, 0.9, 0.99, 0.999)


def test_table1(run_experiment):
    result = run_experiment("table1", scale=0.25, evaluations=16)
    data = result.data

    # Paper headline: QLOVE's tail value error beats the rank-error
    # baselines (CMQS/AM/Random) by a wide margin.
    qlove_tail = data["qlove"]["value_error"][0.999]
    for baseline in ("cmqs", "am", "random"):
        assert qlove_tail < data[baseline]["value_error"][0.999], baseline

    # Non-high quantiles are sub-1% for QLOVE (paper: 0.10 / 0.06%).
    assert data["qlove"]["value_error"][0.5] < 0.01
    assert data["qlove"]["value_error"][0.9] < 0.01

    # Rank errors of the deterministic baselines stay within eps = 0.02.
    for baseline in ("cmqs", "am"):
        for phi in QMONITOR:
            assert data[baseline]["rank_error"][phi] <= 0.02, (baseline, phi)

    # Space: QLOVE's observed footprint is far below CMQS/AM (paper: 3,340
    # vs 31,194 / 36,253).
    assert data["qlove"]["observed_space"] < data["cmqs"]["observed_space"] / 4
    assert data["qlove"]["observed_space"] < data["am"]["observed_space"] / 4
