"""Crash safety: SIGKILL mid-append never corrupts committed history.

A child process appends segments in a tight loop and is killed with
SIGKILL at a random point.  Reopening the store must (a) never serve a
torn segment, (b) keep every period the child reported as committed
queryable, and (c) leave the log physically truncated to intact records
so subsequent appends continue cleanly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.store import SegmentStore, query_range

from tests.store.conftest import make_spec

#: Child: append period segments forever, reporting each committed
#: period on stdout so the parent knows the durable lower bound.
_WRITER_SCRIPT = r"""
import sys
from repro.service.spec import MetricSpec
from repro.store import Segment, SegmentStore

directory = sys.argv[1]
spec = MetricSpec(
    name="rtt",
    quantiles=[0.5, 0.9, 0.99],
    window={"size": 1000, "period": 250},
    policy="exact",
)
policy = spec.build_policy()
policy.accumulate_batch([float(v) for v in range(250)])
policy.seal_subwindow()
state = policy.to_state()

store = SegmentStore(directory)
store.register(spec)
period = store.coverage("rtt")[1] if store.metrics() else 0
while True:
    store.append(
        Segment(
            metric="rtt",
            start_period=period,
            end_period=period + 1,
            count=250,
            state=state,
        )
    )
    sys.stdout.write("%d\n" % period)
    sys.stdout.flush()
    period += 1
"""


def _run_writer_and_kill(directory: str, *, min_committed: int, grace: float = 10.0):
    """Start the writer child, SIGKILL it mid-stream, return committed periods."""
    child = subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, directory],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    committed = []
    deadline = time.monotonic() + grace
    try:
        while len(committed) < min_committed:
            line = child.stdout.readline()
            if not line:
                raise AssertionError(
                    f"writer child exited early: {child.stderr.read().decode()}"
                )
            committed.append(int(line))
            if time.monotonic() > deadline:
                raise AssertionError("writer child too slow")
        # Kill while the child is actively appending — no flush, no atexit.
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10)
        child.stdout.close()
        child.stderr.close()
    return committed


@pytest.fixture(scope="module")
def killed_store(tmp_path_factory):
    """A store directory left behind by a SIGKILLed writer."""
    directory = str(tmp_path_factory.mktemp("crash") / "hist")
    committed = _run_writer_and_kill(directory, min_committed=20)
    return directory, committed


class TestKillMidAppend:
    def test_reopen_never_serves_torn_segments(self, killed_store):
        directory, committed = killed_store
        store = SegmentStore(directory)
        for segment in store.segments("rtt"):
            assert segment.count == 250
            assert segment.state["kind"] == "policy"

    def test_all_reported_periods_survive(self, killed_store):
        """Everything the child observed as committed must be queryable."""
        directory, committed = killed_store
        store = SegmentStore(directory)
        start, end = store.coverage("rtt")
        assert start == 0
        assert end >= committed[-1] + 1
        result = query_range(store, "rtt", 0, committed[-1] + 1)
        assert result["count"] == (committed[-1] + 1) * 250

    def test_log_truncated_to_intact_records(self, killed_store):
        directory, committed = killed_store
        size_before = os.path.getsize(os.path.join(directory, "rtt.seg"))
        store = SegmentStore(directory)
        size_after = os.path.getsize(os.path.join(directory, "rtt.seg"))
        assert size_after <= size_before
        # Whatever recovery dropped, the file now ends on a record boundary.
        with open(os.path.join(directory, "rtt.seg"), "rb") as handle:
            data = handle.read()
        assert data.endswith(b"\n")

    def test_writer_resumes_after_crash(self, killed_store):
        directory, committed = killed_store
        store = SegmentStore(directory)
        next_period = store.coverage("rtt")[1]
        store.close()
        # A resumed writer (same script) continues from the committed head.
        more = _run_writer_and_kill(directory, min_committed=5)
        assert more[0] == next_period
        reopened = SegmentStore(directory)
        assert reopened.coverage("rtt")[1] >= next_period + 5

    def test_index_rebuilt_purely_from_data_files(self, killed_store):
        """No sidecar index: delete the manifest stats, reopen, identical view."""
        directory, committed = killed_store
        first = SegmentStore(directory)
        view = [(s.start_period, s.end_period, s.count) for s in first.segments("rtt")]
        first.close()
        second = SegmentStore(directory)
        assert [
            (s.start_period, s.end_period, s.count) for s in second.segments("rtt")
        ] == view


class TestRepeatedCrashes:
    def test_three_kill_cycles_accumulate_cleanly(self, tmp_path):
        directory = str(tmp_path / "hist")
        total = []
        for _ in range(3):
            total.extend(_run_writer_and_kill(directory, min_committed=5))
        store = SegmentStore(directory)
        start, end = store.coverage("rtt")
        assert start == 0
        assert end >= total[-1] + 1
        # Periods are contiguous across all three crash generations.
        periods = [s.start_period for s in store.segments("rtt")]
        assert periods == list(range(len(periods)))
