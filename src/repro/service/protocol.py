"""The serving wire protocol: newline-delimited JSON over a stream socket.

One message per line, UTF-8, stdlib ``json`` — the format Chambers et
al.'s incremental-collector deployment shape calls for: long-lived
connections from many networked components into one bounded-memory
collector, with no dependency heavier than a TCP socket on either side.

Requests are objects with an ``"op"`` key; every request receives exactly
one response object with an ``"ok"`` boolean (``true`` plus op-specific
payload, or ``false`` plus a one-line ``"error"``).  The full op
vocabulary — ``observe``, ``snapshot``, ``results``, ``flush``,
``stats``, ``checkpoint``, ``shutdown``, ``ping`` — is documented in
``docs/serving.md``; both :class:`~repro.service.server.TelemetryServer`
and :class:`~repro.service.client.TelemetryClient` speak only through
the helpers here, so the framing lives in one place.
"""

from __future__ import annotations

import json
import socket
from typing import BinaryIO, Optional

#: Hard cap on one encoded message (guards the server against a stray
#: client streaming an unbounded line into memory).  64 MiB comfortably
#: holds an ``observe`` block of ~2M float64 values in decimal form.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or oversized."""


class FrameTooLarge(ProtocolError):
    """A frame above :data:`MAX_MESSAGE_BYTES`.

    Unlike an unparsable-but-complete line, an oversized frame leaves
    its unread tail in the stream — the receiver must close the
    connection, or the tail bytes would be misread as later frames.
    """


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-conversation."""


def encode_message(message: dict) -> bytes:
    """One protocol frame: compact JSON plus the terminating newline."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one frame to ``sock`` (blocking, all-or-nothing)."""
    sock.sendall(encode_message(message))


def recv_message(stream: BinaryIO) -> Optional[dict]:
    """Read one frame from a buffered socket file.

    Returns ``None`` on a clean EOF (peer closed between messages);
    raises :class:`ConnectionClosed` on EOF mid-line and
    :class:`ProtocolError` on an unparsable or oversized frame.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise FrameTooLarge(
            f"message exceeds {MAX_MESSAGE_BYTES} bytes; split observe "
            "batches into smaller blocks (closing the connection: the "
            "rest of the oversized line cannot be re-synchronised)"
        )
    if not line.endswith(b"\n"):
        raise ConnectionClosed("connection closed mid-message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON ({exc})") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def error_response(message: str) -> dict:
    """The uniform failure response."""
    return {"ok": False, "error": message}


def ok_response(**payload: object) -> dict:
    """The uniform success response."""
    response = {"ok": True}
    response.update(payload)
    return response
