"""Wire-protocol framing: newline-delimited JSON, errors, limits."""

import io
import json

import pytest

from repro.service import protocol


class TestEncode:
    def test_one_compact_json_line(self):
        frame = protocol.encode_message({"op": "ping", "n": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        assert json.loads(frame) == {"op": "ping", "n": 1}

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="JSON objects"):
            protocol.encode_message(["not", "an", "object"])

    def test_round_trips_through_recv(self):
        message = {"op": "observe", "metric": "rtt", "values": [1.5, 2.25], "seq": 3}
        stream = io.BytesIO(protocol.encode_message(message))
        assert protocol.recv_message(stream) == message

    def test_float_values_round_trip_exactly(self):
        values = [0.1, 1e-300, 12345.6789, 2.0**53 - 1]
        stream = io.BytesIO(
            protocol.encode_message({"op": "observe", "values": values})
        )
        assert protocol.recv_message(stream)["values"] == values

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_floats_rejected_with_actionable_error(self, bad):
        """json.dumps defaults would emit NaN/Infinity — tokens that are
        not valid JSON and break any non-python peer.  The encoder must
        refuse them up front and point at the fix."""
        with pytest.raises(protocol.ProtocolError, match="non-finite"):
            protocol.encode_message({"op": "observe", "values": [1.0, bad]})
        with pytest.raises(protocol.ProtocolError, match="binary"):
            protocol.encode_message({"estimate": bad})

    def test_finite_floats_still_encode(self):
        frame = protocol.encode_message({"values": [0.0, -0.0, 1e308, 5e-324]})
        assert json.loads(frame) == {"values": [0.0, -0.0, 1e308, 5e-324]}


class TestRecv:
    def test_clean_eof_returns_none(self):
        assert protocol.recv_message(io.BytesIO(b"")) is None

    def test_eof_mid_line_raises_connection_closed(self):
        stream = io.BytesIO(b'{"op": "ping"')  # no trailing newline
        with pytest.raises(protocol.ConnectionClosed, match="mid-message"):
            protocol.recv_message(stream)

    def test_invalid_json_raises_protocol_error(self):
        stream = io.BytesIO(b"{nope}\n")
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.recv_message(stream)

    def test_non_object_frame_raises_protocol_error(self):
        stream = io.BytesIO(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.recv_message(stream)

    def test_oversized_frame_raises_protocol_error(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        stream = io.BytesIO(b"x" * 200 + b"\n")
        with pytest.raises(protocol.ProtocolError, match="exceeds 64 bytes"):
            protocol.recv_message(stream)

    def test_exactly_at_cap_frame_is_valid(self, monkeypatch):
        """A frame whose encoded length (newline included) equals the cap
        is within the limit and must parse."""
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        frame = protocol.encode_message({"pad": "x" * 53})
        assert len(frame) == 64
        assert protocol.recv_message(io.BytesIO(frame)) == {"pad": "x" * 53}

    def test_one_over_cap_raises_frame_too_large(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        stream = io.BytesIO(b"x" * 64 + b"\n")
        with pytest.raises(protocol.FrameTooLarge, match="exceeds 64 bytes"):
            protocol.recv_message(stream)

    def test_short_read_stopping_at_cap_is_frame_too_large(self, monkeypatch):
        """Regression: a raw stream whose readline() short-reads exactly
        MAX_MESSAGE_BYTES of a longer line used to be misdiagnosed as
        ConnectionClosed ("closed mid-message"), leaving the unread tail
        to be misparsed as later frames."""

        class ShortReadStream:
            """readline() returns at most ``cap`` bytes per call, like a
            raw (unbuffered) IO object can."""

            def __init__(self, data: bytes, cap: int) -> None:
                self._inner = io.BytesIO(data)
                self._cap = cap

            def readline(self, limit: int = -1) -> bytes:
                capped = self._cap if limit < 0 else min(limit, self._cap)
                return self._inner.readline(capped)

            def read(self, n: int = -1) -> bytes:
                return self._inner.read(n)

        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        stream = ShortReadStream(b"y" * 200 + b"\n", cap=64)
        with pytest.raises(protocol.FrameTooLarge, match="exceeds 64 bytes"):
            protocol.recv_message(stream)

    def test_exact_cap_then_eof_is_connection_closed(self, monkeypatch):
        """The other arm of the ambiguity: exactly MAX bytes, no newline,
        and nothing more — the peer really did die mid-message."""
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        stream = io.BytesIO(b"y" * 64)
        with pytest.raises(protocol.ConnectionClosed, match="mid-message"):
            protocol.recv_message(stream)

    def test_multiple_messages_read_in_order(self):
        stream = io.BytesIO(
            protocol.encode_message({"op": "ping"})
            + protocol.encode_message({"op": "stats"})
        )
        assert protocol.recv_message(stream) == {"op": "ping"}
        assert protocol.recv_message(stream) == {"op": "stats"}
        assert protocol.recv_message(stream) is None


class TestResponses:
    def test_ok_response_merges_payload(self):
        assert protocol.ok_response(pong=True) == {"ok": True, "pong": True}

    def test_error_response_shape(self):
        assert protocol.error_response("nope") == {"ok": False, "error": "nope"}
