"""LoadGenerator determinism: reproducible events and partitioning.

The pinned contract: the event sequence and the block plan (boundaries
and sequence numbers) are pure functions of ``(dataset, events, seed,
block_size)`` — the connection count only re-routes blocks.  Same seed →
byte-identical event sequence across any connection count.
"""

import numpy as np
import pytest

from repro.service import LoadGenerator
from repro.workloads.registry import get_dataset


def generator(**overrides) -> LoadGenerator:
    params = dict(
        dataset="netmon",
        events=10_000,
        seed=42,
        connections=1,
        block_size=700,
    )
    params.update(overrides)
    # host/port are never dialled by plan()/event_sequence().
    return LoadGenerator("127.0.0.1", 1, **params)


class TestEventSequenceDeterminism:
    def test_same_seed_byte_identical_across_connection_counts(self):
        sequences = [
            generator(connections=n).event_sequence().tobytes()
            for n in (1, 2, 4, 7)
        ]
        assert len(set(sequences)) == 1

    def test_same_seed_byte_identical_across_runs(self):
        assert (
            generator().event_sequence().tobytes()
            == generator().event_sequence().tobytes()
        )

    def test_matches_the_offline_dataset_exactly(self):
        # The offline 'monitor' CLI streams get_dataset(...); the load
        # generator must feed the very same array.
        offline = get_dataset("netmon", 10_000, seed=42)
        assert np.array_equal(generator().event_sequence(), offline)

    def test_different_seeds_differ(self):
        assert (
            generator(seed=1).event_sequence().tobytes()
            != generator(seed=2).event_sequence().tobytes()
        )


class TestPlanDeterminism:
    def test_block_boundaries_and_seqs_independent_of_connections(self):
        plans = [generator(connections=n).plan() for n in (1, 3, 5)]
        for plan in plans:
            assert [(a.seq, a.start, a.stop) for a in plan] == [
                (a.seq, a.start, a.stop) for a in plans[0]
            ]

    def test_round_robin_routing(self):
        plan = generator(connections=3).plan()
        for assignment in plan:
            assert assignment.connection == assignment.seq % 3

    def test_plan_covers_the_stream_exactly_once(self):
        plan = generator().plan()
        assert plan[0].start == 0
        assert plan[-1].stop == 10_000
        for previous, current in zip(plan, plan[1:]):
            assert current.start == previous.stop
            assert current.seq == previous.seq + 1

    def test_offset_plan_renumbers_from_zero(self):
        plan = generator().plan(start_offset=2100)
        assert plan[0].seq == 0
        assert plan[0].start == 2100
        assert plan[-1].stop == 10_000

    def test_stop_after_truncates(self):
        plan = generator().plan(stop_after=1500)
        assert plan[-1].stop == 1500
        assert sum(a.stop - a.start for a in plan) == 1500

    def test_out_of_range_offset_rejected(self):
        with pytest.raises(ValueError, match="start_offset"):
            generator().plan(start_offset=20_000)
        with pytest.raises(ValueError, match="start_offset"):
            generator().plan(start_offset=-1)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="connections"):
            generator(connections=0)
        with pytest.raises(ValueError, match="block_size"):
            generator(block_size=0)
        with pytest.raises(ValueError, match="events"):
            generator(events=-1)
