"""Greenwald–Khanna epsilon-approximate quantile summary.

The deterministic rank-error summary underlying both sliding-window
baselines: CMQS (Lin et al. 2004) builds one GK summary per sub-window and
AM (Arasu & Manku 2004) arranges GK summaries in dyadic blocks.  The
summary keeps tuples ``(v, g, delta)`` where ``g`` is the number of
elements represented by ``v`` and ``delta`` bounds the uncertainty of
``v``'s rank; the invariant ``g + delta <= floor(2 * eps * n)`` yields a
deterministic eps*n rank-error guarantee.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import serde

#: State-format version written by :meth:`GKSummary.to_state`.
GK_STATE_VERSION = 1


class GKSummary:
    """epsilon-approximate quantile summary over an append-only stream.

    Two compression modes:

    - **threshold** (``capacity=None``): the classic GK rule — adjacent
      tuples merge while ``g_i + g_{i+1} + delta_{i+1} <= 2 eps n``.
      Worst-case-optimal space, but the top ``2 eps n`` elements may end
      up represented by a single tuple, which destroys tail *value*
      fidelity (precisely the weakness the QLOVE paper targets).
    - **capacity** (``capacity=k``): keep at most ``k`` tuples, merging
      the adjacent pair with the least combined weight when over.  This is
      the "capacity of each sub-window" formulation the paper uses for
      CMQS (Section 5.2) and retains a uniform tuple granularity across
      the whole value range, matching the paper's observed CMQS rank
      errors (far below the eps bound) and space.
    """

    __slots__ = (
        "epsilon",
        "_entries",
        "_keys",
        "_n",
        "_since_compress",
        "_compress_every",
        "_capacity",
        "_slack",
    )

    def __init__(self, epsilon: float, capacity: Optional[int] = None) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if capacity is not None and capacity < 4:
            raise ValueError("capacity must be at least 4")
        self.epsilon = epsilon
        # Parallel arrays: _keys for bisect, _entries rows are [v, g, delta].
        self._entries: List[List[float]] = []
        self._keys: List[float] = []
        self._n = 0
        self._since_compress = 0
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))
        self._capacity = capacity
        self._slack = max(16, capacity // 8) if capacity is not None else 0

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of elements summarised."""
        return self._n

    @property
    def tuple_count(self) -> int:
        """Number of (v, g, delta) tuples currently stored."""
        return len(self._entries)

    def space_variables(self) -> int:
        """Stored variables: three per tuple."""
        return 3 * len(self._entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, value: float, weight: int = 1) -> None:
        """Insert ``weight`` copies of ``value``.

        Weighted insertion is used when rebuilding higher-level blocks from
        child summaries (AM); the rank uncertainty it introduces is the
        child's own error, accounted for by the caller's epsilon budget.
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        idx = bisect_right(self._keys, value)
        if idx == 0 or idx == len(self._entries):
            delta = 0
        else:
            delta = max(0, int(2.0 * self.epsilon * self._n) - 1)
        self._keys.insert(idx, value)
        self._entries.insert(idx, [value, weight, delta])
        self._n += weight
        if self._capacity is not None:
            if len(self._entries) > self._capacity + self._slack:
                self._compress_to_capacity()
            return
        self._since_compress += 1
        if self._since_compress >= self._compress_every:
            self._compress()
            self._since_compress = 0

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined span fits the error budget."""
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = int(2.0 * self.epsilon * self._n)
        keys = self._keys
        # Sweep right-to-left over interior tuples; first and last tuples are
        # kept so min/max stay exact.
        i = len(entries) - 2
        while i >= 1:
            cur = entries[i]
            nxt = entries[i + 1]
            if cur[1] + nxt[1] + nxt[2] <= threshold:
                nxt[1] += cur[1]
                del entries[i]
                del keys[i]
            i -= 1

    def _compress_to_capacity(self) -> None:
        """Greedy sweeps merging least-weight adjacent pairs down to capacity.

        The first and last tuples (exact min/max) are never removed.  Each
        sweep sorts the interior pairs by combined weight and merges a
        non-overlapping subset, so compression is O(T log T) amortised over
        the slack between triggers.
        """
        entries = self._entries
        keys = self._keys
        target = self._capacity
        while len(entries) > target:
            budget = len(entries) - target
            order = sorted(
                range(1, len(entries) - 2),
                key=lambda i: entries[i][1] + entries[i + 1][1],
            )
            if not order:
                break
            involved: set[int] = set()
            victims: List[int] = []
            for i in order:
                if budget == 0:
                    break
                if i in involved or i + 1 in involved:
                    continue
                involved.add(i)
                involved.add(i + 1)
                victims.append(i)
                budget -= 1
            if not victims:
                break
            for i in sorted(victims, reverse=True):
                nxt = entries[i + 1]
                nxt[1] += entries[i][1]
                nxt[2] = max(nxt[2], entries[i][2])
                del entries[i]
                del keys[i]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        """Value whose rank is within ``epsilon * n`` of ``ceil(phi * n)``."""
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        if self._n == 0:
            raise ValueError("query() on an empty summary")
        rank = max(1, math.ceil(phi * self._n))
        budget = self.epsilon * self._n
        # Classic GK rule: a tuple whose rank interval is within eps*n of the
        # target always exists while the g + delta invariant holds.
        rmin = 0
        for value, g, delta in self._entries:
            rmin += g
            rmax = rmin + delta
            if rank - rmin <= budget and rmax - rank <= budget:
                return value
        # Weighted insertions (block rebuilds) can break the invariant; fall
        # back to the cumulative-weight rule, still within g + delta of rank.
        rmin = 0
        for value, g, _delta in self._entries:
            rmin += g
            if rmin >= rank:
                return value
        return self._entries[-1][0]

    def rank_bounds(self, value: float) -> Tuple[int, int]:
        """(rmin, rmax) bounds on the rank of ``value`` in the stream."""
        rmin = 0
        for v, g, delta in self._entries:
            if v > value:
                break
            rmin += g
            last_delta = delta
        else:
            return self._n, self._n
        if rmin == 0:
            return 0, 0
        return rmin, rmin + last_delta

    def weighted_items(self) -> List[Tuple[float, int]]:
        """``(value, weight)`` pairs whose weights sum to ``n``.

        This is the coreset view used to combine summaries across
        sub-windows: treating each tuple as ``g`` copies of ``v`` preserves
        ranks within each summary's epsilon bound.
        """
        return [(row[0], int(row[1])) for row in self._entries]

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot of the summary.

        Tuples are stored verbatim (``[v, g, delta]`` rows), so the
        restored summary compresses at the same points with the same
        merge decisions — bit-identical future behaviour.
        """
        state = serde.header("gk", GK_STATE_VERSION)
        state["epsilon"] = float(self.epsilon)
        state["capacity"] = None if self._capacity is None else int(self._capacity)
        state["n"] = int(self._n)
        state["since_compress"] = int(self._since_compress)
        state["entries"] = [
            [float(v), int(g), int(delta)] for v, g, delta in self._entries
        ]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "GKSummary":
        """Rebuild a summary from :meth:`to_state` output."""
        serde.check_state(state, "gk", GK_STATE_VERSION, "GK summary")
        serde.require_fields(
            state, ("epsilon", "capacity", "n", "since_compress", "entries"),
            "GK summary",
        )
        capacity = state["capacity"]
        summary = cls(
            float(state["epsilon"]),
            capacity=None if capacity is None else int(capacity),
        )
        summary._entries = [
            [float(v), int(g), int(delta)] for v, g, delta in state["entries"]
        ]
        summary._keys = [row[0] for row in summary._entries]
        summary._n = int(state["n"])
        summary._since_compress = int(state["since_compress"])
        return summary

    # ------------------------------------------------------------------
    # Theoretical bound
    # ------------------------------------------------------------------
    @staticmethod
    def analytical_tuples(epsilon: float, n: int) -> int:
        """GK's O((1/eps) log(eps n)) bound on retained tuples."""
        if n <= 0:
            return 0
        grown = max(2.0, 2.0 * epsilon * n)
        return int(math.ceil((11.0 / (2.0 * epsilon)) * math.log2(grown)))


def interpolated_rank_value(
    items: Sequence[Tuple[float, int]], rank: float
) -> float:
    """Value at ``rank`` in an ascending weighted item list, interpolated.

    A weighted item ``(v_i, g_i)`` stands for ``g_i`` elements spread
    between ``v_{i-1}`` and ``v_i``; interpolating inside the block removes
    the staircase bias of returning block tops, which matters enormously
    for value error in sparse heavy tails (a one-block overshoot there can
    be a 10x value overshoot).  With unit weights this reduces to exact
    order statistics.
    """
    if not items:
        raise ValueError("interpolated_rank_value() on empty items")
    running = 0
    previous_value: float = items[0][0]
    for value, weight in items:
        reached = running + weight
        if reached >= rank:
            if weight <= 0 or running == 0:
                return value
            fraction = (rank - running) / weight
            return previous_value + (value - previous_value) * fraction
        running = reached
        previous_value = value
    return items[-1][0]


def combined_quantile(
    summaries: Sequence[GKSummary], phis: Sequence[float]
) -> List[float]:
    """Answer quantiles over the union of several GK summaries.

    Implements the combine step of CMQS: the weighted items of all live
    sub-window sketches are merged by value and the target ranks are read
    off the cumulative weights (with in-block interpolation).  The
    combined rank error is bounded by the sum of the per-summary errors,
    i.e. ``sum_i eps_i * n_i``.
    """
    total = sum(s.n for s in summaries)
    if total == 0:
        raise ValueError("combined_quantile() over empty summaries")
    items: List[Tuple[float, int]] = []
    for summary in summaries:
        items.extend(summary.weighted_items())
    # Timsort exploits the per-summary sorted runs, so this is close to a
    # k-way merge in practice without generator overhead.
    items.sort()
    results: List[float] = []
    for phi in phis:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        rank = max(1, math.ceil(round(phi * total, 9)))
        results.append(interpolated_rank_value(items, rank))
    return results


def merge_summaries(
    summaries: Iterable[GKSummary],
    epsilon: float,
    capacity: Optional[int] = None,
) -> GKSummary:
    """Build one GK summary from several, by weighted reinsertion.

    Used by AM to construct a level-(l+1) block from two level-l blocks.
    The result's error is the construction epsilon plus the maximum child
    error (weighted points carry their own uncertainty).
    """
    merged = GKSummary(epsilon, capacity=capacity)
    items: List[Tuple[float, int]] = []
    for summary in summaries:
        items.extend(summary.weighted_items())
    items.sort(key=lambda pair: pair[0])
    for value, weight in items:
        merged.insert(value, weight)
    return merged
