"""A Pingmesh-like datacenter probe simulator.

The paper's motivating deployment (Guo et al., "Pingmesh" [14]) measures
RTTs between every pair of servers and streams them into the monitoring
system.  This module simulates that substrate end to end: a datacenter
topology (pods > racks > servers), a latency model whose locality tiers
and heavy tail match the NetMon shape, failure codes, and operational
incidents (congestion events that inflate latencies of a pod for a time
span — the "bursty traffic" QLOVE's sample-k merging targets).

The simulator emits :class:`~repro.streaming.event.Event` objects with
timestamps, ``source`` strings like ``"pod0/rack2/srv05->pod1/rack0/srv11"``
and non-zero ``error_code`` for dropped probes, so the paper's ``Qmonitor``
query runs against it unmodified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.streaming.event import Event

#: Error codes emitted by probes.
OK = 0
TIMEOUT = 1
UNREACHABLE = 2


@dataclass(frozen=True)
class DatacenterConfig:
    """Topology and latency model parameters.

    Latency tiers are lognormal medians in microseconds; the heavy tail is
    a Pareto mixture shared by all tiers (network queues misbehave the
    same way everywhere).
    """

    pods: int = 4
    racks_per_pod: int = 4
    servers_per_rack: int = 8
    intra_rack_median_us: float = 250.0
    intra_pod_median_us: float = 550.0
    cross_pod_median_us: float = 900.0
    jitter_sigma: float = 0.25
    tail_probability: float = 0.01
    tail_scale_us: float = 2_000.0
    tail_shape: float = 1.1
    tail_cap_us: float = 100_000.0
    drop_probability: float = 0.002
    timeout_us: float = 1_000_000.0

    def __post_init__(self) -> None:
        if min(self.pods, self.racks_per_pod, self.servers_per_rack) < 1:
            raise ValueError("topology dimensions must be positive")
        if self.pods * self.racks_per_pod * self.servers_per_rack < 2:
            raise ValueError("need at least two servers to probe")


@dataclass(frozen=True)
class Incident:
    """A congestion incident: probes touching ``pod`` slow down.

    Active for timestamps in ``[start, end)``; latencies of affected
    probes are multiplied by ``factor`` — the bursty-traffic generator.
    """

    pod: int
    start: float
    end: float
    factor: float = 10.0

    def affects(self, timestamp: float, src_pod: int, dst_pod: int) -> bool:
        """Whether a probe between the given pods is hit at ``timestamp``."""
        if not self.start <= timestamp < self.end:
            return False
        return self.pod in (src_pod, dst_pod)


class Datacenter:
    """Synthesises a stream of pingmesh probe results."""

    def __init__(
        self,
        config: Optional[DatacenterConfig] = None,
        incidents: Optional[List[Incident]] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.config = config if config is not None else DatacenterConfig()
        self.incidents = list(incidents) if incidents is not None else []
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def server_count(self) -> int:
        """Total servers in the datacenter."""
        cfg = self.config
        return cfg.pods * cfg.racks_per_pod * cfg.servers_per_rack

    def server_name(self, index: int) -> str:
        """Human-readable location of a server index."""
        cfg = self.config
        per_pod = cfg.racks_per_pod * cfg.servers_per_rack
        pod, rest = divmod(index, per_pod)
        rack, srv = divmod(rest, cfg.servers_per_rack)
        return f"pod{pod}/rack{rack}/srv{srv:02d}"

    def _locate(self, index: int) -> Tuple[int, int]:
        """(pod, rack) of a server index."""
        cfg = self.config
        per_pod = cfg.racks_per_pod * cfg.servers_per_rack
        pod, rest = divmod(index, per_pod)
        return pod, rest // cfg.servers_per_rack

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def _base_median(self, a: int, b: int) -> Tuple[float, int, int]:
        """Latency tier for a server pair; returns (median, pod_a, pod_b)."""
        cfg = self.config
        pod_a, rack_a = self._locate(a)
        pod_b, rack_b = self._locate(b)
        if pod_a != pod_b:
            return cfg.cross_pod_median_us, pod_a, pod_b
        if rack_a != rack_b:
            return cfg.intra_pod_median_us, pod_a, pod_b
        return cfg.intra_rack_median_us, pod_a, pod_b

    def _sample_rtt(self, timestamp: float, a: int, b: int) -> float:
        cfg = self.config
        median, pod_a, pod_b = self._base_median(a, b)
        rtt = float(
            self._rng.lognormal(mean=math.log(median), sigma=cfg.jitter_sigma)
        )
        if self._rng.random() < cfg.tail_probability:
            tail = cfg.tail_scale_us * (1.0 + float(self._rng.pareto(cfg.tail_shape)))
            rtt = min(max(rtt, tail), cfg.tail_cap_us)
        for incident in self.incidents:
            if incident.affects(timestamp, pod_a, pod_b):
                rtt = min(rtt * incident.factor, cfg.tail_cap_us)
        return float(round(rtt))

    # ------------------------------------------------------------------
    # Probe stream
    # ------------------------------------------------------------------
    def probe_stream(
        self,
        count: int,
        probes_per_second: float = 100_000.0,
        start: float = 0.0,
    ) -> Iterator[Event]:
        """Yield ``count`` probe events with increasing timestamps.

        Each event measures a uniformly random server pair; dropped probes
        carry a non-zero ``error_code`` and the timeout as their value,
        matching how real probers report losses.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        cfg = self.config
        dt = 1.0 / probes_per_second
        timestamp = start
        n = self.server_count
        for _ in range(count):
            a = int(self._rng.integers(0, n))
            b = int(self._rng.integers(0, n - 1))
            if b >= a:
                b += 1
            source = f"{self.server_name(a)}->{self.server_name(b)}"
            if self._rng.random() < cfg.drop_probability:
                code = TIMEOUT if self._rng.random() < 0.5 else UNREACHABLE
                yield Event(
                    timestamp=timestamp,
                    value=cfg.timeout_us,
                    error_code=code,
                    source=source,
                )
            else:
                yield Event(
                    timestamp=timestamp,
                    value=self._sample_rtt(timestamp, a, b),
                    error_code=OK,
                    source=source,
                )
            timestamp += dt

    def rtt_array(self, count: int, **kwargs: float) -> np.ndarray:
        """Values of ``count`` successful probes as a numpy array."""
        values = [
            event.value
            for event in self.probe_stream(count, **kwargs)
            if event.error_code == OK
        ]
        return np.asarray(values, dtype=np.float64)

    def probe_chunks(
        self,
        count: int,
        chunk_size: int = 65_536,
        probes_per_second: float = 100_000.0,
        start: float = 0.0,
    ) -> Iterator["Chunk"]:
        """Probe measurements as timestamped chunks (batched ingestion).

        Emits the same probes as :meth:`probe_stream` — values, timestamps
        and error codes packed into arrays of ``chunk_size`` — so callers
        can drop failed probes with one vectorised mask
        (``chunk.compress(chunk.error_codes == 0)``) instead of a
        per-event predicate before handing chunks to the engine.
        """
        from repro.streaming.sources import Chunk

        values: list[float] = []
        timestamps: list[float] = []
        codes: list[int] = []
        for event in self.probe_stream(
            count, probes_per_second=probes_per_second, start=start
        ):
            values.append(event.value)
            timestamps.append(event.timestamp)
            codes.append(event.error_code)
            if len(values) == chunk_size:
                yield Chunk(
                    values=np.asarray(values),
                    timestamps=np.asarray(timestamps),
                    error_codes=np.asarray(codes, dtype=np.int64),
                )
                values, timestamps, codes = [], [], []
        if values:
            yield Chunk(
                values=np.asarray(values),
                timestamps=np.asarray(timestamps),
                error_codes=np.asarray(codes, dtype=np.int64),
            )
