"""Benchmark harness configuration.

Every paper table/figure has one module here.  Each benchmark runs the
corresponding experiment from :mod:`repro.evalkit.experiments` once
(``benchmark.pedantic`` — the experiments are seconds-long composites, not
microseconds kernels), prints the regenerated table, and asserts the
paper's qualitative shape (who wins, direction of trends).  Scales are
reduced from paper size so the full suite stays in minutes; run
``python -m repro <name> --scale 1.0`` for paper-size numbers.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment once under pytest-benchmark and print its report."""

    def _run(name, **kwargs):
        from repro.evalkit.experiments import get_experiment

        result = benchmark.pedantic(
            lambda: get_experiment(name)(**kwargs), rounds=1, iterations=1
        )
        print()
        print(result.render())
        return result

    return _run
