"""Sliding-window quantile policies: Exact and the four baselines.

Every algorithm compared in Section 5 implements the same
:class:`~repro.sketches.base.QuantilePolicy` lifecycle, driven by the
streaming engine at sub-window granularity:

- :class:`~repro.sketches.exact.ExactPolicy` — exact quantiles via a
  frequency map with per-element deaccumulation (the paper's "Exact").
- :class:`~repro.sketches.cmqs.CMQSPolicy` — Lin et al. 2004, a GK summary
  per sub-window, combined at query time ("CMQS").
- :class:`~repro.sketches.am.AMPolicy` — Arasu & Manku 2004, dyadic blocks
  of GK summaries ("AM").
- :class:`~repro.sketches.random_sketch.RandomPolicy` — sampling-based
  sketch in the spirit of Luo et al. 2016 (KLL-style compactors,
  "Random").
- :class:`~repro.sketches.moments.MomentPolicy` — mergeable moment-based
  sketch ("Moment").

QLOVE itself lives in :mod:`repro.core` and registers into the same
factory, so experiments can instantiate any policy by name via
:func:`make_policy`.
"""

from repro.sketches.am import AMPolicy
from repro.sketches.base import PolicyOperator, QuantilePolicy
from repro.sketches.cmqs import CMQSPolicy
from repro.sketches.exact import ExactPolicy
from repro.sketches.gk import GKSummary
from repro.sketches.kll import KLLSketch
from repro.sketches.moments import MomentPolicy, MomentSolver
from repro.sketches.random_sketch import RandomPolicy
from repro.sketches.registry import (
    available_policies,
    get_policy_factory,
    make_policy,
    policy_from_state,
    register_policy,
)

__all__ = [
    "AMPolicy",
    "CMQSPolicy",
    "ExactPolicy",
    "GKSummary",
    "KLLSketch",
    "MomentPolicy",
    "MomentSolver",
    "PolicyOperator",
    "QuantilePolicy",
    "RandomPolicy",
    "available_policies",
    "get_policy_factory",
    "make_policy",
    "policy_from_state",
    "register_policy",
]
