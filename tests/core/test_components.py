"""Unit tests for QLOVE's internal components: summary, level2, fewk, burst."""

import numpy as np
import pytest

from repro.core import (
    BurstDetector,
    FewKConfig,
    Level2Aggregator,
    Quantizer,
    SubWindowBuilder,
)
from repro.core.config import exact_tail_size
from repro.core.fewk import FewKMerger
from repro.core.summary import SubWindowSummary
from repro.streaming import CountWindow

WINDOW = CountWindow(size=10000, period=1000)


def build_summary(values, phis=(0.5,), fewk=None, window=WINDOW):
    builder = SubWindowBuilder(phis, window, Quantizer(None), fewk)
    for v in values:
        builder.add(v)
    return builder.seal()


class TestSubWindowBuilder:
    def test_seal_computes_exact_quantiles(self):
        values = [float(v) for v in range(1, 101)]
        summary = build_summary(values, phis=(0.5, 0.9))
        assert summary.count == 100
        assert summary.quantiles[0.5] == 50.0
        assert summary.quantiles[0.9] == 90.0

    def test_seal_resets_builder(self):
        builder = SubWindowBuilder((0.5,), WINDOW, Quantizer(None), None)
        builder.add(1.0)
        builder.seal()
        assert builder.count == 0

    def test_empty_seal(self):
        builder = SubWindowBuilder((0.5,), WINDOW, Quantizer(None), None)
        summary = builder.seal()
        assert summary.count == 0
        assert summary.quantiles == {}

    def test_quantization_applied(self):
        builder = SubWindowBuilder((0.5,), WINDOW, Quantizer(3), None)
        builder.add(74265.0)
        summary = builder.seal()
        assert summary.quantiles[0.5] == 74200.0

    def test_topk_tail_collected(self):
        fewk = FewKConfig(topk_fraction=0.5)  # kt = 0.5 * tail size
        values = [float(v) for v in range(1, 1001)]
        summary = build_summary(values, phis=(0.999,), fewk=fewk)
        # Tail size = 10000 - ceil(0.999 * 10000) + 1 = 11; kt = ceil(5.5) = 6.
        kt = fewk.resolve_kt(0.999, WINDOW)
        assert kt == 6
        assert summary.topk[0.999] == (1000.0, 999.0, 998.0, 997.0, 996.0, 995.0)

    def test_sample_tail_interval(self):
        fewk = FewKConfig(samplek_fraction=0.5, burst_detection=False)
        values = [float(v) for v in range(1, 1001)]
        summary = build_summary(values, phis=(0.999,), fewk=fewk)
        # Tail population = 11 largest (1000..990); ks = 6 -> block-end
        # interval sampling picks 0-based ranks [1, 3, 5, 7, 9, 10].
        assert summary.samples[0.999] == (999.0, 997.0, 995.0, 993.0, 991.0, 990.0)
        assert summary.sample_weights[0.999] == (2, 2, 2, 2, 2, 1)

    def test_space_variables(self):
        builder = SubWindowBuilder((0.5,), WINDOW, Quantizer(None), None)
        for v in [1.0, 1.0, 2.0]:
            builder.add(v)
        assert builder.space_variables() == 4  # 2 unique x {value, count}


class TestLevel2:
    def test_mean_aggregation(self):
        agg = Level2Aggregator([0.5])
        for q in (10.0, 20.0, 30.0):
            agg.accumulate(SubWindowSummary(count=1, quantiles={0.5: q}))
        assert agg.result(0.5) == 20.0

    def test_deaccumulate(self):
        agg = Level2Aggregator([0.5])
        s1 = SubWindowSummary(count=1, quantiles={0.5: 10.0})
        s2 = SubWindowSummary(count=1, quantiles={0.5: 30.0})
        agg.accumulate(s1)
        agg.accumulate(s2)
        agg.deaccumulate(s1)
        assert agg.result(0.5) == 30.0

    def test_empty_summaries_skipped(self):
        agg = Level2Aggregator([0.5])
        agg.accumulate(SubWindowSummary(count=1, quantiles={0.5: 10.0}))
        agg.accumulate(SubWindowSummary(count=0, quantiles={}))
        assert agg.result(0.5) == 10.0
        assert agg.live_subwindows(0.5) == 1

    def test_no_data_is_nan(self):
        agg = Level2Aggregator([0.5])
        assert np.isnan(agg.result(0.5))

    def test_space(self):
        assert Level2Aggregator([0.5, 0.9, 0.99]).space_variables() == 6


class TestExactTailSize:
    def test_paper_example(self):
        # The paper quotes 132 entries for its 131,072-element window at
        # phi = 0.999 (Section 5.3).
        assert exact_tail_size(0.999, 131072) == 132

    def test_integer_phi_n_needs_one_extra(self):
        # phi * N integer: rank ceil(phi N) from the bottom is the
        # (N(1-phi) + 1)-th largest.
        assert exact_tail_size(0.999, 16000) == 17
        assert exact_tail_size(0.5, 10) == 6

    def test_minimum_one(self):
        assert exact_tail_size(0.9999999, 100) == 1

    def test_invalid_window(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            exact_tail_size(0.5, 0)


class TestFewKMerger:
    def make_summaries(
        self, tails_per_subwindow, phi=0.999, count=1000, weights=None
    ):
        summaries = []
        for tail in tails_per_subwindow:
            ordered = tuple(sorted(tail, reverse=True))
            tail_weights = weights if weights is not None else (1,) * len(ordered)
            summaries.append(
                SubWindowSummary(
                    count=count,
                    quantiles={phi: 1.0},
                    topk={phi: ordered},
                    samples={phi: ordered},
                    sample_weights={phi: tuple(tail_weights)},
                )
            )
        return summaries

    def test_topk_estimate_even_spread(self):
        # E4 of Figure 3: the global largest values spread evenly; even a
        # small k per sub-window recovers a near-exact answer.
        window = CountWindow(size=10000, period=1000)
        merger = FewKMerger(0.999, window, FewKConfig(topk_fraction=0.1))
        tails = [[1000.0 - i] for i in range(10)]  # one top value each
        summaries = self.make_summaries(tails)
        estimate = merger.topk_estimate(summaries)
        # Tail rank = 11 but only 10 values retained -> the smallest, 991.
        assert estimate == 991.0

    def test_topk_estimate_bursty_concentration(self):
        # E1 of Figure 3: all largest values in one sub-window; k=1 per
        # sub-window misses them and underestimates.
        window = CountWindow(size=10000, period=1000)
        merger = FewKMerger(0.999, window, FewKConfig(topk_fraction=0.1))
        tails = [[1000.0]] + [[10.0]] * 9
        summaries = self.make_summaries(tails)
        estimate = merger.topk_estimate(summaries)
        assert estimate == 10.0  # the last retained value

    def test_samplek_rank_scaling(self):
        window = CountWindow(size=10000, period=1000)
        config = FewKConfig(samplek_fraction=0.5, burst_detection=False)
        merger = FewKMerger(0.999, window, config)
        assert merger.ks == 6  # ceil(0.5 * tail size 11)
        tails = [[100.0, 90.0, 80.0, 70.0, 60.0, 50.0]] * 10
        # Weights for population 11 sampled at 6: [2, 2, 2, 2, 2, 1].
        summaries = self.make_summaries(tails, count=1000, weights=(2, 2, 2, 2, 2, 1))
        # Target tail rank = 11; merged scan covers 2 per 100.0-sample, so
        # the 6th copy of 100.0 reaches 12 >= 11.
        assert merger.samplek_estimate(summaries) == 100.0

    def test_estimate_prefers_samplek_on_burst(self):
        window = CountWindow(size=10000, period=1000)
        config = FewKConfig(topk_fraction=0.5, samplek_fraction=0.5)
        merger = FewKMerger(0.999, window, config)
        merger._burst_flags.append(True)
        tails = [[50.0] * 5] * 10
        summaries = self.make_summaries(tails)
        merger.estimate(summaries, level2_value=1.0)
        assert merger.last_source == "samplek"

    def test_estimate_falls_back_to_level2(self):
        window = CountWindow(size=10000, period=5000)  # P(1-phi)=5 < 10
        config = FewKConfig(burst_detection=False)
        merger = FewKMerger(0.999, window, config)
        value = merger.estimate([], level2_value=42.0)
        assert value == 42.0
        assert merger.last_source == "level2"


class TestBurstDetector:
    def test_first_observation_never_bursty(self):
        detector = BurstDetector()
        assert detector.observe([100.0, 90.0, 80.0, 70.0]) is False

    def test_detects_shift(self):
        detector = BurstDetector(alpha=0.05)
        calm = [float(100 + i) for i in range(15)]
        burst = [float(1000 + i) for i in range(15)]
        detector.observe(calm)
        assert detector.observe(burst) is True

    def test_no_false_positive_on_steady_traffic(self):
        rng = np.random.default_rng(3)
        detector = BurstDetector(alpha=0.01)
        flags = []
        previous = rng.normal(100, 10, size=20)
        detector.observe(previous)
        for _ in range(50):
            current = rng.normal(100, 10, size=20)
            flags.append(detector.observe(current))
        assert sum(flags) <= 3

    def test_under_sampled_not_flagged(self):
        detector = BurstDetector(min_samples=3)
        detector.observe([1.0, 2.0, 3.0])
        assert detector.observe([100.0]) is False

    def test_reset(self):
        detector = BurstDetector()
        detector.observe([1.0, 2.0, 3.0, 4.0])
        detector.reset()
        assert detector.observe([100.0, 200.0, 300.0, 400.0]) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstDetector(alpha=0.0)
        with pytest.raises(ValueError):
            BurstDetector(min_samples=1)
