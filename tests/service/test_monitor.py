"""Monitor facade: engine parity, callbacks, fleet merging, error paths."""

import numpy as np
import pytest

from repro.service import MetricSpec, Monitor
from repro.streaming import CountWindow, ExecutionPlan, Query, StreamEngine

PHIS = [0.5, 0.9, 0.99]
WINDOW = {"size": 400, "period": 100}
PERIOD = 100


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(3)
    return rng.lognormal(mean=6.5, sigma=0.4, size=3_000)


def make_spec(policy="qlove", name="rtt", **params):
    return MetricSpec.from_dict(
        {
            "name": name,
            "quantiles": PHIS,
            "window": dict(WINDOW),
            "policy": policy,
            "policy_params": params,
        }
    )


# ----------------------------------------------------------------------
# Acceptance: facade round-trip equals the hand-assembled pipeline
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["qlove", "exact"])
def test_observe_batch_matches_hand_assembled_pipeline(policy, values):
    spec = make_spec(policy)
    monitor = Monitor()
    monitor.register(spec)
    monitor.observe_batch("rtt", values)

    reference = StreamEngine().execute_to_list(
        spec.build_query(values), ExecutionPlan(mode="batched")
    )
    assert monitor.results("rtt") == reference
    assert monitor.snapshot()["rtt"] == reference[-1].result


@pytest.mark.parametrize("policy", ["qlove", "exact"])
def test_per_event_observe_matches_batch(policy, values):
    spec = make_spec(policy)
    per_event, batched = Monitor(), Monitor()
    per_event.register(spec)
    batched.register(spec)
    for value in values:
        per_event.observe("rtt", value)
    batched.observe_batch("rtt", values)
    assert per_event.results("rtt") == batched.results("rtt")


def test_observe_batch_boundary_straddling_blocks(values):
    """Arbitrary block sizes seal at the same period boundaries."""
    spec = make_spec("exact")
    whole, blocks = Monitor(), Monitor()
    whole.register(spec)
    blocks.register(spec)
    whole.observe_batch("rtt", values)
    for start in range(0, len(values), 137):
        blocks.observe_batch("rtt", values[start : start + 137])
    assert whole.results("rtt") == blocks.results("rtt")


# ----------------------------------------------------------------------
# Multi-metric sessions
# ----------------------------------------------------------------------
def test_metrics_are_independent(values):
    monitor = Monitor()
    monitor.register(make_spec("qlove", name="a"))
    monitor.register(make_spec("exact", name="b"))
    monitor.observe_batch("a", values)
    # metric b saw nothing: no results, empty snapshot slot
    assert monitor.results("b") == []
    snapshot = monitor.snapshot()
    assert snapshot["b"] is None and snapshot["a"] is not None
    assert monitor.metrics() == ["a", "b"]
    assert len(monitor) == 2 and "a" in monitor


def test_register_accepts_dict_and_returns_canonical_spec():
    monitor = Monitor()
    spec = monitor.register(
        {"name": "m", "quantiles": [0.9, 0.5], "window": dict(WINDOW)}
    )
    assert isinstance(spec, MetricSpec)
    assert spec.quantiles == (0.5, 0.9)


def test_callbacks_fire_once_per_emitted_period(values):
    spec = make_spec("exact")
    seen = []
    monitor = Monitor()
    monitor.register(spec, on_result=lambda name, result: seen.append((name, result)))
    late = []
    monitor.on_result("rtt", lambda name, result: late.append(result))
    monitor.observe_batch("rtt", values)
    results = monitor.results("rtt")
    assert [r for _, r in seen] == results
    assert all(name == "rtt" for name, _ in seen)
    assert late == results


def test_emit_partial_matches_engine(values):
    spec = make_spec("exact")
    monitor = Monitor(emit_partial=True)
    monitor.register(spec)
    monitor.observe_batch("rtt", values)
    reference = StreamEngine(emit_partial=True).execute_to_list(
        spec.build_query(values), ExecutionPlan(mode="batched")
    )
    assert monitor.results("rtt") == reference


def test_space_report_accounts_elements_and_evaluations(values):
    monitor = Monitor()
    monitor.register(make_spec("qlove"))
    monitor.observe_batch("rtt", values)
    report = monitor.space_report()["rtt"]
    assert report["seen"] == len(values)
    assert report["evaluations"] == len(monitor.results("rtt"))
    assert report["peak_space"] >= report["space"] >= 0
    assert report["policy"] == "qlove"


# ----------------------------------------------------------------------
# Fleet merging
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["qlove", "exact"])
def test_sharded_monitors_merge_bit_identically(policy, values):
    spec = make_spec(policy)
    usable = len(values) - len(values) % PERIOD
    stream = values[:usable]

    single = Monitor()
    single.register(spec)
    single.observe_batch("rtt", stream)

    master = Monitor()
    master.register(spec)
    nodes = [Monitor() for _ in range(4)]
    for node in nodes:
        node.register(spec)
    for start in range(0, usable, PERIOD):
        block = stream[start : start + PERIOD]
        for k, node in enumerate(nodes):
            node.observe_batch("rtt", block[k::4])
        for node in nodes:
            master.merge(node)
            node.reset()

    assert master.results("rtt") == single.results("rtt")


def test_merged_monitor_matches_sharded_engine(values):
    spec = make_spec("qlove")
    usable = len(values) - len(values) % PERIOD
    stream = values[:usable]

    master = Monitor()
    master.register(spec)
    nodes = [Monitor() for _ in range(4)]
    for node in nodes:
        node.register(spec)
    for start in range(0, usable, PERIOD):
        block = stream[start : start + PERIOD]
        for k, node in enumerate(nodes):
            node.observe_batch("rtt", block[k::4])
        for node in nodes:
            master.merge(node)
            node.reset()

    engine_results = StreamEngine().execute_to_list(
        Query(stream).windowed_by(spec.window),
        ExecutionPlan(
            mode="sharded", n_shards=4, policy_factory=spec.policy_factory()
        ),
    )
    assert master.results("rtt") == engine_results


def test_reset_restores_fresh_behaviour(values):
    spec = make_spec("exact")
    monitor = Monitor()
    monitor.register(spec)
    monitor.observe_batch("rtt", values)
    first = monitor.results("rtt")
    monitor.reset()
    assert monitor.results("rtt") == []
    assert monitor.snapshot()["rtt"] is None
    monitor.observe_batch("rtt", values)
    assert monitor.results("rtt") == first


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_duplicate_registration_rejected():
    monitor = Monitor()
    monitor.register(make_spec())
    with pytest.raises(ValueError, match="already registered"):
        monitor.register(make_spec())


def test_register_rejects_non_spec():
    with pytest.raises(TypeError, match="MetricSpec"):
        Monitor().register(42)


def test_unknown_metric_is_actionable():
    monitor = Monitor()
    monitor.register(make_spec(name="known"))
    with pytest.raises(KeyError, match="unknown metric 'nope'.*known"):
        monitor.observe("nope", 1.0)
    with pytest.raises(KeyError):
        monitor.observe_batch("nope", np.ones(3))
    with pytest.raises(KeyError):
        monitor.results("nope")


def test_merge_requires_matching_registration(values):
    a, b = Monitor(), Monitor()
    a.register(make_spec(name="common"))
    b.register(make_spec(name="common"))
    b.register(make_spec(name="extra"))
    with pytest.raises(ValueError, match="extra"):
        a.merge(b)
    with pytest.raises(TypeError):
        a.merge(object())


def test_merge_rejects_mismatched_specs():
    a, b = Monitor(), Monitor()
    a.register(make_spec())
    b.register(
        MetricSpec(
            name="rtt", quantiles=PHIS, window={"size": 800, "period": 100}
        )
    )
    with pytest.raises(ValueError, match="specs differ"):
        a.merge(b)


def test_observe_batch_rejects_2d_arrays():
    monitor = Monitor()
    monitor.register(make_spec())
    with pytest.raises(ValueError, match="1-D"):
        monitor.observe_batch("rtt", np.ones((2, 2)))
