"""Tests for events and window specifications."""

import pytest

from repro.streaming import CountWindow, Event, TimeWindow


class TestEvent:
    def test_fields(self):
        e = Event(timestamp=1.5, value=42.0, error_code=7, source="s1")
        assert e.timestamp == 1.5
        assert e.value == 42.0
        assert e.error_code == 7
        assert e.source == "s1"

    def test_defaults(self):
        e = Event(timestamp=0.0, value=1.0)
        assert e.error_code == 0
        assert e.source is None
        assert not e.is_error

    def test_is_error(self):
        assert Event(0.0, 1.0, error_code=3).is_error

    def test_ordering_by_timestamp(self):
        a = Event(1.0, 100.0)
        b = Event(2.0, 1.0)
        assert a < b

    def test_metadata_not_compared(self):
        a = Event(1.0, 2.0, error_code=1, source="x")
        b = Event(1.0, 2.0, error_code=9, source="y")
        assert a == b

    def test_with_value(self):
        e = Event(3.0, 10.0, error_code=2, source="s")
        projected = e.with_value(99.0)
        assert projected.value == 99.0
        assert projected.timestamp == 3.0
        assert projected.error_code == 2
        assert e.value == 10.0  # original untouched

    def test_frozen(self):
        e = Event(0.0, 1.0)
        with pytest.raises(AttributeError):
            e.value = 2.0  # type: ignore[misc]


class TestCountWindow:
    def test_sliding_properties(self):
        w = CountWindow(size=100, period=10)
        assert w.is_sliding
        assert not w.is_tumbling
        assert w.subwindow_count == 10

    def test_tumbling(self):
        w = CountWindow.tumbling(50)
        assert w.is_tumbling
        assert w.subwindow_count == 1

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            CountWindow(size=10, period=0)

    def test_rejects_size_below_period(self):
        with pytest.raises(ValueError):
            CountWindow(size=5, period=10)

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            CountWindow(size=100, period=30)

    def test_frozen(self):
        w = CountWindow(10, 5)
        with pytest.raises(AttributeError):
            w.size = 20  # type: ignore[misc]


class TestTimeWindow:
    def test_sliding_properties(self):
        w = TimeWindow(size=60.0, period=10.0)
        assert w.is_sliding
        assert w.subwindow_count == 6

    def test_tumbling(self):
        w = TimeWindow.tumbling(5.0)
        assert w.is_tumbling
        assert w.subwindow_count == 1

    def test_subwindow_index(self):
        w = TimeWindow(size=60.0, period=10.0)
        assert w.subwindow_index(0.0) == 0
        assert w.subwindow_index(9.999) == 0
        assert w.subwindow_index(10.0) == 1
        assert w.subwindow_index(25.0) == 2

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            TimeWindow(size=25.0, period=10.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            TimeWindow(size=10.0, period=0.0)
