"""Command-line entry point: experiments and the monitoring facade.

Usage::

    python -m repro table1 --scale 0.25
    python -m repro figure5 --seed 7
    python -m repro all --scale 0.125
    python -m repro monitor specs.json --dataset netmon --events 200000
    qlove-bench table4            # console-script alias

``--scale`` multiplies the paper's window/period sizes (1.0 = paper
size); smaller scales run proportionally faster with the same shapes.

The ``monitor`` subcommand loads a JSON metric-spec file (a list of
:class:`~repro.service.spec.MetricSpec` dicts, or ``{"metrics": [...]}``),
streams a named workload through the :class:`~repro.service.monitor.Monitor`
facade, and prints one quantile report line per evaluated period.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.evalkit.experiments import available_experiments, get_experiment


def build_parser() -> argparse.ArgumentParser:
    """The experiment-runner argument schema."""
    parser = argparse.ArgumentParser(
        prog="qlove-bench",
        description=(
            "Regenerate the QLOVE paper's tables and figures, or run the "
            "'monitor' subcommand to stream a workload through the Monitor "
            "facade (see 'qlove-bench monitor --help')."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on the paper's window/period sizes (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    return parser


def build_monitor_parser() -> argparse.ArgumentParser:
    """The ``monitor`` subcommand's argument schema."""
    from repro.workloads.registry import available_datasets

    parser = argparse.ArgumentParser(
        prog="qlove-bench monitor",
        description=(
            "Stream a named workload through the Monitor facade and print "
            "per-period quantile reports for every metric in a JSON spec file."
        ),
    )
    parser.add_argument(
        "specs",
        help=(
            "path to a JSON metric-spec file: a list of MetricSpec dicts or "
            "an object with a 'metrics' list"
        ),
    )
    parser.add_argument(
        "--dataset",
        default="netmon",
        choices=available_datasets(),
        help="workload streamed into every registered metric (default netmon)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200_000,
        help="stream length in elements (default 200000)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=65_536,
        help="batched-ingest block size (default 65536)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "save the full monitor state (specs + per-metric operator "
            "state) to this JSON file after streaming"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "restore the monitor from a --checkpoint file and continue the "
            "dataset from the first element the checkpoint has not seen; "
            "the final report equals an uninterrupted run's"
        ),
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        metavar="N",
        default=None,
        help=(
            "stop streaming after N elements (of the full --events dataset) "
            "— simulates a crash mid-stream; combine with --checkpoint, then "
            "--resume with the same --events to finish the identical stream"
        ),
    )
    return parser


def run_monitor(argv: List[str]) -> int:
    """Execute the ``monitor`` subcommand."""
    from repro.service import Monitor, load_specs
    from repro.workloads.registry import get_dataset

    args = build_monitor_parser().parse_args(argv)
    specs = load_specs(args.specs)

    def report(name: str, result) -> None:
        quantiles = "  ".join(
            f"Q{phi:g}={estimate:,.1f}" for phi, estimate in result.result.items()
        )
        print(
            f"{name:<16} eval={result.index:<4} n={result.window_count:<9,} "
            f"end={int(result.end):<10,} {quantiles}"
        )

    skip = 0
    if args.resume is not None:
        monitor = Monitor.load(args.resume)
        # Compare canonical serialised forms: flat QLOVE params and their
        # resolved config serialise identically, so equivalent specs match
        # however they were written.
        loaded = {spec.name: spec.to_dict() for spec in monitor.specs()}
        wanted = {spec.name: spec.to_dict() for spec in specs}
        if loaded != wanted:
            raise SystemExit(
                f"--resume {args.resume}: checkpointed metrics "
                f"{sorted(loaded)} do not match the spec file's "
                f"{sorted(wanted)} (or their configurations differ); pass "
                "the same spec file the checkpoint was created with "
                "(spec/state mismatch)"
            )
        seen = {name: monitor._channels[name].seen for name in monitor.metrics()}
        skip = min(seen.values()) if seen else 0
        if len(set(seen.values())) > 1:
            raise SystemExit(
                f"--resume {args.resume}: metrics saw different element "
                f"counts ({seen}); this checkpoint was not produced by the "
                "monitor CLI's uniform fan-out and cannot be resumed here"
            )
        for name in monitor.metrics():
            monitor.on_result(name, report)
        print(
            f"resumed {len(monitor)} metric(s) from {args.resume!r} "
            f"({skip:,} elements already ingested)"
        )
    else:
        monitor = Monitor()
        for spec in specs:
            monitor.register(spec, on_result=report)
            print(
                f"registered {spec.name!r}: policy={spec.policy} "
                f"window={spec.window.size:,}/{spec.window.period:,} "
                f"quantiles={list(spec.quantiles)}"
            )

    values = get_dataset(args.dataset, args.events, seed=args.seed)
    if args.stop_after is not None:
        if args.stop_after < skip:
            raise SystemExit(
                f"--stop-after {args.stop_after} lies before the resumed "
                f"position ({skip:,} elements already ingested)"
            )
        values = values[: args.stop_after]
    fresh = values[skip:]
    print(
        f"\nstreaming {len(fresh):,} '{args.dataset}' elements "
        f"(seed {args.seed}) into {len(monitor)} metric(s)\n"
    )
    started = time.perf_counter()
    for offset in range(0, len(fresh), args.chunk_size):
        block = fresh[offset : offset + args.chunk_size]
        for name in monitor.metrics():
            monitor.observe_batch(name, block)
    elapsed = time.perf_counter() - started
    if args.checkpoint is not None:
        monitor.save(args.checkpoint)
        print(f"checkpoint saved to {args.checkpoint!r}")

    print("\nfinal snapshot:")
    for name, estimates in monitor.snapshot().items():
        if estimates is None:
            print(f"  {name}: (no full window yet)")
        else:
            rendered = "  ".join(
                f"Q{phi:g}={estimate:,.1f}" for phi, estimate in estimates.items()
            )
            print(f"  {name}: {rendered}")
    for name, accounting in monitor.space_report().items():
        print(
            f"  {name}: {accounting['evaluations']} evaluations, "
            f"{accounting['peak_space']:,} peak state variables"
        )
    rate = len(fresh) * len(monitor) / elapsed / 1e6 if elapsed > 0 else float("inf")
    print(f"\n[{rate:.1f} M ev/s across metrics, {elapsed:.1f}s]")
    return 0


def run_one(name: str, scale: float, seed: int, markdown: bool) -> None:
    """Execute one experiment and print its report."""
    runner = get_experiment(name)
    started = time.perf_counter()
    result = runner(scale=scale, seed=seed)
    elapsed = time.perf_counter() - started
    if markdown:
        print(f"\n## {result.name}\n")
        if result.notes:
            print(result.notes + "\n")
        for table in result.tables:
            print(table.render_markdown())
            print()
    else:
        print()
        print(result.render())
    print(f"\n[{name} completed in {elapsed:.1f}s]")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "monitor":
        return run_monitor(argv[1:])
    args = build_parser().parse_args(argv)
    names = available_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, scale=args.scale, seed=args.seed, markdown=args.markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
