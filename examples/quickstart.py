"""Quickstart: the paper's Qmonitor query on a synthetic NetMon stream.

Builds the monitoring query of Section 5.1 —

    Qmonitor = Stream
        .Window(windowSize, period)
        .Where(e => e.errorCode != 0 is inverted here: we keep OK probes)
        .Aggregate(c => c.Quantile(0.5, 0.9, 0.99, 0.999))

— runs it with the QLOVE policy, cross-checks the final evaluation
against numpy-exact quantiles, and re-runs the same query on the batched
ingestion fast path to show it returns identical results.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import CountWindow, PolicyOperator, Query, QLOVEPolicy, StreamEngine, value_stream
from repro.evalkit import exact_quantiles
from repro.streaming.engine import run_query_batched
from repro.workloads import generate_netmon

PHIS = [0.5, 0.9, 0.99, 0.999]
WINDOW = CountWindow(size=100_000, period=10_000)
STREAM_LENGTH = 200_000


def main() -> None:
    values = generate_netmon(STREAM_LENGTH, seed=7)
    policy = QLOVEPolicy(PHIS, WINDOW)
    query = (
        Query(value_stream(values))
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(policy))
    )

    print(f"QLOVE over a sliding window of {WINDOW.size:,} RTTs, "
          f"evaluated every {WINDOW.period:,} events\n")
    start = time.perf_counter()
    per_event_results = list(StreamEngine().run(query))
    per_event_seconds = time.perf_counter() - start
    print(f"{'eval':>4}  " + "  ".join(f"Q{phi:<5}" for phi in PHIS))
    for result in per_event_results:
        row = "  ".join(f"{result.result[phi]:6.0f}" for phi in PHIS)
        print(f"{result.index:>4}  {row}")
    last = per_event_results[-1]

    # Cross-check the final window against exact order statistics.
    window_values = values[int(last.end) - WINDOW.size : int(last.end)]
    truth = exact_quantiles(window_values, PHIS)
    print("\nfinal window, exact vs QLOVE:")
    for phi, exact in zip(PHIS, truth):
        estimate = last.result[phi]
        err = 100 * abs(estimate - exact) / exact
        print(f"  Q{phi:<5}  exact={exact:8.0f}  qlove={estimate:8.0f}  "
              f"rel.err={err:5.2f}%")
    print(f"\nstate: {policy.peak_space_variables():,} variables "
          f"(window holds {WINDOW.size:,} elements)")

    # The batched fast path: same query semantics, but the engine slices
    # numpy chunks at sub-window boundaries and QLOVE bulk-ingests them.
    start = time.perf_counter()
    batched = run_query_batched(
        values, WINDOW, PolicyOperator(QLOVEPolicy(PHIS, WINDOW))
    )
    batched_seconds = time.perf_counter() - start
    assert batched == per_event_results, "batched path must be bit-identical"
    print(f"\nbatched ingestion: identical results, "
          f"{per_event_seconds / batched_seconds:.1f}x faster "
          f"({len(values) / batched_seconds / 1e6:.1f} M ev/s vs "
          f"{len(values) / per_event_seconds / 1e6:.1f} M ev/s)")


if __name__ == "__main__":
    main()
