"""Exact sliding-window quantiles — the paper's baseline policy.

"Exact is the baseline policy that computes exact quantiles.  This extends
Algorithm 1 with a deaccumulation logic; the node representing the expired
element's value decrements its frequency by one, and is deleted from the
red-black tree if the frequency becomes zero" (Section 5.1).

The policy keeps one frequency map over the whole window plus the raw
values of every live sub-window (required to know *what* to deaccumulate
when a sub-window expires — this buffering is exactly the cost QLOVE's
summary-level expiry avoids).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro import serde
from repro.datastructures import frequency_map_from_state, make_frequency_map
from repro.sketches.base import QuantilePolicy
from repro.streaming.windows import CountWindow


class ExactPolicy(QuantilePolicy):
    """Exact quantiles with per-element deaccumulation.

    Parameters
    ----------
    backend:
        ``"tree"`` (default) is the paper's red-black tree — the faithful
        baseline whose per-element deaccumulation cost QLOVE's design
        removes.  ``"dict"`` is a hash-map + sort-on-demand variant that
        is considerably faster in CPython (identical results); throughput
        experiments report it separately so the architectural comparison
        stays honest (see DESIGN.md §5.1).
    """

    name = "exact"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        backend: str = "tree",
    ) -> None:
        super().__init__(phis, window)
        self.backend = backend
        self._map = make_frequency_map(backend)
        # The raw elements of the in-flight sub-window: scalar arrivals
        # collect in a list, batched arrivals keep their (zero-copy) array
        # parts.  A sealed sub-window is the ordered list of both.
        self._in_flight: List[float] = []
        self._in_flight_parts: List[np.ndarray] = []
        self._sealed: Deque[List[np.ndarray]] = deque()
        self._buffered = 0

    def accumulate(self, value: float) -> None:
        self._map.add(value)
        self._in_flight.append(value)

    def accumulate_batch(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if self._in_flight:
            # Preserve arrival order inside the sub-window buffer.
            self._in_flight_parts.append(np.asarray(self._in_flight))
            self._in_flight = []
        self._map.extend_array(values)
        self._in_flight_parts.append(values)

    def seal_subwindow(self) -> None:
        self.record_space()
        parts = self._in_flight_parts
        if self._in_flight:
            parts.append(np.asarray(self._in_flight))
        self._sealed.append(parts)
        self._buffered += sum(len(part) for part in parts)
        self._in_flight = []
        self._in_flight_parts = []

    def expire_subwindow(self) -> None:
        if not self._sealed:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        expired = self._sealed.popleft()
        for part in expired:
            self._buffered -= len(part)
            self._map.discard_array(part)

    def merge(self, other: "ExactPolicy") -> None:
        """Fold another Exact policy's window state into this one.

        The frequency map is a multiset, so the merge is a multiset union —
        exact and invariant to how the stream was partitioned.  The raw
        sub-window buffers concatenate (expiry is multiset removal, so
        per-donor ordering is sufficient).
        """
        self._require_compatible(other)
        self._map.merge_from(other._map)
        for parts in other._sealed:
            self._sealed.append(parts)
        self._buffered += other._buffered
        donor_parts = list(other._in_flight_parts)
        if other._in_flight:
            donor_parts.append(np.asarray(other._in_flight, dtype=np.float64))
        if donor_parts:
            if self._in_flight:
                self._in_flight_parts.append(
                    np.asarray(self._in_flight, dtype=np.float64)
                )
                self._in_flight = []
            self._in_flight_parts.extend(donor_parts)

    def reset(self) -> None:
        self._map.clear()
        self._in_flight = []
        self._in_flight_parts = []
        self._sealed.clear()
        self._buffered = 0
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Frequency map plus the raw sub-window buffers, JSON-safe.

        Each sealed sub-window's buffered parts concatenate into one list
        (expiry is multiset removal, so per-part structure is layout, not
        state); the in-flight buffer likewise.
        """
        state = self._state_header()
        state["backend"] = self.backend
        state["map"] = self._map.to_state()
        in_flight: List[float] = []
        for part in self._in_flight_parts:
            in_flight.extend(part.tolist())
        in_flight.extend(float(v) for v in self._in_flight)
        state["in_flight"] = in_flight
        state["sealed"] = [
            [float(v) for part in parts for v in part.tolist()]
            for parts in self._sealed
        ]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "ExactPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state, ("backend", "map", "in_flight", "sealed"), "exact policy"
        )
        policy = cls(phis, window, backend=state["backend"])
        policy._map = frequency_map_from_state(state["map"])
        policy._in_flight = serde.float_list(state["in_flight"])
        policy._sealed = deque(
            [np.asarray(values, dtype=np.float64)] for values in state["sealed"]
        )
        policy._buffered = sum(len(values) for values in state["sealed"])
        policy._restore_header(state)
        return policy

    def query(self) -> Dict[float, float]:
        if not self._sealed:
            raise ValueError("query() before any sealed sub-window")
        if self._in_flight or self._in_flight_parts:
            # The window is exactly the sealed sub-windows; excluding
            # in-flight elements mid-period would need a virtual rank
            # shift, so Exact answers only at period boundaries (which is
            # when the engine evaluates anyway).
            raise ValueError("Exact answers only at period boundaries")
        values = self._map.quantiles(self.phis)
        return dict(zip(self.phis, values))

    def space_variables(self) -> int:
        buffered = (
            self._buffered
            + len(self._in_flight)
            + sum(len(part) for part in self._in_flight_parts)
        )
        return 2 * self._map.unique_count + buffered

    @classmethod
    def analytical_space(cls, window: CountWindow, **params: float) -> Optional[int]:
        # Worst case: every element unique -> {value, count} per element,
        # plus the raw buffer needed for deaccumulation.
        return 3 * window.size
