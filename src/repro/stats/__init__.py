"""Statistical utilities implemented from scratch.

- :mod:`~repro.stats.normal` — standard-normal CDF/PPF used by the CLT
  error bound (Theorem 1).
- :mod:`~repro.stats.mannwhitney` — the Mann–Whitney U test [22] used by
  QLOVE's burst detector (Section 4.3).
"""

from repro.stats.mannwhitney import MannWhitneyResult, mann_whitney_u
from repro.stats.normal import normal_cdf, normal_pdf, normal_ppf

__all__ = [
    "MannWhitneyResult",
    "mann_whitney_u",
    "normal_cdf",
    "normal_pdf",
    "normal_ppf",
]
