"""Command-line entry point: experiments, the monitoring facade, serving.

Usage::

    python -m repro table1 --scale 0.25
    python -m repro figure5 --seed 7
    python -m repro all --scale 0.125
    python -m repro monitor specs.json --dataset netmon --events 200000
    python -m repro serve specs.json --port 7733 --checkpoint ckpt.json
    python -m repro loadgen --port 7733 --events 200000 --connections 4
    python -m repro query history/ --metric rtt --range 40:80
    qlove-bench table4            # console-script alias ('repro' also works)

``--scale`` multiplies the paper's window/period sizes (1.0 = paper
size); smaller scales run proportionally faster with the same shapes.

The ``monitor`` subcommand loads a JSON metric-spec file (a list of
:class:`~repro.service.spec.MetricSpec` dicts, or ``{"metrics": [...]}``),
streams a named workload through the :class:`~repro.service.monitor.Monitor`
facade, and prints one quantile report line per evaluated period.

``serve`` exposes the same monitor over TCP (newline-delimited JSON, see
``docs/serving.md``) with bounded-queue backpressure and periodic
checkpoints; ``loadgen`` drives such a server with a deterministic,
seeded, multi-connection workload and can print the served final
snapshot in exactly the ``monitor`` subcommand's format, so the two are
directly diffable.

``monitor`` and ``serve`` both take ``--history DIR`` to persist every
period's per-metric sketch state into a durable segment store
(``docs/history.md``); ``query`` answers point-in-time, range and
group-over-time quantile questions against such a store — or against a
live server's ``history`` op via ``--server HOST:PORT``, with
byte-identical output.

A missing or malformed spec/checkpoint file exits with status 2 and a
one-line actionable ``error:`` message — never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.evalkit.experiments import available_experiments, get_experiment


def _fail(exc: object) -> SystemExit:
    """A one-line actionable CLI failure (exit status 2, no traceback)."""
    message = " ".join(str(exc).split())
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load_specs_or_fail(path: str):
    """Load a metric-spec file; exit 2 with one line on any spec problem."""
    from repro.service import load_specs

    try:
        return load_specs(path)
    except (FileNotFoundError, ValueError) as exc:
        raise _fail(exc) from None


def _prepare_write_path(path: str, flag: str) -> None:
    """Make a write path usable: create missing parent directories.

    A ``--checkpoint runs/today/ckpt.json`` whose ``runs/today`` does not
    exist yet used to surface only at save time as a raw
    ``FileNotFoundError``; create the parents up front and turn any
    filesystem refusal (parent is a file, permissions) into the standard
    exit-2 actionable error.
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
    except (NotADirectoryError, FileExistsError):
        raise _fail(
            f"{flag} {path!r}: parent {parent!r} exists but is not a "
            "directory; pass a path whose directory components are "
            "directories"
        ) from None
    except OSError as exc:
        raise _fail(
            f"{flag} {path!r}: cannot create parent directory {parent!r} "
            f"({exc}); pass a writable location"
        ) from None


def _prepare_history_dir(directory: str) -> None:
    """Create a ``--history DIR`` (parents included) up front.

    Mirrors :func:`_prepare_write_path` for ``--checkpoint``: a missing
    grandparent or a file squatting on a path component fails here, as
    one actionable exit-2 line, instead of surfacing mid-stream from the
    store's first append.
    """
    try:
        os.makedirs(directory, exist_ok=True)
    except (NotADirectoryError, FileExistsError):
        raise _fail(
            f"--history {directory!r}: a path component exists but is not "
            "a directory; pass a path whose components are directories"
        ) from None
    except OSError as exc:
        raise _fail(
            f"--history {directory!r}: cannot create the store directory "
            f"({exc}); pass a writable location"
        ) from None


def _open_history_or_fail(directory: str, monitor) -> "object":
    """Open a segment store at ``directory`` and attach it to ``monitor``."""
    from repro.store import HistoryWriter, StoreError

    try:
        writer = HistoryWriter(directory)
        writer.attach(monitor)
    except (StoreError, ValueError, OSError) as exc:
        raise _fail(f"--history {directory!r}: {exc}") from None
    return writer


def _load_monitor_or_fail(path: str, specs):
    """Restore a monitor checkpoint and verify it matches the spec file."""
    from repro import serde
    from repro.service import Monitor

    try:
        monitor = Monitor.load(path)
    except (FileNotFoundError, serde.StateError) as exc:
        raise _fail(exc) from None
    # Compare canonical serialised forms: flat QLOVE params and their
    # resolved config serialise identically, so equivalent specs match
    # however they were written.
    loaded = {spec.name: spec.to_dict() for spec in monitor.specs()}
    wanted = {spec.name: spec.to_dict() for spec in specs}
    if loaded != wanted:
        raise _fail(
            f"checkpoint {path}: checkpointed metrics {sorted(loaded)} do "
            f"not match the spec file's {sorted(wanted)} (or their "
            "configurations differ); pass the same spec file the checkpoint "
            "was created with (spec/state mismatch)"
        )
    return monitor


def _print_final_snapshot(snapshot, reports) -> None:
    """Render the final-snapshot block.

    Both ``monitor`` (offline) and ``loadgen --snapshot`` (served) print
    through this one function — CI byte-diffs their outputs, so a
    formatting tweak must land in both or the equivalence gate would
    fail on a spurious diff.  Labeled metrics arrive nested
    (``{series_key: {phi: estimate} | None}``) and render one indented
    line per series, in canonical key order.
    """

    def line(estimates) -> str:
        if estimates is None:
            return "(no full window yet)"
        return "  ".join(
            f"Q{phi:g}={estimate:,.1f}" for phi, estimate in estimates.items()
        )

    print("\nfinal snapshot:")
    for name, estimates in snapshot.items():
        labeled = isinstance(estimates, dict) and (
            not estimates or isinstance(next(iter(estimates)), str)
        )
        if labeled:
            print(f"  {name}: {len(estimates)} series")
            for key in sorted(estimates):
                print(f"    {key}: {line(estimates[key])}")
        else:
            print(f"  {name}: {line(estimates)}")
    for name, accounting in reports.items():
        print(
            f"  {name}: {accounting['evaluations']} evaluations, "
            f"{accounting['peak_space']:,} peak state variables"
        )


def build_parser() -> argparse.ArgumentParser:
    """The experiment-runner argument schema."""
    parser = argparse.ArgumentParser(
        prog="qlove-bench",
        description=(
            "Regenerate the QLOVE paper's tables and figures, or run the "
            "'monitor' / 'serve' / 'loadgen' subcommands: stream a workload "
            "through the Monitor facade offline, serve it over TCP, or "
            "drive such a server (see '<subcommand> --help')."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on the paper's window/period sizes (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    return parser


def build_monitor_parser() -> argparse.ArgumentParser:
    """The ``monitor`` subcommand's argument schema."""
    from repro.workloads.registry import available_datasets

    parser = argparse.ArgumentParser(
        prog="qlove-bench monitor",
        description=(
            "Stream a named workload through the Monitor facade and print "
            "per-period quantile reports for every metric in a JSON spec file."
        ),
    )
    parser.add_argument(
        "specs",
        help=(
            "path to a JSON metric-spec file: a list of MetricSpec dicts or "
            "an object with a 'metrics' list"
        ),
    )
    parser.add_argument(
        "--dataset",
        default="netmon",
        choices=available_datasets(),
        help="workload streamed into every registered metric (default netmon)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200_000,
        help="stream length in elements (default 200000)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=65_536,
        help="batched-ingest block size (default 65536)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "save the full monitor state (specs + per-metric operator "
            "state) to this JSON file after streaming"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "restore the monitor from a --checkpoint file and continue the "
            "dataset from the first element the checkpoint has not seen; "
            "the final report equals an uninterrupted run's"
        ),
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        metavar="N",
        default=None,
        help=(
            "stop streaming after N elements (of the full --events dataset) "
            "— simulates a crash mid-stream; combine with --checkpoint, then "
            "--resume with the same --events to finish the identical stream"
        ),
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help=(
            "persist every period's per-metric sketch state into a segment "
            "store at DIR (created when missing); query it later with "
            "'python -m repro query DIR ...'"
        ),
    )
    parser.add_argument(
        "--series",
        type=int,
        default=8,
        help=(
            "for labeled metrics: number of deterministic series the "
            "stream splits into (event i goes to series i %% N; default 8)"
        ),
    )
    parser.add_argument(
        "--label-fanout",
        type=int,
        default=4,
        help=(
            "for labeled metrics: distinct values of the first schema "
            "label (the group-by axis; default 4)"
        ),
    )
    return parser


def run_monitor(argv: List[str]) -> int:
    """Execute the ``monitor`` subcommand."""
    from repro.service import Monitor
    from repro.workloads.registry import get_dataset

    args = build_monitor_parser().parse_args(argv)
    specs = _load_specs_or_fail(args.specs)
    if args.checkpoint is not None:
        _prepare_write_path(args.checkpoint, "--checkpoint")

    def report(name: str, result) -> None:
        quantiles = "  ".join(
            f"Q{phi:g}={estimate:,.1f}" for phi, estimate in result.result.items()
        )
        print(
            f"{name:<16} eval={result.index:<4} n={result.window_count:<9,} "
            f"end={int(result.end):<10,} {quantiles}"
        )

    if args.series < 1:
        raise _fail(f"--series must be >= 1, got {args.series}")
    if args.label_fanout < 1:
        raise _fail(f"--label-fanout must be >= 1, got {args.label_fanout}")
    skip = 0
    if args.resume is not None:
        monitor = _load_monitor_or_fail(args.resume, specs)
        seen = monitor.seen_counts()
        skip = min(seen.values()) if seen else 0
        if len(set(seen.values())) > 1:
            raise SystemExit(
                f"--resume {args.resume}: metrics saw different element "
                f"counts ({seen}); this checkpoint was not produced by the "
                "monitor CLI's uniform fan-out and cannot be resumed here"
            )
        labeled = set(monitor.labeled_metrics())
        for name in monitor.metrics():
            if name not in labeled:  # families take no per-period callbacks
                monitor.on_result(name, report)
        print(
            f"resumed {len(monitor)} metric(s) from {args.resume!r} "
            f"({skip:,} elements already ingested)"
        )
    else:
        monitor = Monitor()
        for spec in specs:
            if spec.labels is not None:
                monitor.register(spec)
                print(
                    f"registered {spec.name!r}: policy={spec.policy} "
                    f"window={spec.window.size:,}/{spec.window.period:,} "
                    f"quantiles={list(spec.quantiles)} "
                    f"labels={list(spec.labels)}"
                )
            else:
                monitor.register(spec, on_result=report)
                print(
                    f"registered {spec.name!r}: policy={spec.policy} "
                    f"window={spec.window.size:,}/{spec.window.period:,} "
                    f"quantiles={list(spec.quantiles)}"
                )

    writer = None
    if args.history is not None:
        _prepare_history_dir(args.history)
        writer = _open_history_or_fail(args.history, monitor)
        print(f"recording period history to {args.history!r}")

    # Labeled metrics split the stream deterministically: event i of the
    # dataset belongs to series i % N (the LoadGenerator's discipline),
    # so served and offline labeled runs are byte-diffable.
    labelsets = {}
    if monitor.labeled_metrics():
        from repro.series.labels import deterministic_labelsets

        labelsets = {
            name: [
                dict(items)
                for items in deterministic_labelsets(
                    next(
                        spec.labels
                        for spec in monitor.specs()
                        if spec.name == name
                    ),
                    args.series,
                    args.label_fanout,
                )
            ]
            for name in monitor.labeled_metrics()
        }

    values = get_dataset(args.dataset, args.events, seed=args.seed)
    if args.stop_after is not None:
        if args.stop_after < skip:
            raise SystemExit(
                f"--stop-after {args.stop_after} lies before the resumed "
                f"position ({skip:,} elements already ingested)"
            )
        values = values[: args.stop_after]
    fresh = values[skip:]
    print(
        f"\nstreaming {len(fresh):,} '{args.dataset}' elements "
        f"(seed {args.seed}) into {len(monitor)} metric(s)\n"
    )
    from repro.series.labels import series_slice

    started = time.perf_counter()
    for offset in range(0, len(fresh), args.chunk_size):
        block = fresh[offset : offset + args.chunk_size]
        absolute = skip + offset  # global index of block[0] in the dataset
        for name in monitor.metrics():
            if name in labelsets:
                for j, labels in enumerate(labelsets[name]):
                    sub = series_slice(block, absolute, args.series, j)
                    if len(sub):
                        monitor.observe_batch(name, sub, labels=labels)
            else:
                monitor.observe_batch(name, block)
    elapsed = time.perf_counter() - started
    if writer is not None:
        writer.close()
        print(f"history: {writer.segments_written:,} segment(s) written")
    if args.checkpoint is not None:
        try:
            monitor.save(args.checkpoint)
        except OSError as exc:
            raise _fail(f"--checkpoint {args.checkpoint!r}: {exc}") from None
        print(f"checkpoint saved to {args.checkpoint!r}")

    _print_final_snapshot(monitor.snapshot(), monitor.space_report())
    rate = len(fresh) * len(monitor) / elapsed / 1e6 if elapsed > 0 else float("inf")
    print(f"\n[{rate:.1f} M ev/s across metrics, {elapsed:.1f}s]")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand's argument schema."""
    parser = argparse.ArgumentParser(
        prog="qlove-bench serve",
        description=(
            "Serve the metrics of a JSON spec file over TCP: concurrent "
            "newline-delimited-JSON ingest into a bounded queue, one "
            "consumer draining into the Monitor facade, control ops "
            "(snapshot/results/flush/stats/checkpoint/shutdown) on the "
            "same protocol (see docs/serving.md)."
        ),
    )
    parser.add_argument(
        "specs",
        help=(
            "path to a JSON metric-spec file: a list of MetricSpec dicts or "
            "an object with a 'metrics' list"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=7733,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--queue-blocks",
        type=int,
        default=64,
        help="ingest queue capacity in observe blocks (default 64)",
    )
    parser.add_argument(
        "--backpressure",
        choices=["block", "shed"],
        default="block",
        help=(
            "full-queue behaviour: 'block' stalls the sender (lossless), "
            "'shed' drops the block and reports it in the ack (default block)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="save the monitor state to this JSON file periodically and on shutdown",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "seconds between periodic checkpoint saves (default 30; "
            "requires --checkpoint)"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "restore the monitor from a checkpoint file before serving; the "
            "spec file must match the checkpointed metrics"
        ),
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help=(
            "persist every period's per-metric sketch state into a segment "
            "store at DIR and answer 'history' ops from it (query with "
            "'python -m repro query --server HOST:PORT ...' or against DIR "
            "directly)"
        ),
    )
    return parser


def run_serve(argv: List[str]) -> int:
    """Execute the ``serve`` subcommand."""
    from repro.service import Monitor, TelemetryServer

    args = build_serve_parser().parse_args(argv)
    if args.checkpoint_interval is not None and args.checkpoint is None:
        # Silently ignoring the interval would look like durability the
        # server does not have.
        raise _fail(
            "--checkpoint-interval requires --checkpoint PATH (the file "
            "to save the monitor state to)"
        )
    if args.checkpoint is not None and args.checkpoint_interval is None:
        args.checkpoint_interval = 30.0
    if args.checkpoint is not None:
        _prepare_write_path(args.checkpoint, "--checkpoint")
    specs = _load_specs_or_fail(args.specs)
    if args.resume is not None:
        monitor = _load_monitor_or_fail(args.resume, specs)
        restored = monitor.seen_counts()
        print(
            f"resumed {len(monitor)} metric(s) from {args.resume!r} "
            f"(seen: {restored})"
        )
    else:
        monitor = Monitor()
        for spec in specs:
            monitor.register(spec)
            labeled = (
                f" labels={list(spec.labels)}" if spec.labels is not None else ""
            )
            print(
                f"registered {spec.name!r}: policy={spec.policy} "
                f"window={spec.window.size:,}/{spec.window.period:,} "
                f"quantiles={list(spec.quantiles)}{labeled}"
            )
    writer = None
    if args.history is not None:
        _prepare_history_dir(args.history)
        writer = _open_history_or_fail(args.history, monitor)
        print(f"recording period history to {args.history!r}")
    try:
        server = TelemetryServer(
            monitor,
            host=args.host,
            port=args.port,
            queue_blocks=args.queue_blocks,
            backpressure=args.backpressure,
            checkpoint_path=args.checkpoint,
            checkpoint_interval=(
                args.checkpoint_interval if args.checkpoint is not None else None
            ),
            history_writer=writer,
        )
    except ValueError as exc:
        raise _fail(exc) from None
    try:
        server.start()
    except OSError as exc:
        raise _fail(f"cannot bind {args.host}:{args.port}: {exc}") from None
    host, port = server.address
    checkpointing = (
        f", checkpointing to {args.checkpoint!r} every "
        f"{args.checkpoint_interval:g}s"
        if args.checkpoint is not None
        else ""
    )
    print(
        f"serving {len(monitor)} metric(s) on {host}:{port} "
        f"(queue {args.queue_blocks} blocks, backpressure "
        f"{args.backpressure}{checkpointing})",
        flush=True,
    )
    try:
        while not server.wait_shutdown(timeout=0.5):
            pass
        print("shutdown requested; draining and stopping")
    except KeyboardInterrupt:
        print("\ninterrupted; draining and stopping")
    server.stop()
    stats = server.ingest_queue.stats()
    print(
        f"served {stats['accepted_events']:,} events in "
        f"{stats['accepted_blocks']:,} blocks "
        f"({stats['shed_blocks']:,} blocks shed)"
    )
    if writer is not None:
        print(f"history: {writer.segments_written:,} segment(s) written")
    return 0


def build_loadgen_parser() -> argparse.ArgumentParser:
    """The ``loadgen`` subcommand's argument schema."""
    from repro.workloads.registry import available_datasets

    parser = argparse.ArgumentParser(
        prog="qlove-bench loadgen",
        description=(
            "Drive a 'serve' server with a deterministic, seeded workload "
            "over N concurrent connections.  Block partitioning is a pure "
            "function of (dataset, events, seed, block size) — never of "
            "the connection count — so runs are reproducible and the "
            "served snapshot matches an offline 'monitor' run bit for bit."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=7733, help="server port")
    parser.add_argument(
        "--dataset",
        default="netmon",
        choices=available_datasets(),
        help="workload streamed into every registered metric (default netmon)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200_000,
        help="stream length in elements (default 200000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--connections",
        type=int,
        default=1,
        help="concurrent sender connections (default 1)",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=65_536,
        help=(
            "events per observe message (default 65536, matching the "
            "monitor subcommand's --chunk-size)"
        ),
    )
    parser.add_argument(
        "--series",
        type=int,
        default=8,
        help=(
            "for labeled metrics: number of deterministic series the "
            "stream splits into (event i goes to series i %% N, matching "
            "the monitor subcommand; default 8)"
        ),
    )
    parser.add_argument(
        "--label-fanout",
        type=int,
        default=4,
        help=(
            "for labeled metrics: distinct values of the first schema "
            "label (default 4, matching the monitor subcommand)"
        ),
    )
    parser.add_argument(
        "--protocol",
        default="json",
        choices=("json", "binary", "mixed"),
        help=(
            "wire protocol the sender connections negotiate: 'json' "
            "(default, debuggable text frames), 'binary' (length-prefixed "
            "raw float64 frames, the hot path), or 'mixed' (even "
            "connections JSON, odd binary — a heterogeneous fleet).  The "
            "event sequence and block plan are protocol-independent"
        ),
    )
    parser.add_argument(
        "--wait-server",
        type=float,
        metavar="SECONDS",
        default=10.0,
        help="poll this long for the server to come up (default 10)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue from the server's current per-metric position (after "
            "a checkpoint restart) instead of from element 0"
        ),
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        metavar="N",
        default=None,
        help=(
            "send only the first N elements of the --events dataset — "
            "simulates a sender whose stream dies mid-way"
        ),
    )
    parser.add_argument(
        "--checkpoint-request",
        action="store_true",
        help="ask the server to drain and save a checkpoint after streaming",
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help=(
            "print the served final snapshot in exactly the 'monitor' "
            "subcommand's format (diffable against an offline run)"
        ),
    )
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="send the shutdown op once done (the server drains and exits)",
    )
    return parser


def run_loadgen(argv: List[str]) -> int:
    """Execute the ``loadgen`` subcommand."""
    from repro.service import LoadGenerator, TelemetryClient, wait_for_server

    args = build_loadgen_parser().parse_args(argv)
    try:
        client = wait_for_server(args.host, args.port, timeout=args.wait_server)
    except ConnectionError as exc:
        raise _fail(exc) from None
    client.close()
    try:
        generator = LoadGenerator(
            args.host,
            args.port,
            dataset=args.dataset,
            events=args.events,
            seed=args.seed,
            connections=args.connections,
            block_size=args.block_size,
            series=args.series,
            label_fanout=args.label_fanout,
            protocol=args.protocol,
        )
    except ValueError as exc:
        raise _fail(exc) from None
    offset = 0
    if args.resume:
        try:
            offset = generator.resume_offset()
        except ValueError as exc:
            raise _fail(exc) from None
        print(f"resuming from element {offset:,} (server position)")
    if args.stop_after is not None and args.stop_after < offset:
        raise _fail(
            f"--stop-after {args.stop_after} lies before the resumed "
            f"position ({offset:,} elements already ingested)"
        )
    from repro.service import ServerError

    try:
        summary = generator.run(start_offset=offset, stop_after=args.stop_after)
        print(
            f"streamed {summary['events']:,} '{args.dataset}' elements "
            f"(seed {args.seed}) in {summary['blocks']:,} blocks over "
            f"{summary['connections']} {summary['protocol']} connection(s) "
            f"into {len(summary['metrics'])} metric(s); "
            f"drained={summary['drained']}"
            + (
                f", {summary['shed_blocks']:,} blocks shed"
                if summary["shed_blocks"]
                else ""
            )
        )
        with TelemetryClient(args.host, args.port) as client:
            if args.checkpoint_request:
                saved = client.checkpoint()
                print(f"checkpoint saved to {saved['path']!r}")
            if args.snapshot:
                snapshot = client.snapshot()
                reports = client.stats()["metrics"]
                _print_final_snapshot(snapshot, reports)
            if args.shutdown:
                client.shutdown()
                # stderr keeps stdout's tail diffable vs 'monitor' output.
                print("shutdown sent", file=sys.stderr)
    except (ServerError, ConnectionError, OSError, ValueError) as exc:
        raise _fail(exc) from None
    elapsed = summary["elapsed"]
    rate = (
        summary["events"] * len(summary["metrics"]) / elapsed / 1e6
        if elapsed > 0
        else float("inf")
    )
    print(f"\n[{rate:.1f} M ev/s across metrics, {elapsed:.1f}s]")
    return 0


def build_query_parser() -> argparse.ArgumentParser:
    """The ``query`` subcommand's argument schema."""
    parser = argparse.ArgumentParser(
        prog="qlove-bench query",
        description=(
            "Answer historical quantile questions from a segment store "
            "written by 'monitor --history' / 'serve --history': one period "
            "(--at), an arbitrary period range (--range T0:T1), or a "
            "group-over-time series (--range with --step).  With --server "
            "the same question goes to a live server's 'history' op and "
            "prints byte-identical output."
        ),
    )
    parser.add_argument(
        "store",
        nargs="?",
        default=None,
        help=(
            "history store directory (the --history DIR of a monitor/serve "
            "run); omit when querying a live server via --server"
        ),
    )
    parser.add_argument(
        "--server",
        metavar="HOST:PORT",
        default=None,
        help="query a live server's history op instead of a local store",
    )
    parser.add_argument(
        "--metric", required=True, help="metric name to query"
    )
    parser.add_argument(
        "--at",
        type=int,
        metavar="P",
        default=None,
        help="point-in-time: quantiles of period P's events alone",
    )
    parser.add_argument(
        "--range",
        dest="range_",
        metavar="T0:T1",
        default=None,
        help="quantiles over periods [T0, T1) (end-exclusive)",
    )
    parser.add_argument(
        "--step",
        type=int,
        metavar="K",
        default=None,
        help="with --range: one answer per K-period bucket (group-over-time)",
    )
    parser.add_argument(
        "--quantiles",
        metavar="PHI[,PHI...]",
        default=None,
        help=(
            "comma-separated subset of the metric's tracked quantiles "
            "(default: all of them)"
        ),
    )
    parser.add_argument(
        "--group-by",
        dest="group_by",
        metavar="LABEL[,LABEL...]",
        default=None,
        help=(
            "group a labeled metric's series by these labels and answer "
            "merged quantiles per group: against a store, add --range "
            "T0:T1 (historical); against --server, omit --at/--range "
            "(the live current window)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw result as JSON instead of the text rendering",
    )
    return parser


def run_query(argv: List[str]) -> int:
    """Execute the ``query`` subcommand."""
    import json

    args = build_query_parser().parse_args(argv)
    if (args.store is None) == (args.server is None):
        raise _fail(
            "pass either a store directory or --server HOST:PORT, not "
            "both / neither"
        )
    group_by = None
    if args.group_by is not None:
        group_by = [part for part in args.group_by.split(",") if part]
        if not group_by:
            raise _fail(
                f"--group-by {args.group_by!r} names no labels; pass a "
                "comma-separated list of the metric's label names "
                "(e.g. --group-by region)"
            )
        if args.at is not None or args.step is not None:
            raise _fail(
                "--group-by answers a period range (--range T0:T1 against "
                "a store) or the live current window (--server); it does "
                "not combine with --at or --step"
            )
        if args.server is not None and args.range_ is not None:
            raise _fail(
                "--group-by against --server answers the live current "
                "window; drop --range (historical group-by runs against "
                "the store directory directly)"
            )
        if args.server is None and args.range_ is None:
            raise _fail(
                "--group-by against a store needs --range T0:T1 (the "
                "period range to merge per group)"
            )
    elif (args.at is None) == (args.range_ is None):
        raise _fail("pass either --at P or --range T0:T1, not both / neither")
    if args.step is not None and args.range_ is None:
        raise _fail("--step needs --range T0:T1")
    start = end = None
    if args.range_ is not None:
        try:
            start_text, end_text = args.range_.split(":", 1)
            start, end = int(start_text), int(end_text)
        except ValueError:
            raise _fail(
                f"--range {args.range_!r} is not T0:T1 (two integer period "
                "indices, end-exclusive, e.g. --range 40:80)"
            ) from None
    quantiles = None
    if args.quantiles is not None:
        try:
            quantiles = [float(part) for part in args.quantiles.split(",")]
        except ValueError:
            raise _fail(
                f"--quantiles {args.quantiles!r} is not a comma-separated "
                "list of numbers (e.g. --quantiles 0.5,0.99)"
            ) from None

    if args.server is not None:
        from repro.service import ServerError, TelemetryClient

        host, _, port_text = args.server.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise _fail(
                f"--server {args.server!r} is not HOST:PORT (e.g. "
                "--server 127.0.0.1:7733)"
            ) from None
        try:
            with TelemetryClient(host or "127.0.0.1", port) as client:
                if group_by is not None:
                    result = client.group_by(args.metric, group_by, quantiles)
                else:
                    result = client.history(
                        args.metric,
                        at=args.at,
                        start=start,
                        end=end,
                        step=args.step,
                        quantiles=quantiles,
                    )
        except (ServerError, ConnectionError, OSError) as exc:
            raise _fail(exc) from None
    else:
        from repro.store import SegmentStore, StoreError, group_by_store
        from repro.store.query import query_at, query_range, query_series

        if not os.path.isdir(args.store):
            raise _fail(
                f"history store directory {args.store!r} does not exist; "
                "pass the --history DIR of a 'monitor' or 'serve' run"
            )
        try:
            store = SegmentStore(args.store)
            if group_by is not None:
                result = group_by_store(
                    store, args.metric, group_by, start, end, quantiles
                )
            elif args.at is not None:
                result = query_at(store, args.metric, args.at, quantiles)
            elif args.step is not None:
                result = query_series(
                    store, args.metric, start, end, args.step, quantiles
                )
            else:
                result = query_range(store, args.metric, start, end, quantiles)
        except (StoreError, ValueError) as exc:
            raise _fail(exc) from None

    if args.json:
        print(json.dumps(result, separators=(",", ":"), sort_keys=True))
    elif group_by is not None:
        from repro.store import render_group_result

        print(render_group_result(result), end="")
    else:
        from repro.store.query import render_result

        print(render_result(result), end="")
    return 0


def run_one(name: str, scale: float, seed: int, markdown: bool) -> None:
    """Execute one experiment and print its report."""
    runner = get_experiment(name)
    started = time.perf_counter()
    result = runner(scale=scale, seed=seed)
    elapsed = time.perf_counter() - started
    if markdown:
        print(f"\n## {result.name}\n")
        if result.notes:
            print(result.notes + "\n")
        for table in result.tables:
            print(table.render_markdown())
            print()
    else:
        print()
        print(result.render())
    print(f"\n[{name} completed in {elapsed:.1f}s]")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    subcommands = {
        "monitor": run_monitor,
        "serve": run_serve,
        "loadgen": run_loadgen,
        "query": run_query,
    }
    if argv and argv[0] in subcommands:
        return subcommands[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    names = available_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, scale=args.scale, seed=args.seed, markdown=args.markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
