"""Theorem 1: the CLT-based probabilistic error bound.

With n sub-windows of m i.i.d. elements each, the aggregated estimate
``y_a`` satisfies, with probability at least ``1 - alpha``,

    |y_a - y_e| <= 2 * z_{alpha/2} * sqrt(phi (1 - phi))
                   / (sqrt(n m) * f(p_phi))

where ``f`` is the data density at the true phi-quantile ``p_phi``.  The
bound tightens where the density is high (the non-high quantiles of
telemetry data) and degrades in the sparse tail — the observation that
motivates few-k merging.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.stats import normal_ppf


def clt_error_bound(
    phi: float,
    n_subwindows: int,
    subwindow_size: int,
    density: float,
    alpha: float = 0.05,
) -> float:
    """Evaluate Theorem 1's bound for a known density ``f(p_phi)``."""
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    if n_subwindows <= 0 or subwindow_size <= 0:
        raise ValueError("window shape must be positive")
    if density <= 0.0:
        raise ValueError("density must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    z = normal_ppf(1.0 - alpha / 2.0)
    return (
        2.0
        * z
        * math.sqrt(phi * (1.0 - phi))
        / (math.sqrt(n_subwindows * subwindow_size) * density)
    )


def density_at_quantile(
    values: Sequence[float], phi: float, rank_bandwidth: float = 0.01
) -> float:
    """Estimate ``f(p_phi)`` from data via the empirical quantile slope.

    Uses the central difference ``2h / (Q(phi + h) - Q(phi - h))`` of the
    empirical quantile function with rank bandwidth ``h``; widens ``h``
    when duplicates make the denominator zero.
    """
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    if n < 3:
        raise ValueError("need at least 3 values to estimate a density")
    h = max(rank_bandwidth, 1.5 / n)
    while True:
        lo = min(max(phi - h, 0.0), 1.0)
        hi = min(max(phi + h, 0.0), 1.0)
        lo_idx = min(n - 1, max(0, math.ceil(lo * n) - 1))
        hi_idx = min(n - 1, max(0, math.ceil(hi * n) - 1))
        spread = float(ordered[hi_idx] - ordered[lo_idx])
        mass = (hi_idx - lo_idx) / n
        if spread > 0.0 and mass > 0.0:
            return mass / spread
        h *= 2.0
        if h > 1.0:
            raise ValueError(
                "cannot estimate a positive density (all values equal?)"
            )


def error_bound_from_data(
    values: Sequence[float],
    phi: float,
    n_subwindows: int,
    subwindow_size: int,
    alpha: float = 0.05,
) -> float:
    """Theorem 1's bound with the density estimated from ``values``."""
    density = density_at_quantile(values, phi)
    return clt_error_bound(phi, n_subwindows, subwindow_size, density, alpha=alpha)
