"""Round-trip battery: every registered policy survives serialization.

For each policy in the registry (× seeds), a driven instance is
serialised with ``to_state()`` → ``json.dumps``, the dump is handed to a
**fresh subprocess** (no shared interpreter state, the crash-recovery
scenario), reloaded there with ``policy_from_state``, and the child's
quantile answers must equal the parent's exactly.  Hypothesis-driven
streams additionally exercise the in-process round trip for the policies
and the underlying datastructures/sketches.
"""

import json
import os
import random
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import (
    ReservoirSampler,
    TopKKeeper,
    TreeFrequencyMap,
    DictFrequencyMap,
    frequency_map_from_state,
)
from repro.sketches import (
    GKSummary,
    KLLSketch,
    available_policies,
    make_policy,
    policy_from_state,
)
from repro.streaming import CountWindow
from repro.workloads import get_dataset

WINDOW = CountWindow(size=2048, period=256)
STREAM_LENGTH = 1500
PHIS = (0.5, 0.9, 0.99)
SEEDS = (0, 1)

#: Per-policy battery configuration (mirrors the merge-equivalence
#: battery so a new policy must join both).
CASES = {
    "exact": dict(dataset="netmon", params={}),
    "qlove": dict(dataset="netmon", params={}),
    "cmqs": dict(dataset="netmon", params={"epsilon": 0.05}),
    "am": dict(dataset="netmon", params={"epsilon": 0.05}),
    "random": dict(dataset="netmon", params={"epsilon": 0.05, "seed": 7}),
    "moment": dict(dataset="normal", params={"k": 8}),
}

#: Reloads states on stdin and answers quantile queries on stdout.
CHILD_SCRIPT = """
import json, sys
from repro.sketches import policy_from_state

payload = json.load(sys.stdin)
answers = []
for state in payload["states"]:
    policy = policy_from_state(state)
    answers.append(sorted(policy.query().items()))
json.dump(answers, sys.stdout)
"""


def drive(policy, values):
    """Feed a stream, sealing every period (and the final remnant)."""
    period = policy.window.period
    for start in range(0, len(values), period):
        policy.accumulate_batch(values[start : start + period])
        policy.seal_subwindow()


def test_battery_covers_every_registered_policy():
    """A new policy cannot register without joining this battery."""
    assert set(CASES) == set(available_policies())


@pytest.mark.parametrize("name", sorted(CASES))
def test_subprocess_reload_answers_identically(name):
    """to_state → json.dumps → fresh subprocess → identical answers."""
    case = CASES[name]
    states = []
    expected = []
    for seed in SEEDS:
        values = get_dataset(case["dataset"], STREAM_LENGTH, seed=seed)
        policy = make_policy(name, PHIS, WINDOW, **case["params"])
        drive(policy, values)
        states.append(json.loads(json.dumps(policy.to_state())))
        expected.append(sorted(policy.query().items()))
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT],
        input=json.dumps({"states": states}),
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    answers = json.loads(completed.stdout)
    assert [[(phi, val) for phi, val in entry] for entry in expected] == [
        [(float(phi), float(val)) for phi, val in entry] for entry in answers
    ]


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_preserves_future_behaviour(name, seed):
    """A restored policy stays bit-identical through further lifecycle."""
    case = CASES[name]
    values = get_dataset(case["dataset"], STREAM_LENGTH, seed=seed)
    reference = make_policy(name, PHIS, WINDOW, **case["params"])
    drive(reference, values[:1024])
    # Leave a partial in-flight sub-window so that state round-trips too.
    reference.accumulate_batch(values[1024:1100])
    restored = policy_from_state(json.loads(json.dumps(reference.to_state())))
    for policy in (reference, restored):
        policy.accumulate_batch(values[1100:1280])
        policy.seal_subwindow()
    assert restored.query() == reference.query()
    assert restored.space_variables() == reference.space_variables()
    assert restored.peak_space_variables() == reference.peak_space_variables()


@pytest.mark.parametrize("name", sorted(CASES))
def test_restored_instances_still_merge(name):
    """merge() works on restored instances, matching the original merge."""
    case = CASES[name]
    values = get_dataset(case["dataset"], STREAM_LENGTH, seed=2)
    left = make_policy(name, PHIS, WINDOW, **case["params"])
    right = make_policy(name, PHIS, WINDOW, **case["params"])
    drive(left, values[:768])
    drive(right, values[768:])
    expected = make_policy(name, PHIS, WINDOW, **case["params"])
    expected.merge(left)
    expected.merge(right)
    restored_left = policy_from_state(json.loads(json.dumps(left.to_state())))
    restored_right = policy_from_state(json.loads(json.dumps(right.to_state())))
    merged = make_policy(name, PHIS, WINDOW, **case["params"])
    merged.merge(restored_left)
    merged.merge(restored_right)
    assert merged.query() == expected.query()


# ----------------------------------------------------------------------
# Hypothesis-driven round trips (reusing the suite's stream strategies)
# ----------------------------------------------------------------------
value_streams = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=200
)


@settings(max_examples=25, deadline=None)
@given(value_streams, st.sampled_from(sorted(CASES)))
def test_property_policy_roundtrip(values, name):
    window = CountWindow(size=64, period=16)
    case = CASES[name]
    policy = make_policy(name, PHIS, window, **case["params"])
    stream = [float(v) for v in values]
    for start in range(0, len(stream), 16):
        policy.accumulate_batch(np.asarray(stream[start : start + 16]))
        policy.seal_subwindow()
        if (start // 16) >= window.subwindow_count:
            policy.expire_subwindow()
    restored = policy_from_state(json.loads(json.dumps(policy.to_state())))
    assert restored.query() == policy.query()


@settings(max_examples=50, deadline=None)
@given(value_streams, st.sampled_from(["tree", "dict"]))
def test_property_frequency_map_roundtrip(values, backend):
    fmap = (TreeFrequencyMap if backend == "tree" else DictFrequencyMap)(
        float(v) for v in values
    )
    restored = frequency_map_from_state(json.loads(json.dumps(fmap.to_state())))
    assert list(restored.items_sorted()) == list(fmap.items_sorted())
    assert restored.quantiles([0.5, 0.99]) == fmap.quantiles([0.5, 0.99])


@settings(max_examples=50, deadline=None)
@given(value_streams)
def test_property_gk_roundtrip(values):
    summary = GKSummary(0.05, capacity=16)
    for v in values:
        summary.insert(float(v))
    restored = GKSummary.from_state(json.loads(json.dumps(summary.to_state())))
    assert restored.weighted_items() == summary.weighted_items()
    assert restored.query(0.5) == summary.query(0.5)
    # Future inserts behave identically (same compression points).
    for policy in (summary, restored):
        for v in values:
            policy.insert(float(v) + 100.0)
    assert restored.weighted_items() == summary.weighted_items()


@settings(max_examples=50, deadline=None)
@given(value_streams, st.integers(min_value=0, max_value=2**31))
def test_property_kll_roundtrip_bit_identical(values, seed):
    sketch = KLLSketch(8, rng=random.Random(seed))
    for v in values:
        sketch.insert(float(v))
    restored = KLLSketch.from_state(json.loads(json.dumps(sketch.to_state())))
    assert restored.weighted_items() == sketch.weighted_items()
    # The restored RNG continues exactly where the original's stands.
    for s in (sketch, restored):
        for v in values:
            s.insert(float(v) * 2.0)
    assert restored.weighted_items() == sketch.weighted_items()


@settings(max_examples=50, deadline=None)
@given(value_streams, st.integers(min_value=1, max_value=8))
def test_property_topk_and_reservoir_roundtrip(values, k):
    keeper = TopKKeeper(k, (float(v) for v in values))
    restored = TopKKeeper.from_state(json.loads(json.dumps(keeper.to_state())))
    assert restored.values_descending() == keeper.values_descending()

    sampler = ReservoirSampler(k, rng=random.Random(k))
    sampler.offer_batch([float(v) for v in values])
    revived = ReservoirSampler.from_state(
        json.loads(json.dumps(sampler.to_state()))
    )
    assert revived.values() == sampler.values()
    assert revived.seen == sampler.seen
    for s in (sampler, revived):
        s.offer_batch([float(v) + 1.0 for v in values])
    assert revived.values() == sampler.values()
