"""SegmentStore: append discipline, recovery, retention, introspection."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store import RetentionPolicy, Segment, SegmentStore, StoreError, encode_line
from repro.store.segment import spec_record

from tests.store.conftest import make_spec


def period_segment(metric: str, period: int, count: int = 250) -> Segment:
    return Segment(
        metric=metric,
        start_period=period,
        end_period=period + 1,
        count=count,
        state={"kind": "policy", "version": 1, "policy": "exact"},
    )


def real_segment(metric: str, period: int, count: int = 250) -> Segment:
    """A period segment whose state is a genuine sealed policy delta
    (required by tests that exercise compaction, which rebuilds policies)."""
    policy = make_spec("exact", name=metric).build_policy()
    policy.accumulate_batch(np.full(count, float(period + 1)))
    policy.seal_subwindow()
    return Segment(
        metric=metric,
        start_period=period,
        end_period=period + 1,
        count=count,
        state=policy.to_state(),
    )


@pytest.fixture()
def store(tmp_path) -> SegmentStore:
    store = SegmentStore(str(tmp_path / "hist"))
    store.register(make_spec("exact", name="rtt"))
    return store


class TestAppend:
    def test_append_and_read_back(self, store):
        for p in range(5):
            assert store.append(period_segment("rtt", p)) is True
        assert [s.start_period for s in store.segments("rtt")] == list(range(5))
        assert store.coverage("rtt") == (0, 5)

    def test_duplicate_replay_skipped(self, store):
        store.append(period_segment("rtt", 0))
        store.append(period_segment("rtt", 1))
        assert store.append(period_segment("rtt", 0)) is False
        assert store.append(period_segment("rtt", 1)) is False
        assert store.duplicates_skipped == 2
        assert store.coverage("rtt") == (0, 2)

    def test_gap_rejected(self, store):
        store.append(period_segment("rtt", 0))
        with pytest.raises(StoreError, match="gap-free"):
            store.append(period_segment("rtt", 2))

    def test_partial_overlap_rejected(self, store):
        store.append(period_segment("rtt", 0))
        store.append(period_segment("rtt", 1))
        with pytest.raises(StoreError, match="overlaps"):
            store.append(
                Segment(
                    metric="rtt",
                    start_period=1,
                    end_period=3,
                    count=500,
                    state={"kind": "policy", "version": 1, "policy": "exact"},
                )
            )

    def test_unregistered_metric_rejected(self, store):
        with pytest.raises(StoreError, match="not in this store"):
            store.append(period_segment("nope", 0))

    def test_register_same_spec_idempotent(self, store):
        store.register(make_spec("exact", name="rtt"))
        assert store.metrics() == ["rtt"]

    def test_register_conflicting_spec_rejected(self, store):
        with pytest.raises(StoreError, match="different configuration"):
            store.register(make_spec("cmqs", name="rtt"))

    def test_metric_names_percent_encoded_on_disk(self, tmp_path):
        store = SegmentStore(str(tmp_path / "hist"))
        store.register(make_spec("exact", name="dc1/rtt p99"))
        store.append(period_segment("dc1/rtt p99", 0))
        store.close()
        assert "dc1%2Frtt%20p99.seg" in os.listdir(tmp_path / "hist")
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.metrics() == ["dc1/rtt p99"]


class TestReopen:
    def test_index_rebuilt_from_data_files(self, store, tmp_path):
        for p in range(7):
            store.append(period_segment("rtt", p, count=100 + p))
        store.close()
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage("rtt") == (0, 7)
        assert [s.count for s in reopened.segments("rtt")] == [
            100 + p for p in range(7)
        ]
        assert reopened.spec_dict("rtt") == make_spec("exact", name="rtt").to_dict()

    def test_append_continues_after_reopen(self, store, tmp_path):
        store.append(period_segment("rtt", 0))
        store.close()
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.append(period_segment("rtt", 1)) is True
        assert reopened.coverage("rtt") == (0, 2)

    def test_torn_tail_truncated(self, store, tmp_path):
        for p in range(4):
            store.append(period_segment("rtt", p))
        store.close()
        path = tmp_path / "hist" / "rtt.seg"
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"1234abcd {\"kind\": \"segment\", \"trunc")
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage("rtt") == (0, 4)
        assert reopened.torn_records_dropped == 1
        assert path.stat().st_size == intact

    def test_corrupt_mid_file_drops_tail(self, store, tmp_path):
        for p in range(6):
            store.append(period_segment("rtt", p))
        store.close()
        path = tmp_path / "hist" / "rtt.seg"
        lines = path.read_bytes().splitlines(keepends=True)
        corrupted = bytearray(lines[3])
        corrupted[12] ^= 0xFF
        path.write_bytes(b"".join(lines[:3]) + bytes(corrupted) + b"".join(lines[4:]))
        reopened = SegmentStore(str(tmp_path / "hist"))
        # Committed history ends at the last intact prefix record.
        assert reopened.coverage("rtt") == (0, 2)

    def test_torn_spec_record_drops_file(self, tmp_path):
        directory = tmp_path / "hist"
        directory.mkdir()
        SegmentStore(str(directory)).close()  # writes the manifest
        (directory / "rtt.seg").write_bytes(b"00000000 {\"kind\": ")
        store = SegmentStore(str(directory))
        assert store.metrics() == []
        assert not (directory / "rtt.seg").exists()

    def test_foreign_metric_record_treated_as_torn(self, store, tmp_path):
        store.append(period_segment("rtt", 0))
        store.close()
        with open(tmp_path / "hist" / "rtt.seg", "ab") as handle:
            handle.write(encode_line(period_segment("other", 1).to_record()))
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage("rtt") == (0, 1)


class TestDirectoryValidation:
    def test_fresh_directory_created_with_manifest(self, tmp_path):
        SegmentStore(str(tmp_path / "a" / "b"))
        assert (tmp_path / "a" / "b" / "MANIFEST.json").exists()

    def test_path_is_file_rejected(self, tmp_path):
        path = tmp_path / "file"
        path.write_text("x")
        with pytest.raises(StoreError, match="file, not a"):
            SegmentStore(str(path))

    def test_foreign_manifest_rejected(self, tmp_path):
        directory = tmp_path / "hist"
        directory.mkdir()
        (directory / "MANIFEST.json").write_text('{"format": "something-else"}')
        with pytest.raises(StoreError, match="not a history-store manifest"):
            SegmentStore(str(directory))

    def test_newer_store_version_rejected(self, tmp_path):
        directory = tmp_path / "hist"
        directory.mkdir()
        (directory / "MANIFEST.json").write_text(
            '{"format": "repro-history-store", "version": 999}'
        )
        with pytest.raises(StoreError, match="newer release"):
            SegmentStore(str(directory))

    def test_logs_without_manifest_rejected(self, tmp_path):
        directory = tmp_path / "hist"
        directory.mkdir()
        (directory / "rtt.seg").write_bytes(
            encode_line(spec_record("rtt", {"name": "rtt"}))
        )
        with pytest.raises(StoreError, match="no manifest"):
            SegmentStore(str(directory))

    def test_unknown_metric_query_actionable(self, store):
        with pytest.raises(StoreError, match="registered|not in this store"):
            store.segments("nope")


class TestRetention:
    def test_prune_drops_old_segments(self, store):
        for p in range(10):
            store.append(period_segment("rtt", p))
        dropped = store.prune(max_periods=4)
        assert dropped == 6
        assert store.coverage("rtt") == (6, 10)

    def test_prune_never_cuts_inside_a_segment(self, tmp_path):
        store = SegmentStore(str(tmp_path / "hist"))
        store.register(make_spec("exact", name="rtt"))
        for p in range(8):
            store.append(real_segment("rtt", p))
        store.compact(rollup_periods=4, min_age=0)
        # Horizon falls inside the second rollup: it must survive whole.
        assert store.prune(max_periods=2) == 1
        assert store.coverage("rtt") == (4, 8)

    def test_prune_persists_across_reopen(self, store, tmp_path):
        for p in range(6):
            store.append(period_segment("rtt", p))
        store.prune(max_periods=2)
        store.close()
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage("rtt") == (4, 6)

    def test_append_continues_after_prune(self, store):
        for p in range(6):
            store.append(period_segment("rtt", p))
        store.prune(max_periods=2)
        assert store.append(period_segment("rtt", 6)) is True
        assert store.coverage("rtt") == (4, 7)

    def test_pruned_range_query_actionable(self, store):
        for p in range(6):
            store.append(period_segment("rtt", p))
        store.prune(max_periods=2)
        with pytest.raises(StoreError, match="retention"):
            store.covering("rtt", 0, 2)

    def test_maintain_runs_policy(self, tmp_path):
        store = SegmentStore(
            str(tmp_path / "hist"),
            retention=RetentionPolicy(max_periods=4, rollup_periods=2),
        )
        store.register(make_spec("exact", name="rtt"))
        for p in range(10):
            store.append(real_segment("rtt", p))
        report = store.maintain()
        assert report["rollups_built"] > 0
        assert report["segments_dropped"] > 0
        assert store.coverage("rtt") == (6, 10)

    def test_retention_from_dict(self):
        policy = RetentionPolicy.from_dict(
            {"max_periods": 100, "rollup_periods": 10, "rollup_min_age": 5}
        )
        assert policy == RetentionPolicy(100, 10, 5)

    def test_retention_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown retention key"):
            RetentionPolicy.from_dict({"keep": 5})

    def test_retention_bad_values_rejected(self):
        with pytest.raises(ValueError, match="max_periods"):
            RetentionPolicy(max_periods=0)
        with pytest.raises(ValueError, match="rollup_min_age"):
            RetentionPolicy(rollup_min_age=-1)


class TestCovering:
    def test_exact_cover_returned_in_order(self, store):
        for p in range(8):
            store.append(period_segment("rtt", p))
        segments = store.covering("rtt", 2, 6)
        assert [(s.start_period, s.end_period) for s in segments] == [
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
        ]

    def test_empty_range_rejected(self, store):
        store.append(period_segment("rtt", 0))
        with pytest.raises(StoreError, match="empty"):
            store.covering("rtt", 3, 3)

    def test_beyond_history_actionable(self, store):
        store.append(period_segment("rtt", 0))
        with pytest.raises(StoreError, match="outside committed history"):
            store.covering("rtt", 0, 5)

    def test_non_int_bounds_rejected(self, store):
        store.append(period_segment("rtt", 0))
        with pytest.raises(StoreError, match="ints"):
            store.covering("rtt", 0.0, 1)

    def test_stats_shape(self, store):
        for p in range(3):
            store.append(period_segment("rtt", p))
        stats = store.stats()
        assert stats["metrics"]["rtt"]["segments"] == 3
        assert stats["metrics"]["rtt"]["events"] == 750
        assert stats["metrics"]["rtt"]["next_period"] == 3
        assert stats["duplicates_skipped"] == 0
