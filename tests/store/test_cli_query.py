"""CLI surface: ``query`` subcommand, ``--history``, checkpoint parents.

In-process ``main(argv)`` invocations — exit codes and printed bytes are
the contract under test, including the acceptance criterion that a query
against a server (``--server``) renders the same bytes as one against
the store directory the server writes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.evalkit.cli import main

from tests.store.conftest import PHIS, WINDOW

SPECS = {
    "metrics": [
        {
            "name": "rtt",
            "quantiles": PHIS,
            "window": dict(WINDOW),
            "policy": "exact",
        }
    ]
}


@pytest.fixture()
def specs_path(tmp_path):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(SPECS), encoding="utf-8")
    return str(path)


@pytest.fixture()
def history_dir(tmp_path, specs_path):
    """A history store written by the offline monitor CLI."""
    directory = str(tmp_path / "hist")
    code = main(
        [
            "monitor",
            specs_path,
            "--dataset",
            "uniform",
            "--seed",
            "0",
            "--events",
            "4000",
            "--history",
            directory,
        ]
    )
    assert code == 0
    return directory


class TestQuerySubcommand:
    def test_range_query_renders(self, history_dir, capsys):
        assert main(["query", history_dir, "--metric", "rtt", "--range", "0:16"]) == 0
        out = capsys.readouterr().out
        assert "rtt periods [0, 16)" in out
        assert "p0.5:" in out and "p0.99" in out

    def test_at_query(self, history_dir, capsys):
        assert main(["query", history_dir, "--metric", "rtt", "--at", "3"]) == 0
        assert "periods [3, 4)" in capsys.readouterr().out

    def test_series_query(self, history_dir, capsys):
        assert (
            main(
                [
                    "query",
                    history_dir,
                    "--metric",
                    "rtt",
                    "--range",
                    "0:16",
                    "--step",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("periods [") == 3  # header + 2 buckets

    def test_json_output_is_stable(self, history_dir, capsys):
        assert (
            main(
                [
                    "query",
                    history_dir,
                    "--metric",
                    "rtt",
                    "--range",
                    "0:16",
                    "--json",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        main(["query", history_dir, "--metric", "rtt", "--range", "0:16", "--json"])
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["metric"] == "rtt"
        assert payload["segments_merged"] == 16

    def test_quantile_subset_flag(self, history_dir, capsys):
        assert (
            main(
                [
                    "query",
                    history_dir,
                    "--metric",
                    "rtt",
                    "--range",
                    "0:4",
                    "--quantiles",
                    "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "p0.9:" in out and "p0.5:" not in out

    def test_missing_store_dir_is_actionable(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        with pytest.raises(SystemExit) as excinfo:
            main(["query", missing, "--metric", "rtt", "--at", "0"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err
        assert not os.path.exists(missing)  # the query never creates a store

    def test_requires_exactly_one_selector(self, history_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", history_dir, "--metric", "rtt"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    history_dir,
                    "--metric",
                    "rtt",
                    "--at",
                    "0",
                    "--range",
                    "0:4",
                ]
            )

    def test_step_without_range_rejected(self, history_dir):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", history_dir, "--metric", "rtt", "--at", "0", "--step", "2"])
        assert excinfo.value.code == 2

    def test_bad_range_syntax_rejected(self, history_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", history_dir, "--metric", "rtt", "--range", "5"])
        assert excinfo.value.code == 2

    def test_out_of_history_range_is_exit_2(self, history_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", history_dir, "--metric", "rtt", "--range", "0:9999"])
        assert excinfo.value.code == 2
        assert "outside committed history" in capsys.readouterr().err


class TestCheckpointParentDirs:
    """Satellite: ``--checkpoint`` creates missing parent directories."""

    def test_monitor_checkpoint_deep_path(self, specs_path, tmp_path):
        checkpoint = str(tmp_path / "runs" / "deep" / "nest" / "ckpt.json")
        code = main(
            [
                "monitor",
                specs_path,
                "--dataset",
                "uniform",
                "--seed",
                "0",
                "--events",
                "1000",
                "--checkpoint",
                checkpoint,
            ]
        )
        assert code == 0
        assert os.path.exists(checkpoint)

    def test_parent_is_file_exits_2(self, specs_path, tmp_path, capsys):
        blocker = tmp_path / "runs"
        blocker.write_text("not a directory")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "monitor",
                    specs_path,
                    "--dataset",
                    "uniform",
                    "--seed",
                    "0",
                    "--events",
                    "1000",
                    "--checkpoint",
                    str(blocker / "ckpt.json"),
                ]
            )
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_failure_happens_before_ingest(self, specs_path, tmp_path, capsys):
        """The parent check runs up front — a bad path fails fast, not
        after minutes of streaming."""
        blocker = tmp_path / "runs"
        blocker.write_text("x")
        with pytest.raises(SystemExit):
            main(
                [
                    "monitor",
                    specs_path,
                    "--dataset",
                    "uniform",
                    "--seed",
                    "0",
                    "--events",
                    "100000000",
                    "--checkpoint",
                    str(blocker / "ckpt.json"),
                ]
            )
        out = capsys.readouterr().out
        assert "eval=" not in out  # no window ever ran
