"""Micro-benchmarks of the hot kernels underlying the experiments.

These time the per-element costs that explain the macro throughput
numbers: Level-1 accumulation for QLOVE (quantize + frequency map), tree
insert/remove for Exact, GK insert for CMQS, and KLL insert for Random.
"""

import numpy as np
import pytest

from repro.core import QLOVEPolicy
from repro.datastructures import RedBlackTree
from repro.sketches import GKSummary, KLLSketch
from repro.streaming import CountWindow
from repro.workloads import generate_netmon

N = 20_000


@pytest.fixture(scope="module")
def netmon_values():
    return generate_netmon(N, seed=0).tolist()


def test_qlove_accumulate(benchmark, netmon_values):
    window = CountWindow(size=N, period=N)
    policy = QLOVEPolicy([0.5, 0.999], window)

    def run():
        accumulate = policy.accumulate
        for v in netmon_values:
            accumulate(v)
        policy.seal_subwindow()
        policy.expire_subwindow()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_rbtree_insert_remove(benchmark, netmon_values):
    def run():
        tree = RedBlackTree()
        for v in netmon_values:
            tree.insert(v)
        for v in netmon_values:
            tree.remove(v)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_gk_insert(benchmark, netmon_values):
    def run():
        sketch = GKSummary(0.01)
        for v in netmon_values:
            sketch.insert(v)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_gk_capacity_insert(benchmark, netmon_values):
    def run():
        sketch = GKSummary(0.01, capacity=1300)
        for v in netmon_values:
            sketch.insert(v)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kll_insert(benchmark, netmon_values):
    def run():
        sketch = KLLSketch(128)
        for v in netmon_values:
            sketch.insert(v)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_numpy_exact_oracle(benchmark):
    values = generate_netmon(131_072, seed=0)

    def run():
        ordered = np.sort(values)
        return ordered[[65_535, 117_964, 129_770, 130_940]]

    benchmark.pedantic(run, rounds=5, iterations=1)
