"""Stream partitioners: split chunk streams across shards deterministically.

The sharded execution subsystem fans one logical stream out to N shard
accumulators.  Two deterministic strategies are provided:

- **round_robin** — element ``i`` of the stream goes to shard ``i % N``.
  A stateful counter carries across chunk boundaries, so the assignment
  depends only on global element position, never on chunk sizes.  Loads
  are perfectly balanced.
- **hash** — shard is a multiplicative (Fibonacci) hash of the value's
  bit pattern.  Equal values always land on the same shard (useful when a
  shard owns per-value state), and the assignment is independent of
  element position, so re-chunked or re-ordered streams partition the
  same way.

Both preserve within-shard arrival order and are pure functions of the
stream, so sharded runs are reproducible and, for policies with
commutative merges (QLOVE, Exact), shard-count-invariant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.streaming.sources import Chunk

#: 64-bit Fibonacci hashing constant (2^64 / golden ratio, odd).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def available_partitioners() -> list[str]:
    """Names accepted by :class:`StreamPartitioner`."""
    return ["hash", "round_robin"]


def hash_shard_of_key(key: str, n_shards: int) -> int:
    """Shard index of a string key under the same Fibonacci mix.

    The series-index counterpart of :func:`hash_shard_of`: a stable
    64-bit FNV-1a over the key's UTF-8 bytes, mixed with the Fibonacci
    multiplier so sequentially-numbered series keys still spread evenly.
    Deterministic across processes and platforms (no ``hash()`` salting).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be at least 1, got {n_shards}")
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in key.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    mixed = (acc * int(_HASH_MULTIPLIER)) & 0xFFFFFFFFFFFFFFFF
    return int((mixed >> 32) % n_shards)


def hash_shard_of(values: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard index per element under the hash strategy (vectorised).

    The float's raw bit pattern is mixed with a Fibonacci multiplier and
    the top bits select the shard, so nearby values (e.g. quantized
    telemetry) still spread evenly.  Adding 0.0 first collapses -0.0 onto
    +0.0, whose bit patterns differ although the values compare equal.
    """
    normalised = np.ascontiguousarray(values, dtype=np.float64) + 0.0
    bits = normalised.view(np.uint64)
    mixed = bits * _HASH_MULTIPLIER
    # Top 32 bits modulo n: avoids the low-bit regularity of the raw product.
    return ((mixed >> np.uint64(32)) % np.uint64(n_shards)).astype(np.int64)


class StreamPartitioner:
    """Split successive chunks into per-shard sub-chunks.

    One instance is bound to one logical stream: the round-robin strategy
    keeps a global element counter so chunk boundaries never influence the
    assignment.
    """

    def __init__(self, n_shards: int, strategy: str = "round_robin") -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if strategy not in ("round_robin", "hash"):
            raise ValueError(
                f"unknown partitioner {strategy!r}; "
                f"available: {available_partitioners()}"
            )
        self.n_shards = n_shards
        self.strategy = strategy
        self._position = 0  # global elements consumed (round_robin state)

    def split(self, chunk: Chunk) -> List[Chunk]:
        """Partition one chunk; returns ``n_shards`` (possibly empty) chunks.

        Round-robin sub-chunks are zero-copy strided views; hash
        sub-chunks are fancy-indexed copies.
        """
        n = self.n_shards
        if n == 1:
            self._position += len(chunk)
            return [chunk]
        if self.strategy == "round_robin":
            offset = self._position
            self._position += len(chunk)
            # Element i (local) belongs to shard (offset + i) % n, so shard
            # k owns the stride-n elements starting at (k - offset) mod n.
            return [chunk.slice_strided((k - offset) % n, n) for k in range(n)]
        shards = hash_shard_of(chunk.values, n)
        self._position += len(chunk)
        return [chunk.compress(shards == k) for k in range(n)]

    def reset(self) -> None:
        """Restart the stream (round-robin counter back to zero)."""
        self._position = 0
