"""JSON-safety regression: no numpy types may leak into state dicts.

Every policy is driven exclusively with numpy inputs (arrays and
``np.float64`` scalars — the realistic telemetry path), then its
``to_state()`` output is (i) walked recursively asserting every leaf is a
*native* Python type (``np.float64`` is a float subclass, so a plain
``json.dumps`` success is not strict enough) and (ii) serialised with the
stdlib encoder.  ``MetricSpec.to_dict`` gets the same treatment with
numpy-typed parameters.
"""

import json

import numpy as np
import pytest

from repro import serde
from repro.service import MetricSpec, Monitor
from repro.sketches import available_policies, make_policy
from repro.streaming import CountWindow
from repro.streaming.aggregates import (
    CountOperator,
    MaxOperator,
    MeanOperator,
    MinOperator,
    SumOperator,
    VarianceOperator,
)
from repro.streaming.sources import Chunk
from repro.workloads import get_dataset

WINDOW = CountWindow(size=1024, period=256)
PHIS = (0.5, 0.9, 0.99)

CASES = {
    "exact": {},
    "qlove": {},
    "cmqs": {"epsilon": 0.05},
    "am": {"epsilon": 0.05},
    "random": {"epsilon": 0.05, "seed": 5},
    "moment": {"k": 8},
}


def assert_native(obj, path="$"):
    """Fail if any node is not an exact native JSON-compatible type."""
    if obj is None or obj is True or obj is False:
        return
    if type(obj) in (int, float, str):
        return
    if type(obj) is dict:
        for key, value in obj.items():
            assert type(key) is str, f"{path}: non-str dict key {key!r}"
            assert_native(value, f"{path}.{key}")
        return
    if type(obj) is list:
        for i, item in enumerate(obj):
            assert_native(item, f"{path}[{i}]")
        return
    raise AssertionError(
        f"{path}: non-native type {type(obj).__name__} ({obj!r}) leaked "
        "into a state dict"
    )


def test_battery_covers_every_registered_policy():
    assert set(CASES) == set(available_policies())


@pytest.mark.parametrize("name", sorted(CASES))
def test_policy_state_is_strictly_native(name):
    dataset = "normal" if name == "moment" else "netmon"
    values = get_dataset(dataset, 900, seed=0)
    policy = make_policy(name, PHIS, WINDOW, **CASES[name])
    # Numpy-flavoured ingestion: arrays, array slices and np scalars.
    policy.accumulate_batch(values[:256])
    policy.seal_subwindow()
    policy.accumulate_batch(np.asarray(values[256:512], dtype=np.float64))
    policy.seal_subwindow()
    for scalar in values[512:530]:
        policy.accumulate(scalar)  # np.float64, not float
    state = policy.to_state()
    assert_native(state)
    reparsed = json.loads(json.dumps(state))  # stdlib encoder must not raise
    assert reparsed["policy"] == name


def test_metric_spec_to_dict_coerces_numpy_params():
    spec = MetricSpec(
        name="rtt",
        quantiles=np.asarray([0.5, 0.99]),
        window={"size": np.int64(1024), "period": np.int64(256)},
        policy="cmqs",
        policy_params={"epsilon": np.float64(0.05)},
    )
    data = spec.to_dict()
    assert_native(data)
    json.dumps(data)
    assert MetricSpec.from_dict(data).to_dict() == data


def test_monitor_state_is_strictly_native():
    values = get_dataset("netmon", 2000, seed=1)
    monitor = Monitor()
    monitor.register(
        MetricSpec(
            name="rtt",
            quantiles=[0.5, 0.99],
            window={"size": 1000, "period": 250},
            policy="qlove",
            policy_params={"fewk": {"samplek_fraction": 0.02}},
        )
    )
    monitor.observe_batch("rtt", values)
    state = monitor.to_state()
    assert_native(state)
    json.dumps(state)


def test_aggregate_states_are_strictly_native():
    chunk = Chunk(values=np.arange(32, dtype=np.float64))
    for operator in (
        CountOperator(),
        SumOperator(),
        MeanOperator(),
        VarianceOperator(),
        MinOperator(),
        MaxOperator(),
    ):
        state = operator.accumulate_batch(operator.initial_state(), chunk)
        data = operator.state_to_dict(state)
        assert_native(data)
        revived = operator.state_from_dict(json.loads(json.dumps(data)))
        assert operator.compute_result(revived) == operator.compute_result(state)


def test_as_native_coerces_numpy_scalars_and_arrays():
    raw = {
        "a": np.int64(3),
        "b": np.float64(1.5),
        "c": np.asarray([1.0, 2.0]),
        "d": [np.bool_(True), (np.int32(1), "x")],
    }
    native = serde.as_native(raw)
    assert_native(native)
    assert native == {"a": 3, "b": 1.5, "c": [1.0, 2.0], "d": [True, [1, "x"]]}
