"""Policy-level tests: Exact, CMQS, AM, Random, Moment over sliding windows."""

import math
import random

import numpy as np
import pytest

from repro.sketches import (
    AMPolicy,
    CMQSPolicy,
    ExactPolicy,
    MomentPolicy,
    RandomPolicy,
    available_policies,
    make_policy,
)
from repro.streaming import CountWindow

from tests.conftest import drive_policy, exact_quantile, rank_error

PHIS = [0.5, 0.9, 0.99]
WINDOW = CountWindow(size=8000, period=1000)


def uniform_values(n, seed=0):
    rng = random.Random(seed)
    return [rng.uniform(0.0, 1e6) for _ in range(n)]


class TestExact:
    def test_matches_oracle_exactly(self):
        values = uniform_values(20000, seed=1)
        policy = ExactPolicy(PHIS, WINDOW)
        results, slices = drive_policy(policy, values, WINDOW)
        assert len(results) == (20000 - WINDOW.size) // WINDOW.period + 1
        for est, window_values in zip(results, slices):
            for phi in PHIS:
                assert est[phi] == exact_quantile(window_values, phi)

    def test_tree_backend_matches_dict(self):
        values = uniform_values(6000, seed=2)
        window = CountWindow(size=2000, period=500)
        res_dict, _ = drive_policy(ExactPolicy(PHIS, window, backend="dict"), values, window)
        res_tree, _ = drive_policy(ExactPolicy(PHIS, window, backend="tree"), values, window)
        assert res_dict == res_tree

    def test_space_tracks_window(self):
        values = uniform_values(20000, seed=3)
        policy = ExactPolicy(PHIS, WINDOW)
        drive_policy(policy, values, WINDOW)
        # All values unique -> 2 vars per unique + raw buffer ~ 3N.
        assert policy.space_variables() >= 2 * WINDOW.size

    def test_query_before_seal_raises(self):
        policy = ExactPolicy(PHIS, WINDOW)
        policy.accumulate(1.0)
        with pytest.raises(ValueError):
            policy.query()

    def test_expire_without_seal_raises(self):
        with pytest.raises(RuntimeError):
            ExactPolicy(PHIS, WINDOW).expire_subwindow()


class TestCMQS:
    def test_rank_error_within_epsilon(self):
        values = uniform_values(24000, seed=4)
        policy = CMQSPolicy(PHIS, WINDOW, epsilon=0.02)
        results, slices = drive_policy(policy, values, WINDOW)
        for est, window_values in zip(results, slices):
            for phi in PHIS:
                assert rank_error(window_values, est[phi], phi) <= 0.02

    def test_space_far_below_exact_when_capacity_binds(self):
        # capacity = ceil(26 / 0.1) = 260 tuples per 1000-element sub-window.
        values = uniform_values(20000, seed=5)
        policy = CMQSPolicy(PHIS, WINDOW, epsilon=0.1)
        drive_policy(policy, values, WINDOW)
        assert policy.space_variables() < WINDOW.size

    def test_tiny_epsilon_small_subwindow_stores_everything(self):
        # The Figure-4 CMQS(1x) regime: eps=0.02 with 1K sub-windows wants
        # finer granularity than the sub-window holds, so the sketch keeps
        # every element (and is slower than Exact, as the paper shows).
        policy = CMQSPolicy(PHIS, WINDOW, epsilon=0.02)
        assert policy._capacity == WINDOW.period

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            CMQSPolicy(PHIS, WINDOW, epsilon=0.0)

    def test_analytical_space_positive(self):
        assert CMQSPolicy.analytical_space(WINDOW, epsilon=0.02) > 0


class TestAM:
    def test_rank_error_within_epsilon(self):
        values = uniform_values(24000, seed=6)
        policy = AMPolicy(PHIS, WINDOW, epsilon=0.02)
        results, slices = drive_policy(policy, values, WINDOW)
        for est, window_values in zip(results, slices):
            for phi in PHIS:
                assert rank_error(window_values, est[phi], phi) <= 0.02

    def test_heavy_tail_rank_error(self, heavy_tailed_values):
        window = CountWindow(size=8000, period=1000)
        policy = AMPolicy(PHIS, window, epsilon=0.02)
        results, slices = drive_policy(policy, list(heavy_tailed_values), window)
        for est, window_values in zip(results, slices):
            for phi in PHIS:
                assert rank_error(window_values, est[phi], phi) <= 0.02

    def test_dyadic_cover_uses_few_blocks(self):
        values = uniform_values(24000, seed=7)
        policy = AMPolicy(PHIS, WINDOW, epsilon=0.05)
        drive_policy(policy, values, WINDOW)
        # 8 live sub-windows aligned -> cover should be <= log-many blocks.
        cover = policy._cover()
        assert len(cover) <= 2 * (policy._levels + 1)

    def test_non_power_of_two_subwindows(self):
        window = CountWindow(size=6000, period=1000)  # 6 sub-windows
        values = uniform_values(18000, seed=8)
        policy = AMPolicy(PHIS, window, epsilon=0.05)
        results, slices = drive_policy(policy, values, window)
        assert results
        for est, window_values in zip(results, slices):
            assert rank_error(window_values, est[0.5], 0.5) <= 0.05


class TestRandom:
    def test_rank_error_reasonable(self):
        values = uniform_values(24000, seed=9)
        policy = RandomPolicy(PHIS, WINDOW, epsilon=0.02, seed=0)
        results, slices = drive_policy(policy, values, WINDOW)
        errors = [
            rank_error(window_values, est[phi], phi)
            for est, window_values in zip(results, slices)
            for phi in PHIS
        ]
        # Probabilistic bound: average well under epsilon, worst within 3x.
        assert float(np.mean(errors)) <= 0.02
        assert max(errors) <= 0.06

    def test_deterministic_with_seed(self):
        values = uniform_values(16000, seed=10)
        res_a, _ = drive_policy(RandomPolicy(PHIS, WINDOW, seed=5), values, WINDOW)
        res_b, _ = drive_policy(RandomPolicy(PHIS, WINDOW, seed=5), values, WINDOW)
        assert res_a == res_b

    def test_space_bounded(self):
        values = uniform_values(24000, seed=11)
        policy = RandomPolicy(PHIS, WINDOW, epsilon=0.02, seed=0)
        drive_policy(policy, values, WINDOW)
        assert policy.space_variables() < WINDOW.size


class TestMoment:
    def test_uniform_quantiles_close(self):
        values = uniform_values(24000, seed=12)
        policy = MomentPolicy(PHIS, WINDOW, k=12)
        results, slices = drive_policy(policy, values, WINDOW)
        for est, window_values in zip(results, slices):
            for phi in [0.5, 0.9]:
                truth = exact_quantile(window_values, phi)
                assert abs(est[phi] - truth) / truth < 0.10

    def test_normal_median_close(self):
        rng = np.random.default_rng(13)
        values = rng.normal(1e6, 5e4, size=24000).tolist()
        policy = MomentPolicy([0.5], WINDOW, k=12)
        results, slices = drive_policy(policy, values, WINDOW)
        for est, window_values in zip(results, slices):
            truth = exact_quantile(window_values, 0.5)
            assert abs(est[0.5] - truth) / truth < 0.02

    def test_maxent_method(self):
        rng = np.random.default_rng(14)
        values = rng.normal(1000.0, 100.0, size=16000).tolist()
        policy = MomentPolicy([0.5, 0.9], WINDOW, k=8, method="maxent")
        results, slices = drive_policy(policy, values, WINDOW)
        for est, window_values in zip(results, slices):
            truth = exact_quantile(window_values, 0.9)
            assert abs(est[0.9] - truth) / truth < 0.05

    def test_constant_stream(self):
        values = [7.0] * 16000
        policy = MomentPolicy(PHIS, WINDOW, k=12)
        results, _ = drive_policy(policy, values, WINDOW)
        for est in results:
            for phi in PHIS:
                assert est[phi] == 7.0

    def test_space_is_tiny(self):
        values = uniform_values(24000, seed=15)
        policy = MomentPolicy(PHIS, WINDOW, k=12)
        drive_policy(policy, values, WINDOW)
        # (count, min, max) + K raw + K log power sums per sub-window.
        assert policy.space_variables() <= (3 + 2 * 12) * (WINDOW.subwindow_count + 1)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            MomentPolicy(PHIS, WINDOW, method="sorcery")


class TestRegistry:
    def test_available(self):
        names = available_policies()
        for expected in ["exact", "cmqs", "am", "random", "moment", "qlove"]:
            assert expected in names

    def test_make_policy_types(self):
        assert isinstance(make_policy("exact", PHIS, WINDOW), ExactPolicy)
        assert isinstance(make_policy("cmqs", PHIS, WINDOW, epsilon=0.05), CMQSPolicy)
        assert isinstance(make_policy("am", PHIS, WINDOW), AMPolicy)
        assert isinstance(make_policy("random", PHIS, WINDOW), RandomPolicy)
        assert isinstance(make_policy("moment", PHIS, WINDOW, k=8), MomentPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("tdigest", PHIS, WINDOW)

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            make_policy("exact", [], WINDOW)
        with pytest.raises(ValueError):
            make_policy("exact", [1.5], WINDOW)
