"""Sharded execution: partitioners, shard invariance, parallel backend.

The headline guarantees locked down here:

- ``ShardedEngine`` with ``n_shards=1`` emits a ``WindowResult`` stream
  bit-identical to ``StreamEngine.run_chunked`` (same indices, counts,
  ends and result mappings);
- QLOVE and Exact results are deterministic and invariant to the shard
  count and the partitioning strategy — their in-flight states merge
  commutatively (frequency-map multisets);
- the multiprocessing backend produces the same results as the serial
  one.
"""

from functools import partial

import numpy as np
import pytest

from repro.core import QLOVEPolicy
from repro.sketches import make_policy
from repro.sketches.base import PolicyOperator
from repro.streaming import (
    CountWindow,
    Query,
    ShardedEngine,
    StreamEngine,
    StreamPartitioner,
    TimeWindow,
    chunk_stream,
    run_sharded,
)
from repro.streaming.aggregates import MeanOperator
from repro.streaming.partition import hash_shard_of
from repro.streaming.sources import Chunk
from repro.workloads import generate_netmon, stream_dataset_sharded

PHIS = [0.5, 0.9, 0.99, 0.999]
WINDOW = CountWindow(size=8_000, period=2_000)
STREAM_LENGTH = 20_000
#: Deliberately not a divisor of the period: chunks straddle boundaries.
CHUNK_SIZE = 1_700


@pytest.fixture(scope="module")
def values():
    return generate_netmon(STREAM_LENGTH, seed=7)


def reference_results(values, name, **params):
    policy = make_policy(name, PHIS, WINDOW, **params)
    query = (
        Query(chunk_stream(values, CHUNK_SIZE))
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(policy))
    )
    return StreamEngine().run_chunked_to_list(query)


class TestPartitioner:
    def test_round_robin_is_chunk_boundary_independent(self):
        data = np.arange(100, dtype=np.float64)
        coarse = StreamPartitioner(3, "round_robin")
        fine = StreamPartitioner(3, "round_robin")
        got_coarse = [list() for _ in range(3)]
        for part, bucket in zip(coarse.split(Chunk(data)), got_coarse):
            bucket.extend(part.values.tolist())
        got_fine = [list() for _ in range(3)]
        for start in range(0, 100, 7):
            chunk = Chunk(data[start : start + 7])
            for part, bucket in zip(fine.split(chunk), got_fine):
                bucket.extend(part.values.tolist())
        assert got_coarse == got_fine
        # Element i goes to shard i % n.
        assert got_coarse[0][:3] == [0.0, 3.0, 6.0]

    def test_round_robin_preserves_multiset_and_order(self):
        data = np.arange(50, dtype=np.float64)
        parts = StreamPartitioner(7, "round_robin").split(Chunk(data))
        for part in parts:
            assert list(part.values) == sorted(part.values)
        recombined = sorted(v for part in parts for v in part.values.tolist())
        assert recombined == data.tolist()

    def test_hash_routes_equal_values_to_one_shard(self):
        data = np.array([5.0, 1.0, 5.0, 2.0, 5.0, 1.0] * 10)
        shards = hash_shard_of(data, 4)
        for value in (5.0, 1.0, 2.0):
            owners = set(shards[data == value].tolist())
            assert len(owners) == 1

    def test_hash_treats_signed_zeros_as_equal(self):
        data = np.array([0.0, -0.0, 1.0, -0.0, 0.0])
        shards = hash_shard_of(data, 3)
        assert len(set(shards[[0, 1, 3, 4]].tolist())) == 1

    def test_hash_preserves_multiset(self, values):
        parts = StreamPartitioner(5, "hash").split(Chunk(values))
        recombined = np.sort(np.concatenate([part.values for part in parts]))
        assert np.array_equal(recombined, np.sort(values))

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="n_shards"):
            StreamPartitioner(0)
        with pytest.raises(ValueError, match="unknown partitioner"):
            StreamPartitioner(2, "modulo")

    def test_timestamps_follow_their_elements(self):
        chunk = Chunk(
            np.arange(10, dtype=np.float64),
            timestamps=np.arange(10, dtype=np.float64) * 0.5,
        )
        parts = StreamPartitioner(2, "round_robin").split(chunk)
        assert np.array_equal(parts[0].timestamps, parts[0].values * 0.5)


class TestShardInvariance:
    def test_one_shard_is_bit_identical_to_run_chunked(self, values):
        """The acceptance-criteria check, on the quickstart workload."""
        reference = reference_results(values, "qlove")
        sharded = run_sharded(
            values,
            WINDOW,
            lambda: QLOVEPolicy(PHIS, WINDOW),
            n_shards=1,
            chunk_size=CHUNK_SIZE,
        )
        assert sharded == reference

    @pytest.mark.parametrize("name", ["qlove", "exact"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_commutative_policies_are_shard_count_invariant(
        self, values, name, n_shards
    ):
        reference = reference_results(values, name)
        sharded = run_sharded(
            values,
            WINDOW,
            lambda: make_policy(name, PHIS, WINDOW),
            n_shards=n_shards,
            chunk_size=CHUNK_SIZE,
        )
        assert sharded == reference

    @pytest.mark.parametrize("name", ["qlove", "exact"])
    def test_hash_partitioner_gives_the_same_answers(self, values, name):
        reference = reference_results(values, name)
        sharded = run_sharded(
            values,
            WINDOW,
            lambda: make_policy(name, PHIS, WINDOW),
            n_shards=3,
            partitioner="hash",
            chunk_size=CHUNK_SIZE,
        )
        assert sharded == reference

    def test_sharded_runs_are_deterministic(self, values):
        factory = lambda: QLOVEPolicy(PHIS, WINDOW)  # noqa: E731
        first = run_sharded(values, WINDOW, factory, n_shards=4)
        second = run_sharded(values, WINDOW, factory, n_shards=4)
        assert first == second

    def test_sketch_policies_stay_within_bounds(self, values):
        """Random is not bit-stable across shard counts, but stays accurate."""
        from repro.evalkit.metrics import rank_error

        sharded = run_sharded(
            values,
            WINDOW,
            lambda: make_policy("random", PHIS, WINDOW, epsilon=0.05),
            n_shards=4,
            chunk_size=CHUNK_SIZE,
        )
        final = sharded[-1]
        window_values = np.sort(values[int(final.end) - WINDOW.size : int(final.end)])
        for phi in PHIS[:-1]:  # 0.999 needs few-k-style tails, not rank bounds
            assert rank_error(window_values, final.result[phi], phi) <= 0.05

    def test_vectorised_filters_apply_before_partitioning(self, values):
        threshold = float(np.median(values))
        reference_policy = make_policy("exact", PHIS, CountWindow(2000, 1000))
        query = (
            Query(chunk_stream(values, CHUNK_SIZE))
            .windowed_by(CountWindow(2000, 1000))
            .where_values(lambda v: v > threshold)
            .aggregate(PolicyOperator(reference_policy))
        )
        reference = StreamEngine().run_chunked_to_list(query)
        sharded_query = (
            Query(chunk_stream(values, CHUNK_SIZE))
            .windowed_by(CountWindow(2000, 1000))
            .where_values(lambda v: v > threshold)
        )
        sharded = ShardedEngine(3).run_chunked_to_list(
            sharded_query, lambda: make_policy("exact", PHIS, CountWindow(2000, 1000))
        )
        assert sharded == reference

    def test_emit_partial_parity(self, values):
        policy = make_policy("exact", PHIS, WINDOW)
        query = (
            Query(chunk_stream(values[:6_000], CHUNK_SIZE))
            .windowed_by(WINDOW)
            .aggregate(PolicyOperator(policy))
        )
        reference = StreamEngine(emit_partial=True).run_chunked_to_list(query)
        sharded = run_sharded(
            values[:6_000],
            WINDOW,
            lambda: make_policy("exact", PHIS, WINDOW),
            n_shards=2,
            chunk_size=CHUNK_SIZE,
            emit_partial=True,
        )
        assert sharded == reference

    def test_query_carrying_policy_operator_is_accepted(self, values):
        reference = reference_results(values, "qlove")
        master = QLOVEPolicy(PHIS, WINDOW)
        query = (
            Query(chunk_stream(values, CHUNK_SIZE))
            .windowed_by(WINDOW)
            .aggregate(PolicyOperator(master))
        )
        sharded = ShardedEngine(2).run_chunked_to_list(
            query, lambda: QLOVEPolicy(PHIS, WINDOW)
        )
        assert sharded == reference

    def test_space_report_accounts_master_and_shards(self, values):
        engine = ShardedEngine(3)
        query = Query(chunk_stream(values, CHUNK_SIZE)).windowed_by(WINDOW)
        list(engine.run_chunked(query, lambda: QLOVEPolicy(PHIS, WINDOW)))
        report = engine.space_report()
        assert report["n_shards"] == 3
        assert len(report["shard_spaces"]) == 3
        assert report["total_space"] == report["master_space"] + sum(
            report["shard_spaces"]
        )
        assert report["master_space"] > 0


class TestParallelBackend:
    def test_parallel_matches_serial(self, values):
        factory = partial(QLOVEPolicy, PHIS, WINDOW)
        serial = run_sharded(
            values[:12_000], WINDOW, factory, n_shards=2, chunk_size=CHUNK_SIZE
        )
        parallel = run_sharded(
            values[:12_000],
            WINDOW,
            factory,
            n_shards=2,
            chunk_size=CHUNK_SIZE,
            parallel=True,
        )
        assert parallel == serial


class TestValidation:
    def test_rejects_time_windows(self):
        query = Query(iter(())).windowed_by(TimeWindow(size=10.0, period=5.0))
        with pytest.raises(ValueError, match="count-based"):
            ShardedEngine(2).run_chunked(query, lambda: QLOVEPolicy(PHIS, WINDOW))

    def test_rejects_event_level_filters(self):
        query = (
            Query(iter(()))
            .windowed_by(WINDOW)
            .where(lambda e: e.value > 0)
        )
        with pytest.raises(ValueError, match="event-level"):
            ShardedEngine(2).run_chunked(query, lambda: QLOVEPolicy(PHIS, WINDOW))

    def test_rejects_missing_window(self):
        with pytest.raises(ValueError, match="no window"):
            ShardedEngine(2).run_chunked(
                Query(iter(())), lambda: QLOVEPolicy(PHIS, WINDOW)
            )

    def test_rejects_non_policy_operator(self):
        query = Query(iter(())).windowed_by(WINDOW).aggregate(MeanOperator())
        with pytest.raises(ValueError, match="PolicyOperator"):
            ShardedEngine(2).run_chunked(query, lambda: QLOVEPolicy(PHIS, WINDOW))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedEngine(0)

    def test_rejects_query_operator_with_prior_state(self, values):
        """A reused policy would double-count its old state into every window."""
        used = QLOVEPolicy(PHIS, WINDOW)
        used.accumulate_batch(values[: WINDOW.period])
        used.seal_subwindow()
        query = (
            Query(chunk_stream(values, CHUNK_SIZE))
            .windowed_by(WINDOW)
            .aggregate(PolicyOperator(used))
        )
        with pytest.raises(ValueError, match="prior state"):
            ShardedEngine(2).run_chunked(query, lambda: QLOVEPolicy(PHIS, WINDOW))
        # reset() makes the same policy acceptable again.
        used.reset()
        results = ShardedEngine(2).run_chunked_to_list(
            query, lambda: QLOVEPolicy(PHIS, WINDOW)
        )
        assert results == reference_results(values, "qlove")


class TestShardedWorkloads:
    def test_sharded_dataset_matches_partitioner_routing(self):
        shards = stream_dataset_sharded(
            "netmon", 5_000, n_shards=3, chunk_size=1_700, seed=7
        )
        from repro.workloads import get_dataset

        original = get_dataset("netmon", 5_000, seed=7)
        for k, chunks in enumerate(shards):
            got = np.concatenate([chunk.values for chunk in chunks])
            assert np.array_equal(got, original[k::3])

    def test_fed_nodes_merge_to_the_sharded_answer(self):
        """Per-node streams + coordinator: pooled live sub-windows."""
        shards = stream_dataset_sharded("netmon", 8_000, n_shards=2, seed=7)
        window = CountWindow(size=8_000 // 2, period=2_000 // 2)
        # Feed each node its shard stream; seal per (local) period.
        nodes = []
        for chunks in shards:
            node = QLOVEPolicy(PHIS, window)
            stream = np.concatenate([chunk.values for chunk in chunks])
            for start in range(0, len(stream), window.period):
                node.accumulate_batch(stream[start : start + window.period])
                node.seal_subwindow()
            nodes.append(node)
        from repro.core import FleetCoordinator

        merged = FleetCoordinator(lambda: QLOVEPolicy(PHIS, window)).combine(nodes)
        assert merged.live_summaries() == sum(node.live_summaries() for node in nodes)
        estimates = merged.query()
        assert set(estimates) == set(PHIS)


class TestOperatorContract:
    def test_policy_operator_merge_and_reset_delegate(self, values):
        a = PolicyOperator(make_policy("exact", PHIS, WINDOW))
        b = PolicyOperator(make_policy("exact", PHIS, WINDOW))
        a.policy.accumulate_batch(values[:100])
        b.policy.accumulate_batch(values[100:200])
        a.merge(b)
        a.seal_subwindow()
        expected = dict(
            zip(
                PHIS,
                np.sort(values[:200])[
                    [int(np.ceil(phi * 200)) - 1 for phi in PHIS]
                ].tolist(),
            )
        )
        assert a.compute_result() == expected
        a.reset()
        assert a.policy.space_variables() == 0

    def test_policy_operator_merge_rejects_foreign_operators(self):
        operator = PolicyOperator(make_policy("exact", PHIS, WINDOW))

        class Foreign:
            pass

        with pytest.raises(TypeError, match="cannot merge"):
            operator.merge(Foreign())

    def test_subwindow_operator_merge_default_raises(self):
        from repro.streaming.operator import SubWindowOperator

        class Plain(SubWindowOperator):
            def accumulate(self, event):
                pass

            def seal_subwindow(self):
                pass

            def expire_subwindow(self):
                pass

            def compute_result(self):
                return None

        with pytest.raises(NotImplementedError, match="merge"):
            Plain().merge(Plain())

    def test_incremental_merge_states(self):
        from repro.streaming.aggregates import (
            CountOperator,
            MaxOperator,
            MeanOperator,
            MinOperator,
            SumOperator,
            VarianceOperator,
        )
        from repro.streaming.event import Event

        data_a = [1.0, 2.0, 3.0]
        data_b = [10.0, 20.0]
        for operator in (
            CountOperator(),
            SumOperator(),
            MeanOperator(),
            VarianceOperator(),
            MinOperator(),
            MaxOperator(),
        ):
            state_a = operator.initial_state()
            state_b = operator.initial_state()
            combined = operator.initial_state()
            for i, value in enumerate(data_a):
                state_a = operator.accumulate(state_a, Event(i, value))
                combined = operator.accumulate(combined, Event(i, value))
            for i, value in enumerate(data_b):
                state_b = operator.accumulate(state_b, Event(i, value))
                combined = operator.accumulate(combined, Event(i, value))
            merged = operator.merge_states(state_a, state_b)
            assert operator.compute_result(merged) == pytest.approx(
                operator.compute_result(combined)
            )
