"""Direct tests for the KLL sketch and the Moment solver internals."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import KLLSketch
from repro.sketches.moments import MomentState, MomentSolver


class TestKLLBasics:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KLLSketch(3)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            KLLSketch(16).query(0.5)

    def test_invalid_phi(self):
        s = KLLSketch(16)
        s.insert(1.0)
        with pytest.raises(ValueError):
            s.query(1.5)

    def test_small_stream_exact(self):
        s = KLLSketch(64)
        for v in range(1, 11):
            s.insert(float(v))
        assert s.query(0.5) == 5.0
        assert s.n == 10

    def test_weight_conservation(self):
        s = KLLSketch(32, rng=random.Random(0))
        for v in range(5000):
            s.insert(float(v))
        assert sum(w for _, w in s.weighted_items()) == pytest.approx(5000, rel=0.02)

    def test_space_bounded(self):
        s = KLLSketch(64, rng=random.Random(1))
        for v in range(50_000):
            s.insert(random.random())
        # Compactors hold ~3k items regardless of n.
        assert s.item_count() < 64 * 6

    def test_merge_combines_counts(self):
        a = KLLSketch(64, rng=random.Random(2))
        b = KLLSketch(64, rng=random.Random(3))
        for v in range(1000):
            a.insert(float(v))
            b.insert(float(v + 1000))
        a.merge(b)
        assert a.n == 2000
        # Median of the union should be near 1000.
        assert abs(a.query(0.5) - 1000) < 2000 * 0.1


class TestKLLAccuracy:
    @pytest.mark.parametrize("k,bound", [(32, 0.08), (128, 0.03)])
    def test_rank_error_shrinks_with_k(self, k, bound):
        rng = random.Random(4)
        values = [rng.uniform(0, 1e6) for _ in range(30_000)]
        s = KLLSketch(k, rng=random.Random(5))
        for v in values:
            s.insert(v)
        ordered = np.sort(values)
        worst = 0.0
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            est = s.query(phi)
            target = max(1, math.ceil(phi * len(values)))
            lo = int(np.searchsorted(ordered, est, side="left")) + 1
            hi = int(np.searchsorted(ordered, est, side="right"))
            if not lo <= target <= hi:
                worst = max(worst, min(abs(target - lo), abs(target - hi)) / len(values))
        assert worst <= bound

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=10, max_size=1500))
    def test_property_query_within_range(self, raw):
        s = KLLSketch(32, rng=random.Random(0))
        for v in raw:
            s.insert(float(v))
        est = s.query(0.5)
        assert min(raw) <= est <= max(raw)


class TestMomentState:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MomentState(1)

    def test_add_matches_batch(self):
        a, b = MomentState(6), MomentState(6)
        values = np.array([1.5, 2.5, 100.0, 7.0])
        for v in values:
            a.add(float(v))
        b.add_batch(values)
        assert a.count == b.count
        np.testing.assert_allclose(a.sums, b.sums)
        np.testing.assert_allclose(a.log_sums, b.log_sums)
        assert a.minimum == b.minimum and a.maximum == b.maximum

    def test_merge_additivity(self):
        a, b, c = MomentState(4), MomentState(4), MomentState(4)
        for v in [1.0, 2.0]:
            a.add(v)
            c.add(v)
        for v in [3.0, 4.0]:
            b.add(v)
            c.add(v)
        a.merge(b)
        np.testing.assert_allclose(a.sums, c.sums)
        assert a.count == c.count

    def test_log_invalidated_by_nonpositive(self):
        state = MomentState(4)
        state.add(5.0)
        assert state.log_valid
        state.add(-1.0)
        assert not state.log_valid
        with pytest.raises(ValueError):
            state.log_view()

    def test_log_view_transforms(self):
        state = MomentState(4)
        state.add_batch(np.array([math.e, math.e**2]))
        view = state.log_view()
        assert view.minimum == pytest.approx(1.0)
        assert view.maximum == pytest.approx(2.0)
        assert view.sums[0] == pytest.approx(3.0)  # log sums become raw


class TestMomentSolver:
    def test_standardized_moments_bounded(self):
        state = MomentState(12)
        state.add_batch(np.random.default_rng(0).uniform(0, 1e6, 10_000))
        moments = MomentSolver.standardized_moments(state)
        assert moments[0] == 1.0
        assert np.all(np.abs(moments) <= 1.0)

    def test_uniform_quadrature_nodes_are_gauss_legendre(self):
        # Moments of U[-1,1] -> Gauss-Legendre nodes of the quadrature.
        state = MomentState(12)
        state.add_batch(np.random.default_rng(1).uniform(-1, 1, 500_000))
        moments = MomentSolver.standardized_moments(state)
        nodes, weights = MomentSolver._gauss_quadrature(moments)
        reference, _ = np.polynomial.legendre.leggauss(len(nodes))
        np.testing.assert_allclose(np.sort(nodes), reference, atol=0.02)
        assert weights.sum() == pytest.approx(1.0)

    def test_two_point_distribution_recovered(self):
        state = MomentState(8)
        state.add_batch(np.array([10.0] * 700 + [20.0] * 300))
        solver = MomentSolver("quadrature")
        q = solver.quantiles(state, [0.5, 0.9])
        assert abs(q[0] - 10.0) < 2.0
        assert abs(q[1] - 20.0) < 2.0

    def test_heavy_tail_uses_log_domain(self):
        rng = np.random.default_rng(2)
        values = rng.lognormal(7, 1.0, size=50_000)
        state = MomentState(12)
        state.add_batch(values)
        solver = MomentSolver("maxent")
        median = solver.quantiles(state, [0.5])[0]
        truth = float(np.median(values))
        assert abs(median - truth) / truth < 0.05

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MomentSolver().quantiles(MomentState(4), [0.5])

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            MomentSolver("bayes")
