"""Quickstart: the paper's Qmonitor query on a synthetic NetMon stream.

Builds the monitoring query of Section 5.1 —

    Qmonitor = Stream
        .Window(windowSize, period)
        .Where(e => e.errorCode != 0 is inverted here: we keep OK probes)
        .Aggregate(c => c.Quantile(0.5, 0.9, 0.99, 0.999))

— runs it with the QLOVE policy, and cross-checks the final evaluation
against numpy-exact quantiles.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CountWindow, PolicyOperator, Query, QLOVEPolicy, StreamEngine, value_stream
from repro.evalkit import exact_quantiles
from repro.workloads import generate_netmon

PHIS = [0.5, 0.9, 0.99, 0.999]
WINDOW = CountWindow(size=100_000, period=10_000)
STREAM_LENGTH = 200_000


def main() -> None:
    values = generate_netmon(STREAM_LENGTH, seed=7)
    policy = QLOVEPolicy(PHIS, WINDOW)
    query = (
        Query(value_stream(values))
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(policy))
    )

    print(f"QLOVE over a sliding window of {WINDOW.size:,} RTTs, "
          f"evaluated every {WINDOW.period:,} events\n")
    print(f"{'eval':>4}  " + "  ".join(f"Q{phi:<5}" for phi in PHIS))
    last = None
    for result in StreamEngine().run(query):
        row = "  ".join(f"{result.result[phi]:6.0f}" for phi in PHIS)
        print(f"{result.index:>4}  {row}")
        last = result

    # Cross-check the final window against exact order statistics.
    window_values = values[int(last.end) - WINDOW.size : int(last.end)]
    truth = exact_quantiles(window_values, PHIS)
    print("\nfinal window, exact vs QLOVE:")
    for phi, exact in zip(PHIS, truth):
        estimate = last.result[phi]
        err = 100 * abs(estimate - exact) / exact
        print(f"  Q{phi:<5}  exact={exact:8.0f}  qlove={estimate:8.0f}  "
              f"rel.err={err:5.2f}%")
    print(f"\nstate: {policy.peak_space_variables():,} variables "
          f"(window holds {WINDOW.size:,} elements)")


if __name__ == "__main__":
    main()
