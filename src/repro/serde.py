"""Durable-state toolkit: versioned, JSON-safe ``to_state``/``from_state``.

Every stateful component in this repository — sketches, datastructures,
policies, streaming operators, the ``Monitor`` facade — exposes the same
serialization contract (the ``toJson``/``fromJson`` shape Histogrammar
uses for its mergeable aggregates):

- ``to_state() -> dict`` returns a plain-data snapshot: only ``dict`` /
  ``list`` / ``str`` / native ``int`` / ``float`` / ``bool`` / ``None``
  values, so ``json.dumps`` with the stdlib encoder always succeeds and
  the dump round-trips through ``json.loads`` bit-exactly (Python floats
  serialise shortest-round-trip).
- ``from_state(state)`` rebuilds an instance whose future behaviour is
  indistinguishable from the original's — the property the
  checkpoint/resume machinery relies on for bit-identical resumption.

Each state dict carries a ``kind`` tag and an integer ``version``.
Loaders accept every version up to their current one and raise
:class:`StateError` with an actionable message for anything newer or
unrecognised, so a state produced by a future release fails loudly
instead of deserialising garbage.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

#: JSON types a state dict may contain (checked by tests, produced by
#: :func:`as_native`).
NATIVE_TYPES = (dict, list, str, int, float, bool, type(None))


class StateError(ValueError):
    """A state dict cannot be deserialised (wrong kind/version/shape)."""


class StateCompatWarning(UserWarning):
    """A state dict carries fields this build does not know.

    Emitted (not raised) when a loader meets extra fields on a *known*
    version: a newer minor release may annotate states with additional
    fields, and ignoring them loses nothing the current build could use.
    Unknown *versions* still raise :class:`StateError` — a version bump
    signals a layout change that cannot be read safely.
    """


def as_native(obj: Any) -> Any:
    """Recursively coerce numpy scalars/arrays to native Python types.

    Applied to every ``to_state``/``to_dict`` output so ``json.dumps``
    with the stdlib encoder never raises on leaked ``np.int64`` counts or
    ``np.float64`` values (``np.float64`` *is* a float subclass and would
    serialise, but the contract is strict native types throughout).
    """
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, bool) or obj is None or isinstance(obj, (str, int, float)):
        return obj
    if isinstance(obj, Mapping):
        return {key: as_native(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [as_native(item) for item in obj]
    return obj


def header(kind: str, version: int) -> Dict[str, Any]:
    """The common ``{"kind", "version"}`` prefix of every state dict."""
    return {"kind": kind, "version": version}


def check_state(state: Any, kind: str, version: int, context: str) -> Mapping:
    """Validate a state dict's shape, kind tag and version.

    Raises :class:`StateError` with an actionable message when ``state``
    is not a mapping, tagged with a different ``kind``, or carries a
    version this build does not know (newer release / corrupted dump).
    Returns ``state`` so loaders can chain on it.
    """
    if not isinstance(state, Mapping):
        raise StateError(
            f"{context}: expected a state mapping with kind={kind!r}, got "
            f"{type(state).__name__}; pass the dict produced by to_state() "
            "(after json.loads if it was serialised)"
        )
    got_kind = state.get("kind")
    if got_kind != kind:
        raise StateError(
            f"{context}: state kind mismatch: expected {kind!r}, got "
            f"{got_kind!r}; this state was produced by a different component"
        )
    got_version = state.get("version")
    if not isinstance(got_version, int) or isinstance(got_version, bool):
        raise StateError(
            f"{context}: state has no integer 'version' field (got "
            f"{got_version!r}); the dump is corrupted or not a "
            "to_state() output"
        )
    if got_version < 1 or got_version > version:
        raise StateError(
            f"{context}: unknown state version {got_version} for kind "
            f"{kind!r}; this build reads versions 1..{version} — the state "
            "was written by a newer release (upgrade this installation) or "
            "is corrupted"
        )
    return state


def warn_unknown_fields(
    state: Mapping, fields: Sequence[str], context: str
) -> List[str]:
    """Warn about (and report) state fields this build does not know.

    The forward-compat half of the loader contract: a state written by a
    newer *minor* release may carry extra fields; loaders that call this
    ignore them loudly (one :class:`StateCompatWarning`) instead of
    failing.  The ``kind``/``version`` header keys are always known.
    Returns the unknown field names, sorted.
    """
    unknown = sorted(set(state) - set(fields) - {"kind", "version"})
    if unknown:
        warnings.warn(
            f"{context}: ignoring unknown field(s) {unknown} (written by a "
            "newer release; upgrade this installation to use them)",
            StateCompatWarning,
            stacklevel=2,
        )
    return unknown


def require_fields(state: Mapping, fields: Sequence[str], context: str) -> None:
    """Fail with an actionable message when required state keys are absent."""
    missing = [name for name in fields if name not in state]
    if missing:
        raise StateError(
            f"{context}: state is missing required field(s) {missing} "
            f"(present: {sorted(k for k in state if k not in ('kind', 'version'))}); "
            "the dump is truncated or not a to_state() output"
        )


# ----------------------------------------------------------------------
# Float-keyed mappings (quantile dicts)
# ----------------------------------------------------------------------
def pairs(mapping: Mapping[float, Any]) -> List[List[Any]]:
    """A float-keyed mapping as ``[[key, value], ...]`` (JSON-safe).

    ``json.dumps`` would silently stringify float dict keys; the pair-list
    form round-trips keys exactly.
    """
    return [[as_native(key), as_native(value)] for key, value in mapping.items()]


def mapping_from_pairs(items: Iterable[Sequence[Any]]) -> Dict[float, Any]:
    """Rebuild a float-keyed mapping from its :func:`pairs` form."""
    return {float(key): value for key, value in items}


# ----------------------------------------------------------------------
# random.Random state
# ----------------------------------------------------------------------
def rng_to_state(rng: random.Random) -> List[Any]:
    """``random.Random`` internal state in JSON-safe form."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_from_state(data: Sequence[Any], context: str = "rng") -> random.Random:
    """Rebuild a ``random.Random`` positioned exactly where it was saved."""
    if not isinstance(data, (list, tuple)) or len(data) != 3:
        raise StateError(
            f"{context}: malformed RNG state (expected a "
            "[version, internal, gauss_next] triple)"
        )
    rng = random.Random()
    try:
        rng.setstate((data[0], tuple(data[1]), data[2]))
    except (TypeError, ValueError) as exc:
        raise StateError(f"{context}: cannot restore RNG state: {exc}") from None
    return rng


def float_list(values: Iterable[Any]) -> List[float]:
    """A sequence of numbers as a list of native floats."""
    return [float(v) for v in values]
