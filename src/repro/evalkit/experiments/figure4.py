"""Figure 4: throughput of QLOVE vs CMQS (1x/5x/10x epsilon) vs Exact.

NetMon; 1K period, 100K window; CMQS epsilon swept from 0.02 (1x) to 0.2
(10x).  The paper's shape: QLOVE fastest; CMQS at small epsilon slower
than Exact, recovering as epsilon loosens.
"""

from __future__ import annotations

from typing import Dict

from repro.evalkit.experiments.common import (
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    scaled_window,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.throughput import measure_throughput
from repro.sketches.registry import make_policy
from repro.workloads import generate_netmon

PAPER_FIG4_WINDOW = 100_000
PAPER_FIG4_PERIOD = 1_000
EPSILON_BASE = 0.02


def run(
    scale: float = 1.0, seed: int = 0, evaluations: int = 50, repeats: int = 1
) -> ExperimentResult:
    """Regenerate Figure 4 as a throughput table."""
    window = scaled_window(PAPER_FIG4_WINDOW, PAPER_FIG4_PERIOD, scale)
    values = generate_netmon(stream_length(window, evaluations), seed=seed)

    configs = [
        ("QLOVE", "qlove", {}),
        ("CMQS(1x)", "cmqs", {"epsilon": EPSILON_BASE}),
        ("CMQS(5x)", "cmqs", {"epsilon": 5 * EPSILON_BASE}),
        ("CMQS(10x)", "cmqs", {"epsilon": 10 * EPSILON_BASE}),
        ("Exact", "exact", {}),
        # Transparency row beyond the paper: Exact re-implemented on a
        # hash map + sort-on-demand, the strongest Exact we can build in
        # CPython (see DESIGN.md §5.1).
        ("Exact(dict)", "exact", {"backend": "dict"}),
    ]
    table = Table(
        f"Figure 4: throughput (NetMon, window={window.size}, period={window.period})",
        ["Policy", "M ev/s", "vs Exact"],
    )
    data: Dict[str, float] = {}
    exact_rate = None
    results = []
    for label, name, params in configs:
        outcome = measure_throughput(
            lambda name=name, params=params: make_policy(
                name, QMONITOR_PHIS, window, **params
            ),
            values,
            window,
            repeats=repeats,
        )
        results.append((label, outcome))
        data[label] = outcome.million_events_per_second
        if label == "Exact":
            exact_rate = outcome.events_per_second
    for label, outcome in results:
        ratio = outcome.events_per_second / exact_rate if exact_rate else float("nan")
        table.add_row(label, f"{outcome.million_events_per_second:.3f}", f"{ratio:.2f}x")

    return ExperimentResult(
        name="figure4", tables=[table], data=data, notes=describe_scale(scale)
    )
