"""Legacy setup shim.

The execution environment is offline and ships setuptools without the
``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
