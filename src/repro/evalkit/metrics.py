"""The paper's evaluation metrics (Section 5.1).

- **Average relative value error** (%):
  ``(1/n) sum |a_i - b_i| / b_i * 100`` over query evaluations, where
  ``a_i`` is the estimate and ``b_i`` the exact value.
- **Rank error** e': ``(1/n) sum |r - r'_i| / N`` where ``r`` is the exact
  target rank and ``r'_i`` the rank of the returned value.
- **Space**: number of variables held in memory (policies report this via
  ``space_variables()`` / ``peak_space_variables()``).

All exact quantiles use the paper's rank convention: the phi-quantile of N
sorted elements is the element of 1-based rank ``ceil(phi N)``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Mapping, Sequence

import numpy as np


def exact_quantile(values: Sequence[float], phi: float) -> float:
    """Exact phi-quantile of ``values`` (rank ``ceil(phi N)``)."""
    return exact_quantiles(values, [phi])[0]


def exact_quantiles(values: Sequence[float], phis: Sequence[float]) -> List[float]:
    """Exact quantiles of ``values`` for several phis (one sort)."""
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = len(ordered)
    if n == 0:
        raise ValueError("exact_quantiles() on empty data")
    out = []
    for phi in phis:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        rank = max(1, math.ceil(round(phi * n, 9)))
        out.append(float(ordered[rank - 1]))
    return out


def relative_value_error(estimate: float, truth: float) -> float:
    """``|a - b| / b`` (dimensionless; multiply by 100 for the paper's %)."""
    if truth == 0.0:
        raise ValueError("exact value is zero; relative error undefined")
    return abs(estimate - truth) / abs(truth)


def rank_error(sorted_window: np.ndarray, estimate: float, phi: float) -> float:
    """Normalised rank distance ``|r - r'| / N`` of an estimate.

    ``sorted_window`` must be sorted ascending.  When the estimate's value
    occurs in the window, the closest matching rank is used (duplicates
    give the estimate the benefit of the doubt, as the paper's e' does).
    """
    n = len(sorted_window)
    if n == 0:
        raise ValueError("rank_error() on empty window")
    target = max(1, math.ceil(round(phi * n, 9)))
    lo = int(np.searchsorted(sorted_window, estimate, side="left")) + 1
    hi = int(np.searchsorted(sorted_window, estimate, side="right"))
    if lo <= target <= hi:
        return 0.0
    distance = min(abs(target - lo), abs(target - hi))
    return distance / n


class ErrorAccumulator:
    """Accumulates per-evaluation value and rank errors per quantile."""

    def __init__(self, phis: Sequence[float]) -> None:
        self.phis = tuple(phis)
        self._value_errors: Dict[float, List[float]] = defaultdict(list)
        self._rank_errors: Dict[float, List[float]] = defaultdict(list)
        self.evaluations = 0

    def observe(
        self,
        estimates: Mapping[float, float],
        window_values: np.ndarray,
    ) -> None:
        """Record one query evaluation against the exact window content."""
        ordered = np.sort(np.asarray(window_values, dtype=np.float64))
        n = len(ordered)
        self.evaluations += 1
        for phi in self.phis:
            rank = max(1, math.ceil(round(phi * n, 9)))
            truth = float(ordered[rank - 1])
            estimate = estimates[phi]
            self._value_errors[phi].append(relative_value_error(estimate, truth))
            self._rank_errors[phi].append(rank_error(ordered, estimate, phi))

    def mean_value_error(self, phi: float) -> float:
        """Average relative value error (fraction, not %)."""
        errors = self._value_errors[phi]
        if not errors:
            return math.nan
        return float(np.mean(errors))

    def mean_rank_error(self, phi: float) -> float:
        """Average normalised rank error e'."""
        errors = self._rank_errors[phi]
        if not errors:
            return math.nan
        return float(np.mean(errors))

    def max_rank_error(self, phi: float) -> float:
        """Worst normalised rank error across evaluations."""
        errors = self._rank_errors[phi]
        if not errors:
            return math.nan
        return float(np.max(errors))

    def value_error_percent(self, phi: float) -> float:
        """Average relative value error in percent (the paper's unit)."""
        return 100.0 * self.mean_value_error(phi)
