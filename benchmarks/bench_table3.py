"""Table 3: top-k merging — error vs cache fraction."""


def test_table3(run_experiment):
    result = run_experiment("table3", scale=0.5, evaluations=16)
    data = result.data
    periods = sorted(data["none"])

    for period in periods:
        none_err = data["none"][period]["error"]
        frac05 = data[0.5][period]["error"]
        # Half the exact-guarantee cache repairs the tail to ~optimal
        # (paper: 0.35-0.68%); always better than no few-k.
        assert frac05 <= none_err, period
        assert frac05 < 0.02, period
        # Space grows linearly with the fraction.
        assert data[0.1][period]["cache"] < data[0.5][period]["cache"], period

    # The paper's ~5% target is reachable with the small 0.1 fraction on
    # at least most periods (statistical noise allows one excursion).
    small_fraction_ok = sum(
        1 for period in periods if data[0.1][period]["error"] < 0.06
    )
    assert small_fraction_ok >= len(periods) - 1
