"""Experiment registry for the CLI and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict

from repro.evalkit.experiments import (
    ablation_backend,
    fewk_throughput,
    figure1,
    figure4,
    figure5,
    pareto,
    redundancy,
    sharded,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.evalkit.experiments.common import ExperimentResult

ExperimentFn = Callable[..., ExperimentResult]

_EXPERIMENTS: Dict[str, ExperimentFn] = {
    "figure1": figure1.run,
    "table1": table1.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "redundancy": redundancy.run,
    "pareto": pareto.run,
    "sharded": sharded.run,
    "fewk_throughput": fewk_throughput.run,
    "ablation_backend": ablation_backend.run,
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`get_experiment`."""
    return sorted(_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentFn:
    """Look up an experiment's ``run`` function by name."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None
