"""Per-event vs batched ingestion throughput (the PR-1 fast path).

The per-event loop pays interpreter overhead for every element: one Event
object, one operator dispatch, one policy method call.  The batched path
pulls numpy chunks from the source, slices them at sub-window boundaries,
and lets policies bulk-ingest whole slices (np.unique + frequency-map
counts for QLOVE/Exact, compaction-interval extends for Random).

Acceptance gate for the batch path: QLOVE must ingest at least 3x faster
batched than per-event while producing bit-identical WindowResults (the
equivalence is asserted here on the measured runs and, exhaustively, in
tests/sketches/test_batch_equivalence.py).

A second gate covers the fused batched kernel (``SubWindowBuilder.extend``:
unique → vectorised quantize → regroup in C) against the pre-fusion
per-distinct-value loop it replaced (kept as ``extend_reference``): on a
low-redundancy stream, where nearly every element pays the quantizer, the
fused path must be at least 3x faster; on the highly redundant netmon
stream, where the old path was already mostly dict hits, it must not
regress.  Bit-identity of the two paths is pinned in
tests/sketches/test_fused_ingest.py.
"""

import numpy as np
import pytest

from repro.evalkit import Table, measure_throughput, measure_throughput_batched
from repro.sketches import make_policy
from repro.streaming import CountWindow, ExecutionPlan, Query, StreamEngine
from repro.workloads import generate_netmon

N = 200_000
WINDOW = CountWindow(size=32_000, period=8_000)
PHIS = [0.5, 0.9, 0.99, 0.999]
CHUNK_SIZE = 16_384

#: Policies worth timing on both paths (Exact/Random exploit bulk inserts;
#: CMQS rides the generic fallback and shows the floor of the win).
POLICIES = ["qlove", "exact", "random", "cmqs"]


@pytest.fixture(scope="module")
def netmon_values():
    return generate_netmon(N, seed=0)


def _speedup(name, values):
    factory = lambda: make_policy(name, PHIS, WINDOW)  # noqa: E731
    per_event = measure_throughput(factory, values, WINDOW)
    batched = measure_throughput_batched(
        factory, values, WINDOW, chunk_size=CHUNK_SIZE
    )
    return per_event, batched


def test_batched_ingest_speedup(benchmark, netmon_values, bench_json_sink):
    """Table: M ev/s on both paths plus the batched/per-event ratio."""

    def run():
        return {name: _speedup(name, netmon_values) for name in POLICIES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_json_sink(
        "batched",
        {
            "workload": "netmon",
            "events": N,
            "window": {"size": WINDOW.size, "period": WINDOW.period},
            "chunk_size": CHUNK_SIZE,
            "policies": {
                name: {
                    "per_event_events_per_s": per_event.events_per_second,
                    "batched_events_per_s": batched.events_per_second,
                    "speedup": batched.events_per_second
                    / per_event.events_per_second,
                }
                for name, (per_event, batched) in results.items()
            },
        },
    )

    table = Table(
        f"Ingestion throughput, NetMon {N:,} elements, "
        f"window {WINDOW.size // 1000}K/{WINDOW.period // 1000}K, "
        f"chunks of {CHUNK_SIZE:,}",
        ["policy", "per-event M ev/s", "batched M ev/s", "speedup"],
    )
    for name, (per_event, batched) in results.items():
        table.add_row(
            name,
            f"{per_event.million_events_per_second:.3f}",
            f"{batched.million_events_per_second:.3f}",
            f"{batched.events_per_second / per_event.events_per_second:.1f}x",
        )
    print()
    print(table.render())

    qlove_per_event, qlove_batched = results["qlove"]
    ratio = qlove_batched.events_per_second / qlove_per_event.events_per_second
    assert ratio >= 3.0, f"QLOVE batched path only {ratio:.1f}x faster"
    # Both paths must have evaluated the same number of windows.
    for per_event, batched in results.values():
        assert per_event.evaluations == batched.evaluations


def _fused_vs_reference(dataset_values):
    """QLOVE batched throughput with the fused kernel vs the pre-fusion
    reference loop (same engine, same chunks; only the builder's batched
    entry point differs)."""

    def fused_factory():
        return make_policy("qlove", PHIS, WINDOW)

    def reference_factory():
        policy = make_policy("qlove", PHIS, WINDOW)
        # The policy pre-binds accumulate_batch to the builder's fused
        # extend at init; rebind to the preserved pre-fusion loop.
        policy.accumulate_batch = policy._builder.extend_reference
        return policy

    reference = measure_throughput_batched(
        reference_factory, dataset_values, WINDOW, chunk_size=CHUNK_SIZE
    )
    fused = measure_throughput_batched(
        fused_factory, dataset_values, WINDOW, chunk_size=CHUNK_SIZE
    )
    return reference, fused


def test_fused_kernel_speedup(benchmark, netmon_values, bench_json_sink):
    """Gate the fused single-pass kernel against the reference loop on
    both ends of the redundancy spectrum."""
    from repro.workloads import generate_uniform

    workloads = {
        "uniform": generate_uniform(N, seed=0),
        "netmon": netmon_values,
    }

    def run():
        return {
            name: _fused_vs_reference(values)
            for name, values in workloads.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_json_sink(
        "fused",
        {
            "events": N,
            "window": {"size": WINDOW.size, "period": WINDOW.period},
            "chunk_size": CHUNK_SIZE,
            "workloads": {
                name: {
                    "reference_events_per_s": reference.events_per_second,
                    "fused_events_per_s": fused.events_per_second,
                    "speedup": fused.events_per_second
                    / reference.events_per_second,
                }
                for name, (reference, fused) in results.items()
            },
        },
    )

    table = Table(
        f"Fused vs reference QLOVE ingest, {N:,} elements, "
        f"window {WINDOW.size // 1000}K/{WINDOW.period // 1000}K",
        ["workload", "reference M ev/s", "fused M ev/s", "speedup"],
    )
    for name, (reference, fused) in results.items():
        table.add_row(
            name,
            f"{reference.million_events_per_second:.3f}",
            f"{fused.million_events_per_second:.3f}",
            f"{fused.events_per_second / reference.events_per_second:.1f}x",
        )
    print()
    print(table.render())

    uniform_reference, uniform_fused = results["uniform"]
    ratio = uniform_fused.events_per_second / uniform_reference.events_per_second
    assert ratio >= 3.0, (
        f"fused kernel only {ratio:.1f}x faster on the low-redundancy "
        f"stream (gate: 3x)"
    )
    netmon_reference, netmon_fused = results["netmon"]
    netmon_ratio = (
        netmon_fused.events_per_second / netmon_reference.events_per_second
    )
    # The redundant stream was already cheap; just don't regress it
    # (0.8 leaves headroom for CI timer noise).
    assert netmon_ratio >= 0.8, (
        f"fused kernel regressed the redundant stream to "
        f"{netmon_ratio:.2f}x of the reference path"
    )
    for reference, fused in results.values():
        assert reference.evaluations == fused.evaluations


def test_batched_results_identical(netmon_values):
    """The measured speedup is not bought with accuracy: same results."""
    from repro.sketches.base import PolicyOperator

    engine = StreamEngine()
    reference = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy("qlove", PHIS, WINDOW))),
        ExecutionPlan(mode="events"),
    )
    batched = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy("qlove", PHIS, WINDOW))),
        ExecutionPlan(mode="batched", chunk_size=CHUNK_SIZE),
    )
    assert batched == reference
