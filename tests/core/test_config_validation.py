"""Validation hardening: QLOVEConfig / FewKConfig reject bad inputs early."""

import pytest

from repro.core.config import FewKConfig, QLOVEConfig


# ----------------------------------------------------------------------
# FewKConfig
# ----------------------------------------------------------------------
def test_fewk_defaults_are_valid():
    FewKConfig()  # must not raise


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"ts_threshold": -1}, "ts_threshold"),
        ({"ts_threshold": "10"}, "must be a number"),
        ({"ts_threshold": True}, "must be a number"),
        ({"topk_fraction": 1.5}, "topk_fraction"),
        ({"topk_fraction": -0.1}, "topk_fraction"),
        ({"topk_fraction": "half"}, "must be a number"),
        ({"samplek_fraction": -0.01}, "samplek_fraction"),
        ({"samplek_fraction": 2.0}, "samplek_fraction"),
        ({"budget": -5}, "budget"),
        ({"burst_alpha": 0.0}, "burst_alpha"),
        ({"burst_alpha": 1.0}, "burst_alpha"),
        ({"burst_alpha": "5%"}, "must be a number"),
    ],
)
def test_fewk_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FewKConfig(**kwargs)


def test_fewk_error_messages_are_actionable():
    with pytest.raises(ValueError, match=r"fraction of the exact"):
        FewKConfig(topk_fraction=2.0)
    with pytest.raises(ValueError, match="significance level"):
        FewKConfig(burst_alpha=5.0)


# ----------------------------------------------------------------------
# QLOVEConfig
# ----------------------------------------------------------------------
def test_qlove_defaults_are_valid():
    QLOVEConfig()  # must not raise


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"backend": "btree"}, "backend"),
        ({"quantize_digits": 0}, "quantize_digits"),
        ({"quantize_digits": -3}, "quantize_digits"),
        ({"quantize_digits": "3"}, "integer"),
        ({"quantize_digits": True}, "integer"),
        ({"quantize_digits": 2.5}, "integer"),
    ],
)
def test_qlove_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        QLOVEConfig(**kwargs)


def test_qlove_rejects_raw_dict_fewk():
    """A dict is not silently coerced mid-run — the error says what to do."""
    with pytest.raises(ValueError, match="FewKConfig"):
        QLOVEConfig(fewk={"samplek_fraction": 0.1})


def test_qlove_quantize_digits_none_disables_compression():
    assert QLOVEConfig(quantize_digits=None).quantize_digits is None


def test_numpy_scalars_are_accepted():
    """Budgets and digit counts often come out of numpy arithmetic."""
    import numpy as np

    assert FewKConfig(budget=np.int64(100)).budget == 100
    assert FewKConfig(ts_threshold=np.int64(10), samplek_fraction=np.float64(0.1))
    assert QLOVEConfig(quantize_digits=np.int64(3)).quantize_digits == 3


def test_with_fewk_builds_nested_config():
    config = QLOVEConfig.with_fewk(samplek_fraction=0.02)
    assert config.fewk == FewKConfig(samplek_fraction=0.02)
