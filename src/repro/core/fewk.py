"""Few-k merging: repairing high quantiles from retained tail values.

Section 4: each sub-window contributes a small number of its largest
values; the window-level answer for a high quantile is drawn from the
merged tails instead of the Level-2 average when (i) the quantile is
statistically inefficient (top-k merging) or (ii) bursty traffic was
detected (sample-k merging, prioritised).

Both pipelines are "standing": the summaries always carry the configured
tail material, and the outcome selection happens at query time
(Section 4.3 "Selecting outcomes").
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional, Sequence

from repro import serde
from repro.core.burst import BurstDetector
from repro.core.config import FewKConfig, exact_tail_size
from repro.core.summary import SubWindowSummary
from repro.streaming.windows import CountWindow

#: State-format version written by :meth:`FewKMerger.to_state`.
FEWK_STATE_VERSION = 1

#: Result-provenance labels, exposed for diagnostics and experiments.
SOURCE_LEVEL2 = "level2"
SOURCE_TOPK = "topk"
SOURCE_SAMPLEK = "samplek"


class FewKMerger:
    """Few-k pipelines for a single high quantile ``phi``."""

    def __init__(self, phi: float, window: CountWindow, config: FewKConfig) -> None:
        self.phi = phi
        self.window = window
        self.config = config
        self.topk_enabled = config.topk_active(phi, window)
        self.kt = config.resolve_kt(phi, window) if self.topk_enabled else 0
        self.ks = config.resolve_ks(phi, window)
        self.samplek_enabled = self.ks > 0
        self._detector: Optional[BurstDetector] = None
        if self.samplek_enabled and config.burst_detection:
            self._detector = BurstDetector(alpha=config.burst_alpha)
        # Burst flags aligned with the live summaries: the window is treated
        # as bursty while *any* live sub-window tripped the detector, since
        # an old burst keeps dominating the tail until it expires.
        self._burst_flags: Deque[bool] = deque()
        self.last_source = SOURCE_LEVEL2

    @property
    def relevant(self) -> bool:
        """Whether this merger can ever override the Level-2 estimate."""
        return self.topk_enabled or self.samplek_enabled

    # ------------------------------------------------------------------
    # Lifecycle mirroring the policy's sub-window events
    # ------------------------------------------------------------------
    def on_seal(self, summary: SubWindowSummary) -> None:
        """Observe a sealed sub-window (feeds the burst detector)."""
        flag = False
        if self._detector is not None:
            samples = summary.samples.get(self.phi, ())
            if samples:
                flag = self._detector.observe(samples)
        self._burst_flags.append(flag)

    def on_expire(self) -> None:
        """Forget the oldest sub-window's burst flag."""
        if self._burst_flags:
            self._burst_flags.popleft()

    @property
    def window_bursty(self) -> bool:
        """True while any live sub-window is flagged as bursty."""
        return any(self._burst_flags)

    def merge_from(self, other: "FewKMerger") -> None:
        """Adopt another merger's live burst flags (fleet/shard pooling).

        The flags append after this merger's own, matching the order the
        donor's summaries are appended to the policy's deque; a burst on
        either side keeps the combined window bursty.
        """
        self._burst_flags.extend(other._burst_flags)

    def reset(self) -> None:
        """Forget all burst history and provenance (stream restart)."""
        self._burst_flags.clear()
        self.last_source = SOURCE_LEVEL2
        if self._detector is not None:
            self._detector.reset()

    # ------------------------------------------------------------------
    # Durable state (configuration is derived; only history persists)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Burst history and provenance, JSON-safe.

        The k_t/k_s plan and detector configuration re-derive from the
        policy's :class:`FewKConfig`, so the state carries only what
        accumulated at runtime.
        """
        state = serde.header("fewk_merger", FEWK_STATE_VERSION)
        state["phi"] = float(self.phi)
        state["burst_flags"] = [bool(flag) for flag in self._burst_flags]
        state["last_source"] = self.last_source
        state["detector"] = (
            None if self._detector is None else self._detector.to_state()
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Adopt history captured by :meth:`to_state` (same config)."""
        serde.check_state(state, "fewk_merger", FEWK_STATE_VERSION, "few-k merger")
        serde.require_fields(
            state, ("phi", "burst_flags", "last_source", "detector"), "few-k merger"
        )
        if float(state["phi"]) != self.phi:
            raise serde.StateError(
                f"few-k merger: state is for quantile {state['phi']}, this "
                f"merger tracks {self.phi} (spec/state mismatch)"
            )
        self._burst_flags = deque(bool(flag) for flag in state["burst_flags"])
        self.last_source = state["last_source"]
        if state["detector"] is not None and self._detector is not None:
            self._detector = BurstDetector.from_state(state["detector"])

    # ------------------------------------------------------------------
    # The two merging pipelines
    # ------------------------------------------------------------------
    def topk_estimate(self, summaries: Iterable[SubWindowSummary]) -> Optional[float]:
        """Top-k merging: N(1-phi)-th largest of the merged caches."""
        merged: list[float] = []
        total = 0
        for summary in summaries:
            merged.extend(summary.topk.get(self.phi, ()))
            total += summary.count
        if not merged or total == 0:
            return None
        merged.sort(reverse=True)
        rank = exact_tail_size(self.phi, total)
        return merged[min(rank, len(merged)) - 1]

    def samplek_estimate(self, summaries: Iterable[SubWindowSummary]) -> Optional[float]:
        """Sample-k merging: read the target rank off the merged samples.

        Each retained sample stands for ``1/alpha`` original tail values
        (alpha = k_s / N(1-phi)); scanning the merged samples by their
        representation weights until ``N(1-phi)`` tail values are covered
        is the weighted form of the paper's "alpha N(1-phi)-th largest
        value" rule, exact for any sampling interval.
        """
        merged: list[tuple[float, int]] = []
        total = 0
        for summary in summaries:
            samples = summary.samples.get(self.phi, ())
            weights = summary.sample_weights.get(self.phi, ())
            merged.extend(zip(samples, weights))
            total += summary.count
        if not merged or total == 0:
            return None
        merged.sort(key=lambda pair: pair[0], reverse=True)
        target = exact_tail_size(self.phi, total)
        covered = 0.0
        previous_value: Optional[float] = None
        for value, weight in merged:
            reached = covered + weight
            if reached >= target:
                if previous_value is None or weight == 0:
                    return value
                # Interpolate within the block the target rank falls into:
                # a sample is the smallest of the ranks it represents, so the
                # value at a fractional in-block rank lies between this
                # sample and the previous (larger) one.
                fraction = (target - covered) / weight
                return previous_value + (value - previous_value) * fraction
            covered = reached
            previous_value = value
        return merged[-1][0]

    # ------------------------------------------------------------------
    # Outcome selection (Section 4.3)
    # ------------------------------------------------------------------
    def estimate(
        self, summaries: Sequence[SubWindowSummary], level2_value: float
    ) -> float:
        """Pick among sample-k, top-k and Level-2 for this evaluation."""
        if self.samplek_enabled and self.window_bursty:
            value = self.samplek_estimate(summaries)
            if value is not None:
                self.last_source = SOURCE_SAMPLEK
                return value
        if self.topk_enabled:
            value = self.topk_estimate(summaries)
            if value is not None:
                self.last_source = SOURCE_TOPK
                return value
        self.last_source = SOURCE_LEVEL2
        return level2_value
