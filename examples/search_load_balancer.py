"""Tail-latency-aware load balancing across search index serving nodes.

The paper's second motivating use case: "a predefined set of quantiles
are computed on query response times across clusters and are employed by
load balancers so as to meet strict service-level agreements" [9, Dean &
Barroso, The Tail at Scale].  Two ISN clusters serve queries; cluster B
degrades midway.  A balancer watches each cluster's sliding-window Q0.95
via QLOVE and shifts traffic toward the healthier cluster.

Run:  python examples/search_load_balancer.py
"""

import numpy as np

from repro import CountWindow, QLOVEPolicy
from repro.workloads import generate_search

PHI = 0.95
WINDOW = CountWindow(size=8_000, period=1_000)
ROUNDS = 24
QUERIES_PER_ROUND = 2_000
SLA_US = 150_000.0


class ClusterMonitor:
    """Drives one cluster's response times through a QLOVE policy."""

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.policy = QLOVEPolicy([PHI], WINDOW)
        self._rng = np.random.default_rng(seed)
        self._sealed = 0

    def observe_round(self, latencies: np.ndarray) -> float:
        """Feed one round of latencies; return the current Q0.95 estimate."""
        for value in latencies:
            self.policy.accumulate(float(value))
        self.policy.seal_subwindow()
        self._sealed += 1
        if self._sealed > WINDOW.subwindow_count:
            self.policy.expire_subwindow()
            self._sealed -= 1
        return self.policy.query()[PHI]


def cluster_latencies(rng, count, slowdown=1.0):
    """Search-like latencies with an optional degradation factor."""
    base = generate_search(count, seed=int(rng.integers(0, 2**31)))
    return np.minimum(base * slowdown, 200_000.0)


def main() -> None:
    rng = np.random.default_rng(3)
    monitors = {"A": ClusterMonitor("A", seed=1), "B": ClusterMonitor("B", seed=2)}
    share_b = 0.5  # traffic fraction routed to cluster B

    print(f"balancing on Q{PHI} (SLA {SLA_US / 1000:.0f} ms); "
          f"cluster B degrades 3x during rounds 8-15\n")
    print(f"{'round':>5}  {'A p95(ms)':>10}  {'B p95(ms)':>10}  {'B share':>8}  note")
    for round_no in range(ROUNDS):
        slowdown_b = 3.0 if 8 <= round_no < 16 else 1.0
        n_b = max(200, int(QUERIES_PER_ROUND * share_b))
        n_a = QUERIES_PER_ROUND - n_b
        p95_a = monitors["A"].observe_round(cluster_latencies(rng, n_a))
        p95_b = monitors["B"].observe_round(
            cluster_latencies(rng, n_b, slowdown=slowdown_b)
        )
        # Proportional controller: shift share toward the faster cluster.
        total = p95_a + p95_b
        target_b = p95_a / total if total > 0 else 0.5
        share_b = 0.7 * share_b + 0.3 * target_b
        note = ""
        if p95_b > SLA_US:
            note = "B over SLA -> shedding"
        elif slowdown_b > 1.0:
            note = "B degraded"
        print(f"{round_no:>5}  {p95_a / 1000:>10.1f}  {p95_b / 1000:>10.1f}  "
              f"{share_b:>7.0%}  {note}")

    print("\nThe balancer needs per-round tail estimates over a sliding "
          "window; QLOVE provides them with a few hundred variables of "
          "state per cluster instead of the full window.")
    print(f"cluster A monitor state: "
          f"{monitors['A'].policy.peak_space_variables():,} variables")


if __name__ == "__main__":
    main()
