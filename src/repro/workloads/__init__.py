"""Workload generators: the datasets of the paper's evaluation (Section 5).

The two proprietary datasets are replaced by synthetic generators
calibrated to every statistic the paper publishes about them (see
DESIGN.md §3 for the substitution argument):

- :func:`~repro.workloads.netmon.generate_netmon` — datacenter RTTs:
  lognormal body (median ~798 us, >90% below ~1,247 us) with a Pareto tail
  reaching ~74,265 us, values in integer microseconds (high redundancy).
- :func:`~repro.workloads.search.generate_search` — ISN response times
  with the 200 ms SLA truncation that concentrates density in the tail.

Fully synthetic datasets follow the paper's specifications directly:

- :mod:`~repro.workloads.synthetic` — Normal(1e6, 5e4), Uniform(90, 110)
  and the Pareto dataset (Q0.5 = 20, Q0.999 = 10,000).
- :mod:`~repro.workloads.ar1` — AR(1) streams with configurable psi.
- :mod:`~repro.workloads.bursts` — burst injection and the E1–E4 tail
  placement patterns of Figure 3.
- :mod:`~repro.workloads.precision` — low-precision derivation (Section
  5.4 data-redundancy study).
- :mod:`~repro.workloads.datacenter` — a Pingmesh-like probe simulator
  emitting timestamped events with sources and error codes.
"""

from repro.workloads.ar1 import generate_ar1
from repro.workloads.bursts import BurstPattern, inject_bursts, pattern_window
from repro.workloads.datacenter import Datacenter, DatacenterConfig, Incident
from repro.workloads.netmon import generate_netmon
from repro.workloads.precision import reduce_precision
from repro.workloads.registry import (
    available_datasets,
    get_dataset,
    stream_dataset,
    stream_dataset_sharded,
)
from repro.workloads.search import generate_search
from repro.workloads.synthetic import (
    generate_normal,
    generate_pareto,
    generate_uniform,
)

__all__ = [
    "BurstPattern",
    "Datacenter",
    "DatacenterConfig",
    "Incident",
    "available_datasets",
    "generate_ar1",
    "generate_netmon",
    "generate_normal",
    "generate_pareto",
    "generate_search",
    "generate_uniform",
    "get_dataset",
    "inject_bursts",
    "pattern_window",
    "reduce_precision",
    "stream_dataset",
    "stream_dataset_sharded",
]
