"""Accuracy runner: drive a policy over a stream against the exact oracle.

For every period boundary (after the first full window) the policy's
estimates are compared with numpy-exact quantiles of the same window
content; errors accumulate into an :class:`AccuracyReport` carrying the
paper's three metric families (value error, rank error, space).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.evalkit.metrics import ErrorAccumulator
from repro.sketches.base import PolicyOperator, QuantilePolicy
from repro.sketches.registry import make_policy
from repro.streaming import ExecutionPlan, Query, StreamEngine, value_stream
from repro.streaming.windows import CountWindow


@dataclass
class AccuracyReport:
    """Per-quantile accuracy and space of one policy run."""

    policy: str
    window: CountWindow
    phis: tuple
    errors: ErrorAccumulator
    observed_space: int
    analytical_space: Optional[int]
    params: Mapping[str, object] = field(default_factory=dict)

    def value_error_percent(self, phi: float) -> float:
        """Average relative value error in %, as the paper reports."""
        return self.errors.value_error_percent(phi)

    def rank_error(self, phi: float) -> float:
        """Average normalised rank error e'."""
        return self.errors.mean_rank_error(phi)

    @property
    def evaluations(self) -> int:
        """Number of query evaluations measured."""
        return self.errors.evaluations


def run_policy(
    policy: QuantilePolicy,
    values: np.ndarray,
    window: CountWindow,
) -> ErrorAccumulator:
    """Stream ``values`` through ``policy`` and accumulate errors."""
    accumulator = ErrorAccumulator(policy.phis)
    query = (
        Query(value_stream(values))
        .windowed_by(window)
        .aggregate(PolicyOperator(policy))
    )
    arr = np.asarray(values, dtype=np.float64)
    for result in StreamEngine().execute(query, ExecutionPlan(mode="events")):
        end = int(result.end)
        accumulator.observe(result.result, arr[end - window.size : end])
    return accumulator


def run_accuracy(
    policy_name: str,
    values: np.ndarray,
    window: CountWindow,
    phis: Sequence[float],
    **policy_params: object,
) -> AccuracyReport:
    """Build a policy by name, run it, and report accuracy and space."""
    policy = make_policy(policy_name, phis, window, **policy_params)
    errors = run_policy(policy, values, window)
    analytical_params: Dict[str, object] = dict(policy_params)
    if policy_name == "qlove":
        analytical_params = {"num_phis": len(phis)}
    try:
        analytical = type(policy).analytical_space(window, **analytical_params)
    except TypeError:
        analytical = type(policy).analytical_space(window)
    return AccuracyReport(
        policy=policy_name,
        window=window,
        phis=policy.phis,
        errors=errors,
        observed_space=policy.peak_space_variables(),
        analytical_space=analytical,
        params=dict(policy_params),
    )
