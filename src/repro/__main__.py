"""``python -m repro`` — experiments plus the ``monitor`` subcommand.

``python -m repro <experiment>`` regenerates a paper table/figure;
``python -m repro monitor specs.json`` streams a workload through the
:class:`~repro.service.monitor.Monitor` facade (see ``monitor --help``).
"""

import sys

from repro.evalkit.cli import main

sys.exit(main())
