"""Distributed aggregation: fleet-wide estimates from per-node QLOVE state."""

import numpy as np
import pytest

from repro.core import FewKConfig, QLOVEConfig, QLOVEPolicy
from repro.core.distributed import (
    FleetCoordinator,
    fleet_space_variables,
    merge_level2,
    merge_node_estimates,
)
from repro.evalkit import exact_quantile
from repro.sketches import make_policy
from repro.streaming import CountWindow

WINDOW = CountWindow(size=8000, period=1000)
PHIS = [0.5, 0.999]


def feed(policy, shard):
    """Stream one node's shard through its policy, sealing per period."""
    sealed = 0
    for i, v in enumerate(shard):
        policy.accumulate(float(v))
        if (i + 1) % WINDOW.period == 0:
            policy.seal_subwindow()
            sealed += 1
            if sealed > WINDOW.subwindow_count:
                policy.expire_subwindow()
                sealed -= 1
    return policy


def build_fleet(n_nodes, shards, config=None):
    nodes = []
    for shard in shards:
        nodes.append(feed(QLOVEPolicy(PHIS, WINDOW, config), shard))
    return nodes


class TestMergeLevel2:
    def test_matches_single_node_on_identical_distribution(self):
        rng = np.random.default_rng(0)
        data = rng.normal(1e6, 5e4, size=32_000)
        shards = np.split(data, 4)
        nodes = build_fleet(4, shards)
        merged = merge_level2(nodes)
        truth = exact_quantile(data, 0.5)
        assert abs(merged[0.5] - truth) / truth < 0.005

    def test_weighted_by_live_subwindows(self):
        rng = np.random.default_rng(1)
        # Node A has a full window, node B only 2 sealed sub-windows.
        node_a = feed(QLOVEPolicy(PHIS, WINDOW), rng.normal(1000, 10, 8000))
        node_b = feed(QLOVEPolicy(PHIS, WINDOW), rng.normal(3000, 10, 2000))
        merged = merge_level2([node_a, node_b])
        # 8 sub-windows at ~1000 and 2 at ~3000 -> mean ~1400.
        assert 1300 < merged[0.5] < 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_level2([])
        a = QLOVEPolicy([0.5], WINDOW)
        b = QLOVEPolicy([0.9], WINDOW)
        with pytest.raises(ValueError, match="same quantiles"):
            merge_level2([a, b])
        c = QLOVEPolicy([0.5], CountWindow(4000, 1000))
        with pytest.raises(ValueError, match="window shape"):
            merge_level2([a, c])

    def test_no_data_raises(self):
        with pytest.raises(ValueError, match="no sealed"):
            merge_level2([QLOVEPolicy(PHIS, WINDOW)])


class TestMergeWithFewK:
    def test_pooled_topk_repairs_fleet_tail(self):
        rng = np.random.default_rng(2)
        config = QLOVEConfig(
            quantize_digits=None, fewk=FewKConfig(topk_fraction=1.0)
        )
        # Fleet-wide extremes scattered across nodes (the common telemetry
        # case, E4-like): each sub-window's cache covers its share, so the
        # pooled top-k recovers the fleet tail near-exactly.
        base = rng.lognormal(7, 0.3, size=32_000)
        extreme_at = rng.choice(32_000, size=50, replace=False)
        base[extreme_at] *= 50.0
        shards = np.split(base, 4)
        nodes = build_fleet(4, shards, config=config)
        merged = merge_node_estimates(nodes)
        truth = exact_quantile(base, 0.999)
        assert abs(merged[0.999] - truth) / truth < 0.02
        # A Level-2-only merge misses the scattered extremes badly.
        level2_only = merge_level2(nodes)
        assert abs(level2_only[0.999] - truth) / truth > 0.10

    def test_level2_only_fleet_misses_concentrated_tail(self):
        rng = np.random.default_rng(3)
        base = rng.lognormal(7, 0.3, size=32_000)
        base[:50] *= 50.0
        shards = np.split(base, 4)
        nodes = build_fleet(4, shards)  # no few-k
        merged = merge_level2(nodes)
        truth = exact_quantile(base, 0.999)
        pooled_error = abs(merged[0.999] - truth) / truth
        assert pooled_error > 0.10  # motivates the few-k pooling above

    def test_fleet_space_is_sum(self):
        rng = np.random.default_rng(4)
        nodes = build_fleet(2, np.split(rng.normal(1000, 10, 16_000), 2))
        assert fleet_space_variables(nodes) == sum(
            n.space_variables() for n in nodes
        )


class TestFleetValidation:
    """Error paths of _validate_fleet, beyond the happy-path merges."""

    def test_empty_fleet_raises(self):
        for merge in (merge_level2, merge_node_estimates):
            with pytest.raises(ValueError, match="at least one node"):
                merge([])

    def test_single_node_fleet_equals_that_node(self):
        rng = np.random.default_rng(10)
        node = feed(QLOVEPolicy(PHIS, WINDOW), rng.normal(1000, 10, 8000))
        merged = merge_level2([node])
        assert merged == node._level2.results()
        # With no few-k configured, merge_node_estimates agrees too.
        assert merge_node_estimates([node]) == merged

    def test_single_empty_node_raises_no_sealed(self):
        with pytest.raises(ValueError, match="no sealed"):
            merge_level2([QLOVEPolicy(PHIS, WINDOW)])
        with pytest.raises(ValueError, match="no sealed"):
            merge_node_estimates([QLOVEPolicy(PHIS, WINDOW)])

    def test_heterogeneous_config_raises(self):
        """Different few-k configurations cannot pool tails coherently.

        Before the config check this crashed with a ``KeyError`` inside
        ``merge_node_estimates`` (the reference node's mergers indexed
        into a node without them); now every merge rejects it up front.
        """
        rng = np.random.default_rng(11)
        with_fewk = QLOVEConfig(fewk=FewKConfig(topk_fraction=1.0))
        node_a = feed(QLOVEPolicy(PHIS, WINDOW, with_fewk), rng.normal(1000, 10, 2000))
        node_b = feed(QLOVEPolicy(PHIS, WINDOW), rng.normal(1000, 10, 2000))
        for merge in (merge_level2, merge_node_estimates):
            with pytest.raises(ValueError, match="same QLOVE configuration"):
                merge([node_a, node_b])

    def test_non_qlove_node_raises_type_error(self):
        node = feed(QLOVEPolicy(PHIS, WINDOW), np.ones(2000))
        impostor = make_policy("exact", PHIS, WINDOW)
        with pytest.raises(TypeError, match="QLOVEPolicy"):
            merge_level2([node, impostor])

    def test_mismatched_phis_and_window_still_raise(self):
        a = QLOVEPolicy([0.5], WINDOW)
        b = QLOVEPolicy([0.9], WINDOW)
        with pytest.raises(ValueError, match="same quantiles"):
            merge_node_estimates([a, b])
        c = QLOVEPolicy([0.5], CountWindow(4000, 1000))
        with pytest.raises(ValueError, match="window shape"):
            merge_node_estimates([a, c])


class TestFleetCoordinator:
    def test_combine_matches_merge_level2(self):
        rng = np.random.default_rng(20)
        data = rng.normal(1e6, 5e4, size=32_000)
        nodes = build_fleet(4, np.split(data, 4))
        coordinator = FleetCoordinator(lambda: QLOVEPolicy(PHIS, WINDOW))
        estimates = coordinator.estimate(nodes)
        assert estimates == merge_level2(nodes)

    def test_fleet_of_fleets_composes(self):
        """Region-level pre-merges aggregate to the same global answer."""
        rng = np.random.default_rng(21)
        data = rng.normal(1e6, 5e4, size=32_000)
        nodes = build_fleet(4, np.split(data, 4))
        coordinator = FleetCoordinator(lambda: QLOVEPolicy(PHIS, WINDOW))
        flat = coordinator.estimate(nodes)
        region_a = coordinator.combine(nodes[:2])
        region_b = coordinator.combine(nodes[2:])
        assert coordinator.estimate([region_a, region_b]) == flat

    def test_combine_works_for_every_registered_policy(self):
        from repro.sketches import available_policies

        rng = np.random.default_rng(22)
        data = rng.normal(1000, 100, size=4000)
        window = CountWindow(size=2000, period=500)
        for name in available_policies():
            factory = lambda name=name: make_policy(name, [0.5, 0.9], window)
            nodes = []
            for shard in np.split(data, 2):
                node = factory()
                for start in range(0, len(shard), window.period):
                    node.accumulate_batch(shard[start : start + window.period])
                    node.seal_subwindow()
                nodes.append(node)
            merged = FleetCoordinator(factory).combine(nodes)
            estimates = merged.query()
            truth = float(np.sort(data)[int(np.ceil(0.5 * len(data))) - 1])
            assert abs(estimates[0.5] - truth) / truth < 0.1

    def test_empty_fleet_raises(self):
        coordinator = FleetCoordinator(lambda: QLOVEPolicy(PHIS, WINDOW))
        with pytest.raises(ValueError, match="at least one node"):
            coordinator.combine([])

    def test_fleet_report_accounting(self):
        rng = np.random.default_rng(23)
        nodes = build_fleet(3, np.split(rng.normal(1000, 10, 24_000), 3))
        report = FleetCoordinator(lambda: QLOVEPolicy(PHIS, WINDOW)).fleet_report(
            nodes
        )
        assert report["node_count"] == 3
        assert report["total_space"] == fleet_space_variables(nodes)
        assert report["max_node_space"] == max(report["node_spaces"])

    def test_nodes_are_not_mutated_by_combine(self):
        rng = np.random.default_rng(24)
        node = feed(QLOVEPolicy(PHIS, WINDOW), rng.normal(1000, 10, 8000))
        before = (node.live_summaries(), node.query())
        FleetCoordinator(lambda: QLOVEPolicy(PHIS, WINDOW)).combine([node])
        assert (node.live_summaries(), node.query()) == before
