"""Shared fixtures/helpers for the labeled-series test battery."""

from __future__ import annotations

import numpy as np

from repro.series.labels import canonical_labelset, series_key
from repro.service.monitor import Monitor
from repro.service.spec import MetricSpec

#: Policies whose ``merge`` appends the donor's sealed sub-windows after
#: the master's — the universal merge contract group-by builds on.  The
#: equivalence battery runs every one of them.
COMPOSABLE = ("am", "cmqs", "exact", "moment", "qlove")

#: Battery seeds (matching the store battery's spread).
SEEDS = (0, 7, 1234)

#: The battery window.  The size is far above any per-group total the
#: battery ingests, so nothing ever expires on either side of an
#: equivalence check: expiring windows see *per-series* streams, which a
#: concatenated per-group offline stream cannot reproduce — the
#: bit-identity contract is scoped to the no-expiry regime, the same
#: discipline the historical range-query battery uses.
WINDOW = {"size": 100_000, "period": 20}

#: Quantiles tracked by battery metrics.
PHIS = [0.5, 0.9, 0.99]

#: The battery schema; "region" (first in sorted order) is the group
#: dimension deterministic_labelsets fans out.
SCHEMA = ["region", "host"]


def make_family_spec(
    policy: str,
    name: str | None = None,
    labels=None,
    series=None,
    window=None,
    **params,
) -> MetricSpec:
    """A labeled battery MetricSpec for one policy."""
    return MetricSpec(
        name=name or f"m_{policy}",
        quantiles=PHIS,
        window=dict(window or WINDOW),
        policy=policy,
        policy_params=params,
        labels=list(labels) if labels is not None else list(SCHEMA),
        series=series,
    )


def make_plain_spec(spec: MetricSpec) -> MetricSpec:
    """The unlabeled twin of a labeled spec (offline references)."""
    return MetricSpec(
        name=spec.name,
        quantiles=spec.quantiles,
        window=spec.window,
        policy=spec.policy,
        policy_params=spec.policy_params,
    )


def stream_values(seed: int, n_events: int) -> np.ndarray:
    """A deterministic heavy-tailed stream of ``n_events`` elements."""
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=3.0, sigma=1.2, size=n_events)


def battery_labelsets(fanout: int = 3, hosts_per_region: int = 2):
    """A small fixed labelset roster: ``fanout`` regions x hosts each."""
    sets = []
    for r in range(fanout):
        for h in range(hosts_per_region):
            sets.append({"region": f"r{r}", "host": f"h{r}{h}"})
    return sets


def ingest_round_robin(monitor: Monitor, name: str, values, labelsets) -> None:
    """Event ``i`` goes to series ``i % n`` — the loadgen/CLI discipline."""
    n = len(labelsets)
    for i, value in enumerate(values):
        monitor.observe(name, float(value), labels=labelsets[i % n])


def member_stream(values: np.ndarray, labelsets, labelset) -> np.ndarray:
    """One series' slice of a round-robin stream."""
    return values[labelsets.index(labelset) :: len(labelsets)]


def group_reference(
    spec: MetricSpec, values, labelsets, by: str, start: int = 0, end=None
):
    """Offline ground truth for every group of a round-robin ingest.

    For each distinct value of label ``by``, a fresh *unlabeled* policy
    ingests periods ``[start, end)`` of every member stream, members
    concatenated in canonical series-key order, sealing at every period
    boundary — the sequential run a group-by answer (live for the full
    range, historical for any sub-range) must reproduce bit-identically
    (no-expiry regime, member streams period-aligned).  Returns
    ``{by_value: {phi: est}}``.
    """
    period = spec.window.period
    ordered = sorted(
        labelsets,
        key=lambda ls: series_key(
            spec.name, canonical_labelset(ls, spec.labels, spec.name)
        ),
    )
    groups: dict = {}
    for labelset in ordered:
        stream = member_stream(values, labelsets, labelset)
        assert len(stream) % period == 0, "battery streams are period-aligned"
        stop = len(stream) // period if end is None else end
        groups.setdefault(labelset[by], []).append(
            stream[start * period : stop * period]
        )
    reference = {}
    for value, streams in groups.items():
        policy = make_plain_spec(spec).build_policy()
        for stream in streams:
            for p in range(len(stream) // period):
                policy.accumulate_batch(stream[p * period : (p + 1) * period])
                policy.seal_subwindow()
        reference[value] = policy.query()
    return reference


def as_wire(answer) -> dict:
    """A policy ``query()`` answer in the group-result quantile encoding."""
    return {repr(phi): float(value) for phi, value in sorted(answer.items())}
