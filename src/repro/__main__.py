"""``python -m repro`` — forwards to the benchmark CLI."""

import sys

from repro.evalkit.cli import main

sys.exit(main())
