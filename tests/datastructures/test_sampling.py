"""Tests for interval sampling and the reservoir sampler."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import ReservoirSampler, interval_sample, sample_ranks
from repro.datastructures.sampling import sample_weights


class TestSampleRanks:
    def test_every_other(self):
        # "for i = 2, we select all even ranked values" (1-based evens).
        assert sample_ranks(10, 5) == [1, 3, 5, 7, 9]

    def test_ends_at_last_rank(self):
        for pop in (1, 7, 100):
            for k in range(1, pop + 1):
                assert sample_ranks(pop, k)[-1] == pop - 1

    def test_k_at_least_population(self):
        assert sample_ranks(4, 9) == [0, 1, 2, 3]
        assert sample_ranks(4, 4) == [0, 1, 2, 3]

    def test_zero_cases(self):
        assert sample_ranks(0, 5) == []
        assert sample_ranks(5, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            sample_ranks(-1, 2)
        with pytest.raises(ValueError):
            sample_ranks(2, -1)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=500))
    def test_property_count_and_bounds(self, population, k):
        ranks = sample_ranks(population, k)
        assert len(ranks) == min(k, population)
        assert all(0 <= r < population for r in ranks)
        assert ranks == sorted(set(ranks))


class TestSampleWeights:
    def test_even_interval(self):
        # population 10, k 5: each sample stands for its block of 2.
        assert sample_weights(10, 5) == [2, 2, 2, 2, 2]

    def test_uneven_interval(self):
        weights = sample_weights(11, 6)
        assert weights == [2, 2, 2, 2, 2, 1]
        assert sum(weights) == 11

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=1, max_value=400))
    def test_property_weights_partition_population(self, population, k):
        weights = sample_weights(population, k)
        assert sum(weights) == population
        assert all(w >= 1 for w in weights)


class TestIntervalSample:
    def test_samples_descending_ranked(self):
        ranked = [100.0, 90.0, 80.0, 70.0, 60.0, 50.0]
        assert interval_sample(ranked, 3) == [90.0, 70.0, 50.0]

    def test_sample_all(self):
        ranked = [3.0, 2.0, 1.0]
        assert interval_sample(ranked, 10) == ranked


class TestReservoir:
    def test_under_capacity_keeps_all(self):
        sampler = ReservoirSampler(10, [1.0, 2.0, 3.0])
        assert sorted(sampler.values()) == [1.0, 2.0, 3.0]
        assert sampler.seen == 3

    def test_capacity_bound(self):
        sampler = ReservoirSampler(5, (float(i) for i in range(100)))
        assert len(sampler) == 5
        assert sampler.seen == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_clear(self):
        sampler = ReservoirSampler(3, [1.0, 2.0])
        sampler.clear()
        assert len(sampler) == 0
        assert sampler.seen == 0

    def test_uniformity(self):
        # Each of 20 values should appear in the 5-slot reservoir about
        # 5/20 = 25% of the time over many trials.
        counts: Counter = Counter()
        trials = 4000
        for seed in range(trials):
            sampler = ReservoirSampler(5, rng=random.Random(seed))
            for v in range(20):
                sampler.offer(float(v))
            counts.update(sampler.values())
        for v in range(20):
            frequency = counts[float(v)] / trials
            assert 0.18 < frequency < 0.32, f"value {v} frequency {frequency}"
