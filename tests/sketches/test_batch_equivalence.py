"""Batched ingestion produces bit-identical results to per-event ingestion.

The batched fast path must be a pure performance optimisation: for QLOVE
and every registered sketch baseline, running the same query over the same
elements through ``StreamEngine.run_chunked`` must yield ``WindowResult``s
that compare equal — index, window_count, end and every quantile estimate
bit-for-bit — to the per-event ``StreamEngine.run`` loop, for chunk sizes
that straddle sub-window and window boundaries in every alignment.
"""

import numpy as np
import pytest

from repro.core.summary import SubWindowBuilder
from repro.core.compression import Quantizer
from repro.datastructures import TopKKeeper, make_frequency_map
from repro.sketches import available_policies, make_policy
from repro.sketches.base import PolicyOperator
from repro.sketches.kll import KLLSketch
from repro.streaming import CountWindow, Query, StreamEngine, chunk_stream, value_stream

PHIS = [0.5, 0.9, 0.99, 0.999]
WINDOW = CountWindow(size=8_000, period=2_000)
STREAM_LENGTH = 30_000

#: Chunk sizes straddling boundaries every way: single elements, a divisor
#: of the period, primes below and above the period, and above the window.
CHUNK_SIZES = [1, 500, 1_777, 3_001, 10_000]


@pytest.fixture(scope="module")
def telemetry_values():
    rng = np.random.default_rng(11)
    body = rng.lognormal(mean=6.7, sigma=0.35, size=STREAM_LENGTH)
    tail_mask = rng.random(STREAM_LENGTH) < 0.01
    tail = rng.pareto(1.5, size=STREAM_LENGTH) * 5_000 + 2_000
    return np.round(np.where(tail_mask, tail, body))


def run_both_paths(name, values, chunk_size):
    engine = StreamEngine()
    per_event = engine.run_to_list(
        Query(value_stream(values))
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy(name, PHIS, WINDOW)))
    )
    batched = engine.run_chunked_to_list(
        Query(chunk_stream(values, chunk_size))
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy(name, PHIS, WINDOW)))
    )
    return per_event, batched


class TestPolicyEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("name", available_policies())
    def test_bit_identical_window_results(self, name, chunk_size, telemetry_values):
        per_event, batched = run_both_paths(name, telemetry_values, chunk_size)
        assert len(per_event) == (STREAM_LENGTH - WINDOW.size) // WINDOW.period + 1
        # WindowResult is a frozen dataclass: == compares index,
        # window_count, end and the {phi: estimate} dict exactly.
        assert batched == per_event

    def test_registry_covers_the_papers_policies(self):
        assert set(available_policies()) == {
            "qlove",
            "exact",
            "cmqs",
            "am",
            "random",
            "moment",
        }

    def test_qlove_space_accounting_matches(self, telemetry_values):
        window = WINDOW
        a = make_policy("qlove", PHIS, window)
        b = make_policy("qlove", PHIS, window)
        engine = StreamEngine()
        list(
            engine.run(
                Query(value_stream(telemetry_values))
                .windowed_by(window)
                .aggregate(PolicyOperator(a))
            )
        )
        list(
            engine.run_chunked(
                Query(chunk_stream(telemetry_values, 1_777))
                .windowed_by(window)
                .aggregate(PolicyOperator(b))
            )
        )
        assert a.peak_space_variables() == b.peak_space_variables()


class TestBuildingBlocks:
    def test_builder_extend_matches_add(self, telemetry_values):
        values = telemetry_values[:5_000]
        window = CountWindow(size=5_000, period=5_000)
        a = SubWindowBuilder(PHIS, window, Quantizer(3))
        b = SubWindowBuilder(PHIS, window, Quantizer(3))
        for value in values.tolist():
            a.add(value)
        b.extend(values)
        assert a.count == b.count
        assert a.unique_count == b.unique_count
        assert a.seal().quantiles == b.seal().quantiles

    def test_frequency_map_extend_and_discard_array(self):
        values = np.array([3.0, 1.0, 3.0, 2.0, 3.0, 1.0])
        for backend in ("dict", "tree"):
            a = make_frequency_map(backend)
            b = make_frequency_map(backend)
            for value in values.tolist():
                a.add(value)
            b.extend_array(values)
            assert list(a.items_sorted()) == list(b.items_sorted())
            b.discard_array(np.array([3.0, 1.0]))
            assert b.total == 4
            assert b.quantile(1.0) == 3.0

    def test_kll_insert_batch_bit_identical(self):
        import random

        values = np.random.default_rng(5).uniform(0, 1e6, 20_000)
        a = KLLSketch(64, rng=random.Random(9))
        b = KLLSketch(64, rng=random.Random(9))
        for value in values.tolist():
            a.insert(value)
        b.insert_batch(values)
        assert a.n == b.n
        assert a._compactors == b._compactors

    def test_reservoir_offer_batch_matches_offers(self):
        import random

        from repro.datastructures import ReservoirSampler

        values = np.random.default_rng(7).uniform(0, 1e6, 2_000)
        a = ReservoirSampler(64, rng=random.Random(3))
        b = ReservoirSampler(64, rng=random.Random(3))
        for value in values.tolist():
            a.offer(value)
        b.offer_batch(values)
        # Same RNG consumption order -> identical sample under equal seeds.
        assert a.values() == b.values()
        assert a.seen == b.seen

    def test_topk_offer_batch_matches_offers(self):
        values = np.random.default_rng(6).uniform(0, 1e6, 5_000)
        a = TopKKeeper(32)
        b = TopKKeeper(32)
        for value in values.tolist():
            a.offer(value)
        b.offer_batch(values)
        assert a.values_descending() == b.values_descending()
        # Degenerate keeper stays empty.
        empty = TopKKeeper(0)
        empty.offer_batch(values)
        assert len(empty) == 0

    def test_moment_vectorized_batch_registers_equivalent(self, telemetry_values):
        """``vectorized_batch=True`` trades bit-identity for speed.

        The power-sum registers only differ by summation order, so they
        must agree to ~1e-12 relative; the *inverted quantiles* can drift
        much further because the moment solve is ill-conditioned, which is
        exactly why the default batch path keeps sequential adds.
        """
        from repro.sketches.moments import MomentState

        values = telemetry_values[:10_000]
        sequential = MomentState(12)
        for value in values.tolist():
            sequential.add(value)
        vectorized = MomentState(12)
        vectorized.add_batch(values)
        assert vectorized.count == sequential.count
        assert vectorized.minimum == sequential.minimum
        assert vectorized.maximum == sequential.maximum
        np.testing.assert_allclose(vectorized.sums, sequential.sums, rtol=1e-12)
        np.testing.assert_allclose(
            vectorized.log_sums, sequential.log_sums, rtol=1e-12
        )

        # Policy-level sanity: the vectorized path stays a valid moment
        # sketch (estimates within the sketch's own error regime).
        engine = StreamEngine()
        per_event = engine.run_to_list(
            Query(value_stream(telemetry_values))
            .windowed_by(WINDOW)
            .aggregate(PolicyOperator(make_policy("moment", PHIS, WINDOW)))
        )
        fast = engine.run_chunked_to_list(
            Query(chunk_stream(telemetry_values, 1_777))
            .windowed_by(WINDOW)
            .aggregate(
                PolicyOperator(
                    make_policy("moment", PHIS, WINDOW, vectorized_batch=True)
                )
            )
        )
        assert len(fast) == len(per_event)
        for ref, est in zip(per_event, fast):
            for phi in PHIS:
                np.testing.assert_allclose(est.result[phi], ref.result[phi], rtol=0.05)
