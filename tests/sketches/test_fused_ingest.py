"""The fused batched ingest kernel is a pure performance optimisation.

``SubWindowBuilder.extend`` (one fused numpy pass: unique → vectorised
quantize → regroup → short dict loop) must leave the Level-1 frequency
map in the **bit-identical** state produced by

- ``SubWindowBuilder.extend_reference`` — the pre-fusion per-distinct-
  value scalar loop, kept as the equivalence oracle, and
- ``SubWindowBuilder.add`` called once per element,

across real workloads, significant-digit settings, both frequency-map
backends, and with quantization disabled.  The kernel's correctness
rests on scalar/vector quantization agreeing bit for bit, so that
equivalence is pinned here too.
"""

import numpy as np
import pytest

from repro.core.compression import Quantizer, quantize_array, quantize_significant
from repro.core.summary import SubWindowBuilder
from repro.streaming import CountWindow
from repro.workloads.registry import get_dataset

PHIS = [0.5, 0.9, 0.99]
WINDOW = CountWindow(size=8_000, period=2_000)
EVENTS = 10_000
SEED = 19

#: Parameterless datasets spanning the redundancy spectrum: netmon is
#: highly redundant (few distinct values), uniform/normal are nearly
#: all-distinct, pareto and search sit between with heavy tails.
DATASETS = ["netmon", "uniform", "pareto", "normal", "search"]


def build(digits, backend="dict"):
    return SubWindowBuilder(PHIS, WINDOW, Quantizer(digits), backend=backend)


def map_state(builder):
    return list(builder._map.items_sorted())


def ingest_three_ways(values, digits, backend="dict"):
    fused, reference, per_event = (build(digits, backend) for _ in range(3))
    fused.extend(values)
    reference.extend_reference(values)
    for value in values.tolist():
        per_event.add(value)
    return fused, reference, per_event


class TestFusedPathEquivalence:
    @pytest.mark.parametrize("digits", [1, 3, 6])
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_matches_reference_and_per_event(self, dataset, digits):
        values = get_dataset(dataset, EVENTS, seed=SEED)
        fused, reference, per_event = ingest_three_ways(values, digits)
        assert fused.count == reference.count == per_event.count == EVENTS
        assert map_state(fused) == map_state(reference) == map_state(per_event)

    def test_quantization_disabled_is_a_pure_passthrough(self):
        """digits=None: the fused path must skip the regroup entirely and
        still match the raw per-event multiset."""
        values = get_dataset("uniform", EVENTS, seed=SEED)
        fused, reference, per_event = ingest_three_ways(values, digits=None)
        assert map_state(fused) == map_state(reference) == map_state(per_event)

    def test_tree_backend_reaches_the_same_state(self):
        values = get_dataset("pareto", EVENTS, seed=SEED)
        fused, reference, per_event = ingest_three_ways(
            values, digits=3, backend="tree"
        )
        assert map_state(fused) == map_state(reference) == map_state(per_event)

    def test_chunk_split_is_invisible(self):
        """Feeding the same stream in ragged chunks lands on the same map
        as one fused call — extend carries no cross-call state."""
        values = get_dataset("search", EVENTS, seed=SEED)
        whole, chunked = build(3), build(3)
        whole.extend(values)
        for start in [0, 1, 500, 2_277, 7_000]:
            stop = {0: 1, 1: 500, 500: 2_277, 2_277: 7_000, 7_000: EVENTS}[start]
            chunked.extend(values[start:stop])
        chunked.extend(values[EVENTS:])  # empty tail chunk is a no-op
        assert map_state(whole) == map_state(chunked)

    def test_negative_and_mixed_sign_values(self):
        rng = np.random.default_rng(SEED)
        values = rng.normal(loc=0.0, scale=123.456, size=5_000)
        fused, reference, per_event = ingest_three_ways(values, digits=3)
        assert map_state(fused) == map_state(reference) == map_state(per_event)


class TestScalarVectorQuantizeAgreement:
    """The fused kernel quantizes distinct values with ``quantize_array``
    while the per-event path goes through ``quantize_significant``; the
    two must agree bit for bit or the paths silently diverge."""

    @pytest.mark.parametrize("digits", [1, 2, 3, 6, 9])
    def test_bitwise_agreement_across_decades(self, digits):
        rng = np.random.default_rng(23)
        mantissas = rng.uniform(1.0, 10.0, size=200)
        exponents = rng.integers(-12, 13, size=200)
        signs = rng.choice([-1.0, 1.0], size=200)
        values = signs * mantissas * np.power(10.0, exponents.astype(np.float64))
        vectorised = quantize_array(values, digits)
        scalar = np.array(
            [quantize_significant(v, digits) for v in values.tolist()]
        )
        assert vectorised.tobytes() == scalar.tobytes()

    def test_edge_values_agree(self):
        values = np.array(
            [0.0, -0.0, 1.0, -1.0, 999.999, 1000.0, 0.1, 8.2, 1e-12, 1e12]
        )
        vectorised = quantize_array(values, 3)
        scalar = np.array([quantize_significant(v, 3) for v in values.tolist()])
        assert vectorised.tobytes() == scalar.tobytes()

    def test_quantizer_apply_returns_input_object_when_disabled(self):
        """The fused kernel's regroup-skip keys off object identity:
        a disabled Quantizer must return the array it was handed."""
        values = np.array([1.0, 2.0, 3.0])
        assert Quantizer(None).apply(values) is values
        assert Quantizer(3).apply(values) is not values
