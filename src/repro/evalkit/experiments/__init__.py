"""Experiment definitions: one module per paper table/figure.

Each experiment exposes ``run(scale=1.0, seed=0, **overrides)`` returning
an :class:`~repro.evalkit.experiments.common.ExperimentResult`.  ``scale``
multiplies the paper's window/period/stream sizes so the same experiment
runs full-size for EXPERIMENTS.md or quickly inside pytest benchmarks.

Index (see DESIGN.md §4):

========================  =====================================
``figure1``               NetMon histogram (Figure 1)
``table1``                accuracy + space, five policies (Table 1)
``figure4``               throughput vs CMQS/Exact (Figure 4)
``figure5``               scalability vs window size (Figure 5)
``table2``                error vs period, no few-k (Table 2)
``table3``                top-k merging fractions (Table 3)
``table4``                sample-k under bursts (Table 4)
``table5``                AR(1) non-i.i.d. robustness (Table 5)
``redundancy``            low-precision throughput gain (§5.4)
``pareto``                skewed-data value error (§5.4)
``fewk_throughput``       few-k cache size vs throughput (§5.3)
``ablation_backend``      dict vs red-black-tree Level-1 state
``sharded``               sharded execution invariance + scaling (§7)
========================  =====================================
"""

from repro.evalkit.experiments.common import ExperimentResult
from repro.evalkit.experiments.registry import available_experiments, get_experiment

__all__ = ["ExperimentResult", "available_experiments", "get_experiment"]
