"""TelemetryServer: backpressure, drain, reordering, control ops.

The backpressure tests pin the documented semantics of the bounded
ingest queue — ``"block"`` stalls the producer losslessly, ``"shed"``
drops and accounts — and the shutdown tests pin the zero-event-loss
drain guarantee.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.service import (
    IngestQueue,
    Monitor,
    ServerError,
    TelemetryClient,
    TelemetryServer,
)

SPECS = [
    {
        "name": "rtt",
        "quantiles": [0.5, 0.99],
        "window": {"size": 2000, "period": 500},
        "policy": "qlove",
    },
    {
        "name": "rtt.exact",
        "quantiles": [0.5, 0.9],
        "window": {"size": 1500, "period": 500},
        "policy": "exact",
    },
]


def make_monitor() -> Monitor:
    monitor = Monitor()
    for spec in SPECS:
        monitor.register(spec)
    return monitor


@pytest.fixture()
def server():
    # Short flush timeout: tests that deliberately hold the pipeline open
    # (a seq gap) should get their "drained: false" answer quickly.
    with TelemetryServer(make_monitor(), flush_timeout=2.0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with TelemetryClient(host, port) as cli:
        yield cli


def block(n: int, seq=None, metric="rtt"):
    return (metric, seq, np.arange(n, dtype=np.float64), False)


class TestIngestQueueBackpressure:
    """The bounded queue's two documented full-queue behaviours."""

    def test_block_mode_blocks_until_consumer_frees_a_slot(self):
        q = IngestQueue(capacity=2, mode="block")
        assert q.put(block(10))
        assert q.put(block(10))
        started = threading.Event()
        finished = threading.Event()

        def producer():
            started.set()
            q.put(block(10))  # must block: queue is full
            finished.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert started.wait(timeout=2.0)
        # The producer is parked against the full queue, not failing.
        assert not finished.wait(timeout=0.2)
        q.get()  # consumer frees one slot
        assert finished.wait(timeout=2.0)
        assert q.stats()["accepted_blocks"] == 3
        assert q.stats()["shed_blocks"] == 0

    def test_block_mode_put_timeout_raises_full(self):
        q = IngestQueue(capacity=1, mode="block")
        q.put(block(5))
        with pytest.raises(queue.Full):
            q.put(block(5), timeout=0.05)

    def test_shed_mode_drops_and_accounts_when_full(self):
        q = IngestQueue(capacity=2, mode="shed")
        assert q.put(block(10))
        assert q.put(block(20))
        assert not q.put(block(30))  # full: shed, not blocked
        assert not q.put(block(40))
        stats = q.stats()
        assert stats["accepted_blocks"] == 2
        assert stats["accepted_events"] == 30
        assert stats["shed_blocks"] == 2
        assert stats["shed_events"] == 70
        # Draining restores acceptance.
        q.get()
        assert q.put(block(50))
        assert q.stats()["accepted_blocks"] == 3

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="capacity"):
            IngestQueue(capacity=0)
        with pytest.raises(ValueError, match="backpressure mode"):
            IngestQueue(mode="drop-newest")

    def test_close_sentinel_wakes_consumer_even_when_full(self):
        q = IngestQueue(capacity=1, mode="block")
        q.put(block(1))
        q.close()  # must not deadlock against the full queue
        assert q.get() is not None
        assert q.get(timeout=1.0) is None


class TestServerIngest:
    def test_observe_ack_reports_event_count(self, client):
        ack = client.observe("rtt", [1.0, 2.0, 3.0])
        assert ack["accepted"] is True
        assert ack["events"] == 3

    def test_empty_block_is_a_no_op_ack(self, client):
        ack = client.observe("rtt", [])
        assert ack["accepted"] is True
        assert ack["events"] == 0

    def test_unknown_metric_rejected(self, client):
        with pytest.raises(ServerError, match="unknown metric 'nope'"):
            client.observe("nope", [1.0])

    def test_malformed_values_rejected(self, client):
        with pytest.raises(ServerError, match="'values' must be a JSON array"):
            client.request({"op": "observe", "metric": "rtt", "values": "1,2,3"})
        with pytest.raises(ServerError, match="only finite numbers"):
            client.request(
                {"op": "observe", "metric": "rtt", "values": [1.0, "x"]}
            )

    def test_non_finite_values_rejected(self, client, server):
        """NaN/inf would poison quantiles and have no valid JSON encoding.

        The client-side encoder now refuses to put them on the wire at
        all (they would serialise as the invalid ``NaN``/``Infinity``
        tokens); a peer that smuggles them through anyway — the bare
        token, or a ``1e999`` literal that parses to inf — still gets
        the server's ingest rejection.
        """
        from repro.service.protocol import ProtocolError, recv_message

        with pytest.raises(ProtocolError, match="non-finite"):
            client.request(
                {"op": "observe", "metric": "rtt", "values": [1.0, float("nan")]}
            )
        for values_text in ("[1.0,NaN]", "[1e999]"):
            raw = (
                '{"op":"observe","metric":"rtt","values":' + values_text + "}\n"
            ).encode("utf-8")
            client._sock.sendall(raw)
            response = recv_message(client._stream)
            assert response["ok"] is False
            assert "NaN or infinity" in response["error"]
        assert server.monitor._channels["rtt"].seen == 0

    def test_bad_seq_rejected(self, client):
        with pytest.raises(ServerError, match="'seq' must be a non-negative"):
            client.request(
                {"op": "observe", "metric": "rtt", "values": [1.0], "seq": -1}
            )

    def test_unknown_op_lists_vocabulary(self, client):
        with pytest.raises(ServerError, match="unknown op 'frobnicate'"):
            client.request({"op": "frobnicate"})

    def test_flush_makes_observations_visible(self, server, client):
        values = np.arange(1200, dtype=np.float64)
        client.observe("rtt", values)
        flush = client.flush()
        assert flush["drained"] is True
        assert server.monitor._channels["rtt"].seen == 1200

    def test_malformed_frame_keeps_connection_alive(self, server):
        host, port = server.address
        import socket as socketlib

        with socketlib.create_connection((host, port), timeout=5.0) as sock:
            stream = sock.makefile("rb")
            sock.sendall(b"{not json}\n")
            from repro.service.protocol import recv_message

            response = recv_message(stream)
            assert response["ok"] is False
            assert "not valid JSON" in response["error"]
            # The same connection still answers a well-formed request.
            sock.sendall(b'{"op": "ping"}\n')
            assert recv_message(stream)["ok"] is True

    def test_oversized_frame_closes_the_connection(self, server, monkeypatch):
        """The unread tail of an oversized line cannot be re-synchronised
        as frames, so the server answers once and drops the connection."""
        from repro.service import protocol

        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 256)
        host, port = server.address
        import socket as socketlib

        with socketlib.create_connection((host, port), timeout=5.0) as sock:
            stream = sock.makefile("rb")
            giant = protocol.encode_message(
                {"op": "observe", "metric": "rtt", "values": [1.0] * 200}
            )
            assert len(giant) > 256
            sock.sendall(giant)
            response = protocol.recv_message(stream)
            assert response["ok"] is False
            assert "exceeds 256 bytes" in response["error"]
            # The server hung up: nothing more arrives on this socket.
            assert stream.read() == b""
        # Fresh connections are unaffected.
        with TelemetryClient(host, port) as client:
            assert client.ping() == ["rtt", "rtt.exact"]


class TestSequenceReordering:
    """Out-of-order blocks apply in seq order — the multi-connection
    guarantee behind served-vs-offline bit-identity."""

    def test_blocks_apply_in_seq_order_not_arrival_order(self, server, client):
        # Arrive 2, 0, 1; values distinguish the order they were applied.
        client.observe("rtt", np.full(400, 3.0), seq=2)
        client.observe("rtt", np.full(400, 1.0), seq=0)
        client.observe("rtt", np.full(400, 2.0), seq=1)
        assert client.flush()["drained"] is True

        reference = Monitor()
        for spec in SPECS:
            reference.register(spec)
        for value in (1.0, 2.0, 3.0):
            reference.observe_batch("rtt", np.full(400, value))
        assert server.monitor.results("rtt") == reference.results("rtt")

    def test_gap_parks_blocks_until_filled(self, server, client):
        client.observe("rtt", np.full(100, 2.0), seq=1)
        stats = client.stats()
        assert stats["pipeline"]["parked_blocks"] == 1
        assert stats["drained"] is False  # the gap holds the pipeline open
        client.observe("rtt", np.full(100, 1.0), seq=0)
        assert client.flush()["drained"] is True
        assert server.monitor._channels["rtt"].seen == 200

    def test_duplicate_seq_dropped_not_double_counted(self, server, client):
        client.observe("rtt", np.full(100, 1.0), seq=0)
        client.observe("rtt", np.full(100, 1.0), seq=0)  # retry replay
        client.flush()
        assert server.monitor._channels["rtt"].seen == 100
        assert client.stats()["pipeline"]["duplicate_blocks"] == 1

    def test_empty_sequenced_block_advances_the_cursor(self, server, client):
        """A zero-event block carrying a seq must not wedge the metric:
        the cursor advances and later blocks still apply."""
        ack = client.observe("rtt", [], seq=0)
        assert ack["accepted"] is True and ack["events"] == 0
        client.observe("rtt", np.full(100, 2.0), seq=1)
        flush = client.flush()
        assert flush["drained"] is True, "empty seq=0 must not park seq=1"
        assert server.monitor._channels["rtt"].seen == 100

    def test_second_sender_continues_the_servers_seq_numbering(
        self, server, client
    ):
        """stats reports next_seq so a new sender joining a live server
        does not restart at 0 and get replay-dropped."""
        client.observe("rtt", np.full(100, 1.0), seq=0)
        client.observe("rtt", np.full(100, 2.0), seq=1)
        client.flush()
        assert client.stats()["metrics"]["rtt"]["next_seq"] == 2
        # A naive replay from 0 is dropped; continuing from next_seq applies.
        client.observe("rtt", np.full(100, 9.0), seq=0)
        client.observe("rtt", np.full(100, 3.0), seq=2)
        client.flush()
        assert server.monitor._channels["rtt"].seen == 300
        assert client.stats()["pipeline"]["duplicate_blocks"] == 1

    def test_unsequenced_blocks_apply_in_arrival_order(self, server, client):
        client.observe("rtt", np.full(300, 1.0))
        client.observe("rtt", np.full(300, 2.0))
        client.flush()
        assert server.monitor._channels["rtt"].seen == 600


class TestControlOps:
    def test_snapshot_matches_offline_monitor(self, server, client):
        values = np.linspace(0.0, 100.0, 2500)
        client.observe("rtt", values)
        client.observe("rtt.exact", values)
        snapshot = client.snapshot()

        reference = Monitor()
        for spec in SPECS:
            reference.register(spec)
        reference.observe_batch("rtt", values)
        reference.observe_batch("rtt.exact", values)
        assert snapshot == reference.snapshot()

    def test_results_round_trip_as_window_results(self, server, client):
        values = np.linspace(0.0, 100.0, 2500)
        client.observe("rtt", values)
        reference = Monitor()
        for spec in SPECS:
            reference.register(spec)
        reference.observe_batch("rtt", values)
        assert client.results("rtt") == reference.results("rtt")

    def test_stats_report_seen_and_queue_accounting(self, client):
        client.observe("rtt", np.ones(750))
        stats = client.stats()
        assert stats["metrics"]["rtt"]["seen"] == 750
        assert stats["metrics"]["rtt.exact"]["seen"] == 0
        assert stats["ingest"]["accepted_blocks"] == 1
        assert stats["ingest"]["accepted_events"] == 750
        assert stats["ingest"]["mode"] == "block"
        assert stats["pipeline"]["applied_events"] == 750

    def test_checkpoint_without_path_is_an_error(self, client):
        with pytest.raises(ServerError, match="no checkpoint path"):
            client.checkpoint()

    def test_checkpoint_op_saves_restorable_state(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with TelemetryServer(make_monitor(), checkpoint_path=path) as server:
            host, port = server.address
            with TelemetryClient(host, port) as client:
                client.observe("rtt", np.arange(900, dtype=np.float64))
                saved = client.checkpoint()
                assert saved["path"] == path
        restored = Monitor.load(path)
        assert restored._channels["rtt"].seen == 900

    def test_failed_checkpoint_save_is_reported_not_fatal(self, tmp_path):
        """A save to an unwritable path must not kill the server or the
        periodic thread: the op errors, stats carry last_error, and a
        later save to a healed path succeeds."""
        path = str(tmp_path / "gone" / "ckpt.json")  # parent does not exist
        with TelemetryServer(make_monitor(), checkpoint_path=path) as server:
            host, port = server.address
            with TelemetryClient(host, port) as client:
                client.observe("rtt", np.ones(100))
                with pytest.raises(ServerError, match="checkpoint save"):
                    client.checkpoint()
                stats = client.stats()
                assert stats["checkpoint"]["last_error"]
                assert stats["checkpoint"]["saves"] == 0
                # The server still serves.
                assert client.snapshot() is not None
                (tmp_path / "gone").mkdir()
                saved = client.checkpoint()
                assert saved["saves"] == 1
        assert Monitor.load(path)._channels["rtt"].seen == 100

    def test_periodic_checkpoint_thread_saves(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with TelemetryServer(
            make_monitor(), checkpoint_path=path, checkpoint_interval=0.1
        ) as server:
            host, port = server.address
            with TelemetryClient(host, port) as client:
                client.observe("rtt", np.ones(100))
                deadline = time.monotonic() + 5.0
                while server._checkpoint_saves == 0:
                    assert time.monotonic() < deadline, "no periodic save"
                    time.sleep(0.05)
        assert Monitor.load(path)._channels["rtt"].seen == 100

    def test_shutdown_op_releases_wait_shutdown(self, server, client):
        assert not server.wait_shutdown(timeout=0.0)
        response = client.shutdown()
        assert response["stopping"] is True
        assert server.wait_shutdown(timeout=2.0)


class TestShutdownDrain:
    """Clean shutdown applies every accepted block: zero event loss."""

    def test_stop_drains_queued_blocks(self):
        server = TelemetryServer(make_monitor(), queue_blocks=256)
        server.start()
        host, port = server.address
        sent = 0
        with TelemetryClient(host, port) as client:
            for i in range(40):
                client.observe("rtt", np.full(123, float(i)))
                sent += 123
        server.stop()  # drain=True default
        assert server.monitor._channels["rtt"].seen == sent

    def test_stop_applies_parked_blocks_rather_than_losing_them(self):
        """A sender that dies before filling a seq gap: its parked blocks
        are force-applied on shutdown instead of discarded."""
        server = TelemetryServer(make_monitor())
        server.start()
        host, port = server.address
        with TelemetryClient(host, port) as client:
            client.observe("rtt", np.ones(100), seq=0)
            client.observe("rtt", np.full(100, 3.0), seq=2)  # gap at seq=1
            client.observe("rtt", np.full(100, 4.0), seq=3)
        server.stop()
        assert server.monitor._channels["rtt"].seen == 300
        assert server._forced_blocks == 2

    def test_shed_mode_server_reports_sheds_in_ack_and_stats(self):
        server = TelemetryServer(
            make_monitor(), queue_blocks=1, backpressure="shed"
        )
        server.start()
        # Pause the consumer so the queue genuinely fills.
        with server._monitor_lock:
            host, port = server.address
            with TelemetryClient(host, port) as client:
                acks = [
                    client.observe("rtt", np.ones(50))["accepted"]
                    for _ in range(6)
                ]
        assert not all(acks), "with a 1-block queue some acks must shed"
        with TelemetryClient(host, port) as client:
            stats = client.stats()
        assert stats["ingest"]["shed_blocks"] >= 1
        accepted = stats["ingest"]["accepted_events"]
        shed = stats["ingest"]["shed_events"]
        assert accepted + shed == 300
        server.stop()
        # Accepted events all applied; shed events knowingly dropped.
        assert server.monitor._channels["rtt"].seen == accepted

    def test_shed_sequenced_block_does_not_wedge_the_pipeline(self):
        """A shed block must not leave a permanent seq gap: the server
        enqueues a marker so later accepted blocks still apply, and
        flush drains instead of timing out."""
        server = TelemetryServer(
            make_monitor(), queue_blocks=1, backpressure="shed", flush_timeout=5.0
        )
        server.start()
        host, port = server.address
        with server._monitor_lock:  # pause the consumer → queue fills
            with TelemetryClient(host, port) as client:
                acks = [
                    client.observe("rtt", np.full(50, float(i)), seq=i)[
                        "accepted"
                    ]
                    for i in range(6)
                ]
        assert not all(acks)
        with TelemetryClient(host, port) as client:
            flush = client.flush()
            stats = client.stats()
        assert flush["drained"] is True, "shed seqs must not park the pipeline"
        assert stats["pipeline"]["parked_blocks"] == 0
        accepted_events = stats["ingest"]["accepted_events"]
        server.stop()
        assert server.monitor._channels["rtt"].seen == accepted_events

    def test_context_manager_stops_cleanly(self):
        with TelemetryServer(make_monitor()) as server:
            host, port = server.address
            with TelemetryClient(host, port) as client:
                client.observe("rtt", np.ones(10))
        assert server.monitor._channels["rtt"].seen == 10

    def test_stop_without_drain_abandons_parked_blocks(self):
        """Crash simulation: stop(drain=False) must not quietly apply
        work the 'crashed' process would have lost."""
        server = TelemetryServer(make_monitor(), flush_timeout=2.0)
        server.start()
        host, port = server.address
        with TelemetryClient(host, port) as client:
            client.observe("rtt", np.ones(100), seq=0)
            client.observe("rtt", np.full(100, 3.0), seq=2)  # parks: gap at 1
            client.flush()
        server.stop(drain=False)
        assert server.monitor._channels["rtt"].seen == 100
        assert server._forced_blocks == 0

    def test_ingest_queue_drop_all(self):
        q = IngestQueue(capacity=4)
        q.put(block(10))
        q.put(block(10))
        assert q.drop_all() == 2
        assert q.qsize() == 0

    def test_configuration_errors_are_actionable(self):
        with pytest.raises(ValueError, match="checkpoint_interval without"):
            TelemetryServer(make_monitor(), checkpoint_interval=5.0)
        with pytest.raises(ValueError, match="must be positive"):
            TelemetryServer(
                make_monitor(), checkpoint_path="x.json", checkpoint_interval=0
            )
