"""Segment records: framing, round-trips, and forward compatibility.

Covers the on-disk unit of the historical store — CRC-framed record
lines — including hypothesis round-trip properties for encode/decode and
the two-tier compatibility contract (unknown minor field warns and is
ignored; unknown version raises)."""

from __future__ import annotations

import json
import warnings
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serde
from repro.store.segment import (
    SEGMENT_VERSION,
    SPEC_RECORD_VERSION,
    Segment,
    TornRecord,
    decode_line,
    encode_line,
    read_spec_record,
    spec_record,
)


def sample_segment(**overrides) -> Segment:
    fields = dict(
        metric="rtt",
        start_period=3,
        end_period=4,
        count=250,
        state={"kind": "policy", "version": 1, "policy": "exact"},
    )
    fields.update(overrides)
    return Segment(**fields)


class TestSegmentValidation:
    def test_round_trip_through_record(self):
        segment = sample_segment()
        clone = Segment.from_record(segment.to_record())
        assert clone == segment

    def test_rollup_round_trip(self):
        segment = sample_segment(kind="rollup", start_period=0, end_period=8)
        clone = Segment.from_record(segment.to_record())
        assert clone.kind == "rollup"
        assert clone.periods == 8

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            sample_segment(end_period=3)

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_segment(start_period=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            sample_segment(kind="hourly")

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            sample_segment(metric="")

    def test_non_dict_state_rejected(self):
        with pytest.raises(ValueError, match="state"):
            sample_segment(state=[1, 2, 3])

    def test_periods_property(self):
        assert sample_segment(start_period=5, end_period=9).periods == 4


class TestRecordCompat:
    """Satellite: two-tier forward compatibility, pinned by regression."""

    def test_unknown_minor_field_warns_and_ignores(self):
        record = sample_segment().to_record()
        record["annotations"] = {"added_by": "a newer minor release"}
        with pytest.warns(serde.StateCompatWarning, match="annotations"):
            clone = Segment.from_record(record)
        assert clone == sample_segment()

    def test_known_fields_do_not_warn(self):
        record = sample_segment().to_record()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Segment.from_record(record)

    def test_unknown_version_still_raises(self):
        """Regression pin: version bumps stay strict (StateError, not a warn)."""
        record = sample_segment().to_record()
        record["version"] = SEGMENT_VERSION + 1
        with pytest.raises(serde.StateError, match="newer release"):
            Segment.from_record(record)

    def test_version_zero_raises(self):
        record = sample_segment().to_record()
        record["version"] = 0
        with pytest.raises(serde.StateError):
            Segment.from_record(record)

    def test_wrong_kind_raises(self):
        record = sample_segment().to_record()
        record["kind"] = "metric_spec_record"
        with pytest.raises(serde.StateError, match="kind"):
            Segment.from_record(record)

    def test_missing_field_raises(self):
        record = sample_segment().to_record()
        del record["count"]
        with pytest.raises(serde.StateError, match="count"):
            Segment.from_record(record)

    def test_spec_record_round_trip(self):
        spec = {"name": "rtt", "quantiles": [0.5]}
        assert read_spec_record(spec_record("rtt", spec)) == spec

    def test_spec_record_unknown_field_warns(self):
        record = spec_record("rtt", {"name": "rtt"})
        record["labels"] = ["dc1"]
        with pytest.warns(serde.StateCompatWarning, match="labels"):
            assert read_spec_record(record) == {"name": "rtt"}

    def test_spec_record_unknown_version_raises(self):
        record = spec_record("rtt", {"name": "rtt"})
        record["version"] = SPEC_RECORD_VERSION + 1
        with pytest.raises(serde.StateError, match="newer release"):
            read_spec_record(record)

    def test_warn_unknown_fields_returns_sorted_names(self):
        state = {"kind": "x", "version": 1, "b": 1, "a": 2, "known": 3}
        with pytest.warns(serde.StateCompatWarning):
            assert serde.warn_unknown_fields(state, ("known",), "test") == ["a", "b"]

    def test_warn_unknown_fields_silent_when_all_known(self):
        state = {"kind": "x", "version": 1, "known": 3}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert serde.warn_unknown_fields(state, ("known",), "test") == []


class TestLineFraming:
    def test_encode_decode_round_trip(self):
        record = sample_segment().to_record()
        assert decode_line(encode_line(record)) == record

    def test_missing_newline_is_torn(self):
        line = encode_line({"kind": "segment", "version": 1})
        with pytest.raises(TornRecord, match="newline"):
            decode_line(line[:-1])

    def test_truncated_body_is_torn(self):
        line = encode_line(sample_segment().to_record())
        with pytest.raises(TornRecord):
            decode_line(line[: len(line) // 2] + b"\n")

    def test_flipped_byte_is_torn(self):
        line = bytearray(encode_line(sample_segment().to_record()))
        line[len(line) // 2] ^= 0xFF
        with pytest.raises(TornRecord, match="CRC|JSON"):
            decode_line(bytes(line))

    def test_bad_crc_prefix_is_torn(self):
        with pytest.raises(TornRecord):
            decode_line(b"zzzzzzzz {}\n")

    def test_too_short_line_is_torn(self):
        with pytest.raises(TornRecord, match="short"):
            decode_line(b"ab\n")

    def test_non_object_body_is_torn(self):
        body = b"[1,2,3]"
        line = b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"
        with pytest.raises(TornRecord, match="object"):
            decode_line(line)

    def test_crc_is_of_exact_body_bytes(self):
        record = {"kind": "segment", "version": 1, "metric": "a"}
        line = encode_line(record)
        body = line[9:-1]
        assert int(line[:8], 16) == zlib.crc32(body) & 0xFFFFFFFF
        assert json.loads(body) == record


#: JSON-safe scalars for hypothesis-generated record bodies.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)

_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)

_records = st.fixed_dictionaries(
    {"kind": st.text(min_size=1, max_size=10), "version": st.integers(1, 5)},
    optional={
        "metric": st.text(max_size=20),
        "state": _json_values,
        "count": st.integers(0, 2**40),
    },
)


class TestFramingProperties:
    @settings(max_examples=200, deadline=None)
    @given(record=_records)
    def test_any_record_round_trips(self, record):
        assert decode_line(encode_line(record)) == record

    @settings(max_examples=150, deadline=None)
    @given(record=_records, cut=st.integers(min_value=1, max_value=200))
    def test_any_truncation_is_torn_or_absent(self, record, cut):
        """No prefix of a framed line ever decodes as a (different) record."""
        line = encode_line(record)
        prefix = line[: min(cut, len(line) - 1)]
        with pytest.raises(TornRecord):
            decode_line(prefix)

    @settings(max_examples=150, deadline=None)
    @given(
        record=_records,
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_any_corruption_is_detected(self, record, position, flip):
        """Flipping any body/CRC byte never yields a silently-wrong record."""
        line = bytearray(encode_line(record))
        index = position % (len(line) - 1)  # keep the trailing newline
        line[index] ^= flip
        try:
            decoded = decode_line(bytes(line))
        except TornRecord:
            return
        # A flip inside a JSON string may still checksum differently —
        # decode success requires the CRC to have been re-satisfied, which
        # a single XOR flip of CRC-32 cannot do while changing the body.
        assert decoded == record

    @settings(max_examples=100, deadline=None)
    @given(
        segments=st.lists(
            st.tuples(
                st.integers(0, 100),
                st.integers(1, 10),
                st.integers(0, 10_000),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_segment_records_round_trip(self, segments):
        for start, width, count in segments:
            segment = Segment(
                metric="m",
                start_period=start,
                end_period=start + width,
                count=count,
                state={"kind": "policy", "version": 1, "policy": "exact"},
                kind="rollup" if width > 1 else "period",
            )
            assert Segment.from_record(
                json.loads(encode_line(segment.to_record())[9:-1])
            ) == segment
