"""Figure 1: histogram of 100K NetMon latency values.

"The x-axis is cut at 10,000 due to a very long tail" — we render the same
truncated histogram as ASCII bars plus the tail statistics the paper
quotes in the text (Q0.5, Q0.9 boundary, Q0.99, max).
"""

from __future__ import annotations

import numpy as np

from repro.evalkit.experiments.common import ExperimentResult
from repro.evalkit.metrics import exact_quantiles
from repro.evalkit.reporting import Table, ascii_histogram, format_float
from repro.workloads import generate_netmon

#: Paper: "Histogram of 100K latency values (in us) in NetMon."
SAMPLE_SIZE = 100_000
X_CUT = 10_000.0
BINS = 25


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1 (scale shrinks the sample, shape unchanged)."""
    size = max(1000, int(SAMPLE_SIZE * scale))
    values = generate_netmon(size, seed=seed)
    visible = values[values <= X_CUT]
    counts, edges = np.histogram(visible, bins=BINS, range=(0.0, X_CUT))

    stats = Table(
        "NetMon sample statistics (paper: Q0.5=798, 90% < 1,247, "
        "Q0.99=1,874, max=74,265)",
        ["statistic", "value (us)"],
    )
    q50, q90, q99, q999 = exact_quantiles(values, [0.5, 0.9, 0.99, 0.999])
    stats.add_row("Q0.5", format_float(q50, 0))
    stats.add_row("Q0.9", format_float(q90, 0))
    stats.add_row("Q0.99", format_float(q99, 0))
    stats.add_row("Q0.999", format_float(q999, 0))
    stats.add_row("max", format_float(float(values.max()), 0))
    stats.add_row("unique fraction", f"{len(np.unique(values)) / size:.4f}")
    stats.add_row("beyond x-cut", str(int((values > X_CUT).sum())))

    result = ExperimentResult(name="figure1", tables=[stats])
    result.notes = "Histogram (x-axis cut at 10,000 us):\n" + ascii_histogram(
        counts.tolist(), edges.tolist()
    )
    result.data = {
        "counts": counts.tolist(),
        "edges": edges.tolist(),
        "q50": q50,
        "q90": q90,
        "q99": q99,
        "max": float(values.max()),
    }
    return result
