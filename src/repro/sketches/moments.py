"""Moment — the mergeable moment-based quantile sketch baseline.

"Moment Sketch is an algorithm using mergeable moment-based quantile
sketches to predict the original data distribution from moment statistics
summary" (Section 5.1).  Each sub-window keeps ``(count, min, max,
S_1..S_K)`` where ``S_j`` is the j-th power sum; window state is the
element-wise sum of live sub-windows (trivially mergeable *and*
deaccumulatable — the one baseline where sliding windows are cheap).

Quantile inversion from moments is done by :class:`MomentSolver`:

- ``"quadrature"`` (default): Golub–Welsch — build the Jacobi matrix from
  standardized Hankel moments, take its eigen-decomposition to obtain a
  discrete distribution with ~K/2 support points, and invert a
  piecewise-linear CDF through those points.
- ``"maxent"``: maximum-entropy density ``exp(sum_j lambda_j T_j(y))`` on
  the standardized support, fit with damped Newton iterations (the method
  the original Moment Sketch paper uses); falls back to quadrature when
  the solve fails to converge.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro import serde
from repro.sketches.base import QuantilePolicy
from repro.streaming.windows import CountWindow

#: State-format version written by :meth:`MomentState.to_state`.
MOMENT_STATE_VERSION = 1


class MomentState:
    """Power-sum accumulator for one sub-window (or a whole window).

    Keeps power sums of both the raw values and their natural logs (the
    original Moment Sketch does the same): heavy-tailed telemetry spans
    orders of magnitude, which crushes raw standardized moments into a
    sliver of [-1, 1]; solving in log space restores conditioning.  Log
    registers deactivate permanently if any non-positive value arrives.
    """

    __slots__ = ("k", "count", "minimum", "maximum", "sums", "log_sums", "log_valid")

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError(f"k must be at least 2, got {k}")
        self.k = k
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sums = np.zeros(k, dtype=np.float64)
        self.log_sums = np.zeros(k, dtype=np.float64)
        self.log_valid = True

    def add(self, value: float) -> None:
        """Accumulate one element (powers computed iteratively)."""
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        sums = self.sums
        power = 1.0
        for j in range(self.k):
            power *= value
            sums[j] += power
        if self.log_valid:
            if value <= 0.0:
                self.log_valid = False
            else:
                log_value = math.log(value)
                log_sums = self.log_sums
                power = 1.0
                for j in range(self.k):
                    power *= log_value
                    log_sums[j] += power

    def add_batch(self, values: np.ndarray) -> None:
        """Vectorised accumulation of many elements."""
        if values.size == 0:
            return
        self.count += int(values.size)
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))
        power = np.ones_like(values, dtype=np.float64)
        for j in range(self.k):
            power = power * values
            self.sums[j] += float(power.sum())
        if self.log_valid:
            if float(values.min()) <= 0.0:
                self.log_valid = False
            else:
                logs = np.log(values)
                power = np.ones_like(logs)
                for j in range(self.k):
                    power = power * logs
                    self.log_sums[j] += float(power.sum())

    def merge(self, other: "MomentState") -> None:
        """Add another state's registers (mergeability)."""
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.sums += other.sums
        self.log_sums += other.log_sums
        self.log_valid = self.log_valid and other.log_valid

    def log_view(self) -> "MomentState":
        """A state whose *raw* registers are the log-domain registers."""
        if not self.log_valid:
            raise ValueError("log registers are invalid (non-positive values)")
        view = MomentState(self.k)
        view.count = self.count
        view.minimum = math.log(self.minimum)
        view.maximum = math.log(self.maximum)
        view.sums = self.log_sums.copy()
        view.log_valid = False
        return view

    def space_variables(self) -> int:
        """count + min + max + K raw power sums + K log power sums."""
        return 3 + 2 * self.k

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """All registers, JSON-safe (±inf extremes serialise as Infinity)."""
        state = serde.header("moment_state", MOMENT_STATE_VERSION)
        state["k"] = int(self.k)
        state["count"] = int(self.count)
        state["minimum"] = float(self.minimum)
        state["maximum"] = float(self.maximum)
        state["sums"] = self.sums.tolist()
        state["log_sums"] = self.log_sums.tolist()
        state["log_valid"] = bool(self.log_valid)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "MomentState":
        serde.check_state(
            state, "moment_state", MOMENT_STATE_VERSION, "moment state"
        )
        serde.require_fields(
            state,
            ("k", "count", "minimum", "maximum", "sums", "log_sums", "log_valid"),
            "moment state",
        )
        restored = cls(int(state["k"]))
        restored.count = int(state["count"])
        restored.minimum = float(state["minimum"])
        restored.maximum = float(state["maximum"])
        restored.sums = np.asarray(state["sums"], dtype=np.float64)
        restored.log_sums = np.asarray(state["log_sums"], dtype=np.float64)
        restored.log_valid = bool(state["log_valid"])
        return restored


class MomentSolver:
    """Invert quantiles from a power-sum summary."""

    def __init__(self, method: str = "quadrature", grid_size: int = 512) -> None:
        if method not in ("quadrature", "maxent"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.grid_size = grid_size

    # ------------------------------------------------------------------
    # Standardization
    # ------------------------------------------------------------------
    @staticmethod
    def standardized_moments(state: MomentState, limit: Optional[int] = None) -> np.ndarray:
        """Moments of y = (x - c) / s on [-1, 1]; returns [m_0..m_K].

        Uses the binomial expansion of (x - c)^j over the raw power sums,
        which keeps high-order moments numerically tame even when raw
        values are in the thousands (telemetry microseconds).
        """
        k = state.k if limit is None else min(limit, state.k)
        n = state.count
        if n == 0:
            raise ValueError("no data accumulated")
        lo, hi = state.minimum, state.maximum
        if hi == lo:
            moments = np.zeros(k + 1)
            moments[0] = 1.0
            return moments
        center = 0.5 * (hi + lo)
        scale = 0.5 * (hi - lo)
        raw = np.concatenate(([float(n)], state.sums[:k]))  # S_0..S_k
        moments = np.empty(k + 1, dtype=np.float64)
        moments[0] = 1.0
        for j in range(1, k + 1):
            acc = 0.0
            for i in range(j + 1):
                acc += math.comb(j, i) * raw[i] * (-center) ** (j - i)
            moments[j] = acc / (n * scale**j)
        return np.clip(moments, -1.0, 1.0)

    # ------------------------------------------------------------------
    # Quadrature path (Golub–Welsch)
    # ------------------------------------------------------------------
    @staticmethod
    def _gauss_quadrature(moments: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Support points and weights of a discrete moment-matched law.

        Returns nodes in standardized coordinates and probability weights.
        Degrades the number of nodes until the Hankel matrix is positive
        definite (discrete inputs with few distinct values need fewer
        nodes than the moment budget allows).
        """
        max_p = (len(moments) - 1 + 1) // 2  # nodes p need moments m_0..m_{2p-1}
        for p in range(max_p, 0, -1):
            hankel = np.empty((p + 1, p + 1))
            for i in range(p + 1):
                for j in range(p + 1):
                    idx = i + j
                    hankel[i, j] = moments[idx] if idx < len(moments) else 0.0
            try:
                upper = np.linalg.cholesky(hankel).T
            except np.linalg.LinAlgError:
                # Exactly-p-atomic data makes the (p+1)x(p+1) matrix
                # singular at the *correct* p; a tiny ridge recovers the
                # atoms instead of degrading to fewer nodes.
                ridge = 1e-10 * max(1.0, float(np.trace(hankel)))
                try:
                    upper = np.linalg.cholesky(hankel + ridge * np.eye(p + 1)).T
                except np.linalg.LinAlgError:
                    continue
            if np.any(np.diag(upper) < 1e-12):
                continue
            alpha = np.empty(p)
            beta = np.empty(max(0, p - 1))
            for j in range(p):
                term = upper[j, j + 1] / upper[j, j]
                prev = upper[j - 1, j] / upper[j - 1, j - 1] if j > 0 else 0.0
                alpha[j] = term - prev
            for j in range(1, p):
                beta[j - 1] = upper[j, j] / upper[j - 1, j - 1]
            jacobi = np.diag(alpha)
            if p > 1:
                jacobi += np.diag(beta, 1) + np.diag(beta, -1)
            nodes, vectors = np.linalg.eigh(jacobi)
            weights = vectors[0, :] ** 2
            weights = weights / weights.sum()
            return nodes, weights
        raise np.linalg.LinAlgError("no positive-definite Hankel truncation")

    def _quantiles_quadrature(
        self, state: MomentState, phis: Sequence[float]
    ) -> List[float]:
        moments = self.standardized_moments(state)
        nodes, weights = self._gauss_quadrature(moments)
        order = np.argsort(nodes)
        nodes, weights = nodes[order], weights[order]
        # Piecewise-linear CDF through the mass midpoints (mass w_i at node
        # x_i contributes cum_{i-1} + w_i/2 there), anchored at the true
        # extremes — the standard inversion for an atomic moment match.
        cumulative = np.cumsum(weights)
        midpoints = cumulative - weights / 2.0
        xs = np.concatenate(([-1.0], nodes, [1.0]))
        cdf = np.concatenate(([0.0], midpoints, [1.0]))
        cdf = np.maximum.accumulate(cdf)
        center = 0.5 * (state.maximum + state.minimum)
        scale = 0.5 * (state.maximum - state.minimum)
        out = []
        for phi in phis:
            y = float(np.interp(phi, cdf, xs))
            out.append(center + scale * y)
        return out

    # ------------------------------------------------------------------
    # Maximum-entropy path
    # ------------------------------------------------------------------
    def _quantiles_maxent(self, state: MomentState, phis: Sequence[float]) -> List[float]:
        moments = self.standardized_moments(state)
        k = len(moments) - 1
        grid = np.linspace(-1.0, 1.0, self.grid_size)
        dy = grid[1] - grid[0]
        # Chebyshev basis values on the grid and target Chebyshev moments.
        basis = np.polynomial.chebyshev.chebvander(grid, k)  # (G, k+1)
        power_vander = np.vander(grid, k + 1, increasing=True)
        # Solve for the power->chebyshev change of basis via least squares on
        # the grid (exact for polynomials of degree <= k).
        transform, *_ = np.linalg.lstsq(power_vander, basis, rcond=None)
        targets = moments @ transform  # E[T_j(y)] for j = 0..k
        lam = np.zeros(k + 1)
        lam[0] = math.log(0.5)  # start from the uniform density on [-1, 1]
        converged = False
        for _ in range(60):
            density = np.exp(np.clip(basis @ lam, -700, 700))
            estimate = (basis * (density * dy)[:, None]).sum(axis=0)
            gradient = estimate - targets
            if np.max(np.abs(gradient)) < 1e-9:
                converged = True
                break
            hessian = basis.T @ (basis * (density * dy)[:, None])
            hessian += 1e-10 * np.eye(k + 1)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                break
            max_step = np.max(np.abs(step))
            if max_step > 3.0:
                step *= 3.0 / max_step  # damping
            lam -= step
            if not np.all(np.isfinite(lam)):
                break
        if not converged:
            return self._quantiles_quadrature(state, phis)
        density = np.exp(np.clip(basis @ lam, -700, 700))
        cdf = np.cumsum(density) * dy
        if cdf[-1] <= 0 or not np.all(np.isfinite(cdf)):
            return self._quantiles_quadrature(state, phis)
        cdf /= cdf[-1]
        center = 0.5 * (state.maximum + state.minimum)
        scale = 0.5 * (state.maximum - state.minimum)
        out = []
        for phi in phis:
            y = float(np.interp(phi, cdf, grid))
            out.append(center + scale * y)
        return out

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    #: Dynamic range beyond which the log domain conditions better.
    _LOG_DOMAIN_RATIO = 100.0

    def quantiles(self, state: MomentState, phis: Sequence[float]) -> List[float]:
        """Estimate quantiles; falls back to (min, mean, max) interpolation."""
        if state.count == 0:
            raise ValueError("quantiles() on an empty state")
        if state.maximum == state.minimum:
            return [state.minimum for _ in phis]
        use_log = (
            state.log_valid
            and state.minimum > 0.0
            and state.maximum / state.minimum > self._LOG_DOMAIN_RATIO
        )
        solve_state = state.log_view() if use_log else state
        try:
            if self.method == "maxent":
                solved = self._quantiles_maxent(solve_state, phis)
            else:
                solved = self._quantiles_quadrature(solve_state, phis)
        except np.linalg.LinAlgError:
            # Last resort: linear CDF between the known extremes.
            lo, hi = state.minimum, state.maximum
            return [lo + phi * (hi - lo) for phi in phis]
        if use_log:
            return [float(np.exp(v)) for v in solved]
        return solved


class MomentPolicy(QuantilePolicy):
    """Moment sketch per sub-window; window state is the register sum."""

    name = "moment"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        k: int = 12,
        method: str = "maxent",
        vectorized_batch: bool = False,
    ) -> None:
        super().__init__(phis, window)
        self.k = k
        self.method = method  # validated by MomentSolver below
        self._solver = MomentSolver(method=method)
        self._vectorized_batch = vectorized_batch
        self._in_flight = MomentState(k)
        self._sealed: Deque[MomentState] = deque()

    def accumulate(self, value: float) -> None:
        self._in_flight.add(value)

    def accumulate_batch(self, values) -> None:
        """Batched accumulation.

        Default keeps the sequential scalar adds so the power sums are
        bit-identical to the per-element path (floating-point addition is
        not associative).  ``vectorized_batch=True`` switches to
        :meth:`MomentState.add_batch` — much faster, numerically equivalent
        but not bit-identical.
        """
        values = np.asarray(values, dtype=np.float64)
        if self._vectorized_batch:
            self._in_flight.add_batch(values)
        else:
            add = self._in_flight.add
            for value in values.tolist():
                add(value)

    def seal_subwindow(self) -> None:
        self.record_space()
        self._sealed.append(self._in_flight)
        self._in_flight = MomentState(self.k)

    def expire_subwindow(self) -> None:
        if not self._sealed:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        self._sealed.popleft()

    def merge(self, other: "MomentPolicy") -> None:
        """Fold another Moment policy's state into this one.

        Moment sketches are the textbook mergeable summary: sealed states
        pool (queries sum every live register set anyway) and the
        in-flight registers add element-wise.
        """
        self._require_compatible(other)
        if other.k != self.k:
            raise ValueError("merge requires the same moment count k")
        self._sealed.extend(other._sealed)
        if other._in_flight.count:
            self._in_flight.merge(other._in_flight)

    def reset(self) -> None:
        self._in_flight = MomentState(self.k)
        self._sealed.clear()
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Register sets for every live state plus the solver choice."""
        state = self._state_header()
        state["k"] = int(self.k)
        state["method"] = self.method
        state["vectorized_batch"] = bool(self._vectorized_batch)
        state["in_flight"] = self._in_flight.to_state()
        state["sealed"] = [entry.to_state() for entry in self._sealed]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "MomentPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state,
            ("k", "method", "vectorized_batch", "in_flight", "sealed"),
            "moment policy",
        )
        policy = cls(
            phis,
            window,
            k=int(state["k"]),
            method=state["method"],
            vectorized_batch=bool(state["vectorized_batch"]),
        )
        policy._in_flight = MomentState.from_state(state["in_flight"])
        policy._sealed = deque(
            MomentState.from_state(entry) for entry in state["sealed"]
        )
        policy._restore_header(state)
        return policy

    def query(self) -> Dict[float, float]:
        if not self._sealed:
            raise ValueError("query() before any sealed sub-window")
        window_state = MomentState(self.k)
        for state in self._sealed:
            window_state.merge(state)
        values = self._solver.quantiles(window_state, self.phis)
        return dict(zip(self.phis, values))

    def space_variables(self) -> int:
        # Every state costs the same (3 + 2k), so no per-state walk needed.
        return (len(self._sealed) + 1) * self._in_flight.space_variables()

    @classmethod
    def analytical_space(
        cls, window: CountWindow, k: int = 12, **params: float
    ) -> Optional[int]:
        return (3 + 2 * k) * window.subwindow_count
