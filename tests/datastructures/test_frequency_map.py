"""Tests for both frequency-map backends against a shared contract."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import DictFrequencyMap, TreeFrequencyMap, make_frequency_map

BACKENDS = [TreeFrequencyMap, DictFrequencyMap]


@pytest.fixture(params=BACKENDS, ids=["tree", "dict"])
def fmap(request):
    return request.param()


class TestContract:
    def test_empty(self, fmap):
        assert fmap.total == 0
        assert fmap.unique_count == 0
        assert list(fmap.items_sorted()) == []

    def test_add_and_totals(self, fmap):
        fmap.add(3.0)
        fmap.add(3.0)
        fmap.add(7.0, count=5)
        assert fmap.total == 7
        assert fmap.unique_count == 2

    def test_add_rejects_nonpositive(self, fmap):
        with pytest.raises(ValueError):
            fmap.add(1.0, count=0)

    def test_discard(self, fmap):
        fmap.add(3.0, count=4)
        fmap.discard(3.0, count=3)
        assert fmap.total == 1
        fmap.discard(3.0)
        assert fmap.total == 0
        assert fmap.unique_count == 0

    def test_discard_missing_raises(self, fmap):
        with pytest.raises(KeyError):
            fmap.discard(9.0)

    def test_discard_undercount_raises(self, fmap):
        fmap.add(9.0)
        with pytest.raises(KeyError):
            fmap.discard(9.0, count=2)

    def test_items_sorted_order(self, fmap):
        for v in [5.0, 1.0, 3.0, 1.0]:
            fmap.add(v)
        assert list(fmap.items_sorted()) == [(1.0, 2), (3.0, 1), (5.0, 1)]
        assert list(fmap.items_descending()) == [(5.0, 1), (3.0, 1), (1.0, 2)]

    def test_value_at_rank(self, fmap):
        fmap.add(10.0, count=2)
        fmap.add(20.0, count=1)
        assert fmap.value_at_rank(1) == 10.0
        assert fmap.value_at_rank(2) == 10.0
        assert fmap.value_at_rank(3) == 20.0
        with pytest.raises(IndexError):
            fmap.value_at_rank(0)
        with pytest.raises(IndexError):
            fmap.value_at_rank(4)

    def test_quantile_rank_convention(self, fmap):
        # 10 elements 1..10: phi-quantile is element of rank ceil(phi*10).
        for v in range(1, 11):
            fmap.add(float(v))
        assert fmap.quantile(0.5) == 5.0
        assert fmap.quantile(0.51) == 6.0
        assert fmap.quantile(1.0) == 10.0
        assert fmap.quantile(0.05) == 1.0

    def test_quantiles_multi_single_pass(self, fmap):
        for v in range(1, 101):
            fmap.add(float(v))
        got = fmap.quantiles([0.99, 0.5, 0.9])
        assert got == [99.0, 50.0, 90.0]

    def test_quantiles_empty_raises(self, fmap):
        with pytest.raises(ValueError):
            fmap.quantile(0.5)

    def test_quantiles_invalid_phi(self, fmap):
        fmap.add(1.0)
        with pytest.raises(ValueError):
            fmap.quantile(0.0)
        with pytest.raises(ValueError):
            fmap.quantile(1.5)

    def test_top_values(self, fmap):
        for v in [1.0, 9.0, 9.0, 5.0, 7.0]:
            fmap.add(v)
        assert fmap.top_values(3) == [9.0, 9.0, 7.0]
        assert fmap.top_values(0) == []
        assert fmap.top_values(10) == [9.0, 9.0, 7.0, 5.0, 1.0]

    def test_clear(self, fmap):
        fmap.extend([1.0, 2.0, 3.0])
        fmap.clear()
        assert fmap.total == 0
        assert list(fmap.items_sorted()) == []

    def test_readd_after_full_discard(self, fmap):
        fmap.add(2.0)
        fmap.discard(2.0)
        fmap.add(2.0)
        assert list(fmap.items_sorted()) == [(2.0, 1)]


class TestFactory:
    def test_make_frequency_map(self):
        assert isinstance(make_frequency_map("tree"), TreeFrequencyMap)
        assert isinstance(make_frequency_map("dict"), DictFrequencyMap)

    def test_make_frequency_map_unknown(self):
        with pytest.raises(ValueError):
            make_frequency_map("btree")


class TestBackendsAgree:
    def test_random_workload_identical_results(self):
        rng = random.Random(11)
        tree, dct = TreeFrequencyMap(), DictFrequencyMap()
        live: list[float] = []
        for _ in range(3000):
            v = float(rng.randrange(200))
            tree.add(v)
            dct.add(v)
            live.append(v)
            if len(live) > 1000:
                old = live.pop(0)
                tree.discard(old)
                dct.discard(old)
        assert list(tree.items_sorted()) == list(dct.items_sorted())
        phis = [0.5, 0.9, 0.99, 0.999]
        assert tree.quantiles(phis) == dct.quantiles(phis)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_property_quantile_matches_sorted_rank(values, phi):
    expected_sorted = sorted(float(v) for v in values)
    rank = max(1, math.ceil(phi * len(values)))
    expected = expected_sorted[rank - 1]
    for backend in BACKENDS:
        fmap = backend(float(v) for v in values)
        assert fmap.quantile(phi) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=150))
def test_property_backends_agree(values):
    tree = TreeFrequencyMap(float(v) for v in values)
    dct = DictFrequencyMap(float(v) for v in values)
    assert list(tree.items_sorted()) == list(dct.items_sorted())
    assert tree.total == dct.total == len(values)
