"""Standard normal distribution functions (no scipy dependency).

The CDF uses ``math.erfc`` (exact to double precision); the quantile
function (PPF) uses Acklam's rational approximation refined with one
Halley step, giving ~1e-15 relative accuracy — more than enough for the
confidence multipliers of Theorem 1.
"""

from __future__ import annotations

import math

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

# Coefficients of Acklam's inverse-normal approximation.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425


def normal_pdf(x: float) -> float:
    """Density of the standard normal distribution."""
    return math.exp(-0.5 * x * x) / _SQRT2PI


def normal_cdf(x: float) -> float:
    """Cumulative distribution function of the standard normal."""
    return 0.5 * math.erfc(-x / _SQRT2)


def normal_ppf(p: float) -> float:
    """Quantile function (inverse CDF) of the standard normal."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    elif p <= 1.0 - _P_LOW:
        q = p - 0.5
        r = q * q
        x = (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
            * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    # One Halley refinement step against the exact CDF.
    error = normal_cdf(x) - p
    u = error * _SQRT2PI * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)
