"""Table 2: value error vs period size without few-k merging."""


def test_table2(run_experiment):
    result = run_experiment("table2", scale=0.25, evaluations=16)
    data = result.data
    periods = sorted(data[0.5], reverse=True)
    largest, smallest = periods[0], periods[-1]

    # Paper shape: medians flat and tiny across all periods.
    for period in periods:
        assert data[0.5][period] < 0.01, period
        assert data[0.9][period] < 0.02, period

    # The 0.999-quantile degrades sharply as periods shrink (statistical
    # inefficiency: paper 1.82% at 64K -> 18.93% at 1K).
    assert data[0.999][smallest] > data[0.999][largest]
    assert data[0.999][smallest] > 0.05
