"""Burst injection and the tail placement patterns of Figure 3.

Two tools:

- :func:`inject_bursts` — the Section 5.3 experiment: "in the window size
  N and the quantile phi, we increase the values of the top N(1-phi)
  elements in every (N/P)-th sub-window of size P by 10x".
- :class:`BurstPattern` / :func:`pattern_window` — the E1–E4 example
  layouts of Figure 3: one window's worth of data whose top-M values are
  concentrated in one sub-window (E1), two (E2), half of them (E3) or
  spread evenly (E4).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.core.config import exact_tail_size
from repro.streaming.windows import CountWindow


def inject_bursts(
    values: np.ndarray,
    window: CountWindow,
    phi: float = 0.999,
    factor: float = 10.0,
    every: Optional[int] = None,
) -> np.ndarray:
    """Scale the top ``N(1-phi)`` values of periodic sub-windows by ``factor``.

    ``every`` selects how many sub-windows apart bursts occur; the default
    ``N / P`` makes the burst "appear just once in every evaluation of the
    sliding window" as in the paper's setup.  Returns a copy.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = np.asarray(values, dtype=np.float64).copy()
    period = window.period
    stride = (every if every is not None else window.subwindow_count) * period
    if stride <= 0:
        raise ValueError("burst stride must be positive")
    need = exact_tail_size(phi, window.size)
    for start in range(0, len(out) - period + 1, stride):
        chunk = out[start : start + period]
        k = min(need, len(chunk))
        top_idx = np.argpartition(chunk, len(chunk) - k)[-k:]
        chunk[top_idx] *= factor
    return out


class BurstPattern(enum.Enum):
    """How a window's largest values spread over sub-windows (Figure 3)."""

    E1 = 1  # all top values in a single sub-window (extreme burst)
    E2 = 2  # concentrated in two sub-windows
    E3 = 3  # concentrated in half of the sub-windows
    E4 = 4  # spread completely evenly


def pattern_window(
    pattern: BurstPattern,
    window: CountWindow,
    phi: float = 0.999,
    base_scale: float = 1000.0,
    tail_scale: float = 100_000.0,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """One window of data whose top values follow a Figure-3 pattern.

    The window holds ``N`` uniform body values plus ``M = N(1-phi)`` tail
    values placed according to ``pattern``; returns the concatenated
    sub-windows in stream order.
    """
    rng = np.random.default_rng(seed)
    n_sub = window.subwindow_count
    n = window.size
    tail_count = exact_tail_size(phi, n)
    body = rng.uniform(0.5 * base_scale, base_scale, size=n)
    tail_values = rng.uniform(0.9 * tail_scale, tail_scale, size=tail_count)
    if pattern is BurstPattern.E1:
        hosts = [0] * tail_count
    elif pattern is BurstPattern.E2:
        hosts = [i % 2 for i in range(tail_count)]
    elif pattern is BurstPattern.E3:
        half = max(1, n_sub // 2)
        hosts = [i % half for i in range(tail_count)]
    else:
        hosts = [i % n_sub for i in range(tail_count)]
    out = body.reshape(n_sub, window.period)
    for value, host in zip(tail_values, hosts):
        slot = rng.integers(0, window.period)
        out[host, slot] = value
    return out.reshape(-1)
