"""The labeled CLI surface: ``--history`` prep, ``query --group-by``.

In-process ``main(argv)`` invocations pin exit codes and printed bytes
for the labeled path: a ``monitor`` run with a labeled spec creates a
``--history`` directory (missing parents included) or fails with one
actionable exit-2 line, the final snapshot renders one indented line
per series, and ``query --group-by`` against that store prints the
same bytes :func:`render_group_result` produces — plus every flag
combination the group-by mode rejects.

One subprocess round trip diffs a labeled ``serve``/``loadgen`` run's
final snapshot against the offline ``monitor`` output byte for byte
(the CI serving gate, extended to labeled metrics).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.evalkit.cli import main

from tests.integration.test_serve_cli import (
    free_port,
    run_cli,
    spawn_server,
    wait_and_terminate,
)

WINDOW = {"size": 100_000, "period": 100}

SPECS = {
    "metrics": [
        {
            "name": "rtt",
            "quantiles": [0.5, 0.99],
            "window": dict(WINDOW),
            "policy": "qlove",
        },
        {
            "name": "lat",
            "quantiles": [0.5, 0.99],
            "window": dict(WINDOW),
            "policy": "qlove",
            "labels": ["region", "host"],
            "series": {"shards": 3, "max_active": 3},
        },
    ]
}

EVENTS = 4_000
N_SERIES = 4
FANOUT = 2
PERIODS_PER_SERIES = EVENTS // N_SERIES // WINDOW["period"]

MONITOR_ARGS = [
    "--dataset", "uniform", "--seed", "0", "--events", str(EVENTS),
    "--series", str(N_SERIES), "--label-fanout", str(FANOUT),
]


@pytest.fixture()
def specs_path(tmp_path):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(SPECS), encoding="utf-8")
    return str(path)


@pytest.fixture()
def history_dir(tmp_path, specs_path):
    """A labeled history store written by the offline monitor CLI."""
    directory = str(tmp_path / "hist")
    code = main(["monitor", specs_path, *MONITOR_ARGS, "--history", directory])
    assert code == 0
    return directory


class TestHistoryDirPreparation:
    def test_nested_missing_parents_are_created(
        self, tmp_path, specs_path, capsys
    ):
        directory = str(tmp_path / "a" / "b" / "c" / "hist")
        code = main(
            ["monitor", specs_path, *MONITOR_ARGS, "--history", directory]
        )
        assert code == 0
        assert os.path.isdir(directory)
        out = capsys.readouterr().out
        assert f"recording period history to {directory!r}" in out

    @pytest.mark.parametrize("subcommand", ["monitor", "serve"])
    def test_path_component_is_a_file_fails_actionably(
        self, tmp_path, specs_path, subcommand, capsys
    ):
        squatter = tmp_path / "squatter"
        squatter.write_text("not a directory", encoding="utf-8")
        directory = str(squatter / "hist")
        with pytest.raises(SystemExit) as excinfo:
            main([subcommand, specs_path, "--history", directory])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "a path component exists but is not a directory" in err
        assert directory in err

    def test_unwritable_location_fails_actionably(
        self, tmp_path, specs_path, capsys
    ):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory write bits")
        parent = tmp_path / "sealed"
        parent.mkdir()
        parent.chmod(0o555)
        try:
            with pytest.raises(SystemExit) as excinfo:
                main(
                    ["monitor", specs_path, "--history",
                     str(parent / "hist")]
                )
        finally:
            parent.chmod(0o755)
        assert excinfo.value.code == 2
        assert "cannot create the store directory" in capsys.readouterr().err


class TestLabeledMonitorOutput:
    def test_final_snapshot_renders_one_line_per_series(
        self, specs_path, capsys
    ):
        code = main(["monitor", specs_path, *MONITOR_ARGS])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered 'lat'" in out and "labels=['host', 'region']" in out
        lines = out.splitlines()
        start = lines.index("final snapshot:")
        block = lines[start:]
        assert f"  lat: {N_SERIES} series" in block
        series_lines = [ln for ln in block if ln.startswith("    lat{")]
        assert len(series_lines) == N_SERIES
        assert series_lines == sorted(series_lines)
        # The window never fills: every series is still warming up.
        assert all("(no full window yet)" in ln for ln in series_lines)

    def test_series_flag_validation(self, specs_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", specs_path, "--series", "0"])
        assert excinfo.value.code == 2
        assert "--series must be >= 1" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", specs_path, "--label-fanout", "-2"])
        assert excinfo.value.code == 2
        assert "--label-fanout must be >= 1" in capsys.readouterr().err


class TestStoreGroupByCli:
    def query(self, history_dir, *extra):
        return main(
            ["query", history_dir, "--metric", "lat", "--group-by", "host",
             "--range", f"0:{PERIODS_PER_SERIES}", *extra]
        )

    def test_renders_the_library_bytes(self, history_dir, capsys):
        assert self.query(history_dir) == 0
        out = capsys.readouterr().out

        from repro.store import SegmentStore, group_by_store, render_group_result

        store = SegmentStore(history_dir)
        try:
            expected = render_group_result(
                group_by_store(store, "lat", ["host"], 0, PERIODS_PER_SERIES)
            )
        finally:
            store.close()
        assert out == expected
        assert out.startswith(
            f"lat group by host periods [0, {PERIODS_PER_SERIES})"
        )
        # --label-fanout host values, --series series split across them.
        assert out.count("\n  {host=") == FANOUT
        assert f"series={N_SERIES // FANOUT}" in out

    def test_json_output_is_stable(self, history_dir, capsys):
        assert self.query(history_dir, "--json") == 0
        first = capsys.readouterr().out
        result = json.loads(first)
        assert result["by"] == ["host"]
        assert sum(g["count"] for g in result["groups"]) == EVENTS
        assert self.query(history_dir, "--json") == 0
        assert capsys.readouterr().out == first

    def test_quantile_subset(self, history_dir, capsys):
        assert self.query(history_dir, "--quantiles", "0.99") == 0
        out = capsys.readouterr().out
        assert "p0.99:" in out and "p0.5:" not in out

    def test_multi_label_group_by(self, history_dir, capsys):
        code = main(
            ["query", history_dir, "--metric", "lat", "--group-by", "host,region",
             "--range", f"0:{PERIODS_PER_SERIES}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("series=1") == N_SERIES


class TestGroupByFlagValidation:
    """Every rejected combination fails before any store or socket I/O,
    so a nonexistent store path never masks the flag error."""

    def fails_with(self, capsys, argv, needle):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", *argv])
        assert excinfo.value.code == 2
        assert needle in capsys.readouterr().err

    def test_empty_label_list(self, capsys):
        self.fails_with(
            capsys,
            ["nowhere", "--metric", "lat", "--group-by", ",", "--range", "0:1"],
            "names no labels",
        )

    def test_does_not_combine_with_at(self, capsys):
        self.fails_with(
            capsys,
            ["nowhere", "--metric", "lat", "--group-by", "host", "--at", "3"],
            "does not combine with --at or --step",
        )

    def test_does_not_combine_with_step(self, capsys):
        self.fails_with(
            capsys,
            ["nowhere", "--metric", "lat", "--group-by", "host",
             "--range", "0:4", "--step", "2"],
            "does not combine with --at or --step",
        )

    def test_server_mode_rejects_range(self, capsys):
        self.fails_with(
            capsys,
            ["--server", "127.0.0.1:1", "--metric", "lat", "--group-by", "host",
             "--range", "0:4"],
            "drop --range",
        )

    def test_store_mode_needs_range(self, capsys):
        self.fails_with(
            capsys,
            ["nowhere", "--metric", "lat", "--group-by", "host"],
            "needs --range T0:T1",
        )

    def test_store_errors_surface_as_exit_2(self, history_dir, capsys):
        self.fails_with(
            capsys,
            [history_dir, "--metric", "rtt", "--group-by", "host", "--range", "0:4"],
            "no labeled series",
        )


class TestLabeledServeRoundTrip:
    def test_served_labeled_snapshot_matches_offline_monitor(
        self, specs_path
    ):
        offline = run_cli("monitor", [specs_path, *MONITOR_ARGS])
        assert offline.returncode == 0, offline.stderr
        lines = offline.stdout.splitlines()
        start = lines.index("final snapshot:")
        offline_block = [
            ln for ln in lines[start:] if not ln.startswith("[")
        ]

        port = free_port()
        server = spawn_server([specs_path, "--port", str(port)])
        try:
            driven = run_cli(
                "loadgen",
                ["--port", str(port), *MONITOR_ARGS,
                 "--block-size", "700", "--connections", "2",
                 "--wait-server", "30", "--snapshot", "--shutdown"],
                timeout=120,
            )
            assert driven.returncode == 0, driven.stderr
            served = driven.stdout.splitlines()
            served_block = [
                ln
                for ln in served[served.index("final snapshot:") :]
                if not ln.startswith("[")
            ]
            assert served_block == offline_block
        finally:
            output = wait_and_terminate(server)
        assert server.returncode == 0, output
