"""Level 1: in-flight sub-window state and sealed summaries.

During a sub-window, QLOVE keeps data in the compressed
``{(value, frequency)}`` form of Algorithm 1; at the period boundary the
sub-window is sealed into a :class:`SubWindowSummary` holding

- the element count,
- the *exact* sub-window quantile for every configured phi (the Level-2
  inputs ``y_i``), and
- the few-k tail material per high quantile: the ``k_t`` largest values
  (top-k merging) and ``k_s`` interval samples of the ``N (1 - phi)``
  largest values (sample-k merging).

All raw values are then discarded — "Once a sub-window completes, all
values are discarded after they are used to compute the summary"
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro import serde
from repro.core.compression import Quantizer
from repro.core.config import FewKConfig, exact_tail_size
from repro.datastructures import frequency_map_from_state, make_frequency_map
from repro.datastructures.sampling import interval_sample, sample_weights
from repro.streaming.windows import CountWindow

#: State-format version written by :meth:`SubWindowSummary.to_state`.
SUMMARY_STATE_VERSION = 1


@dataclass(frozen=True)
class SubWindowSummary:
    """Immutable summary of one completed sub-window."""

    count: int
    quantiles: Mapping[float, float]
    #: phi -> k_t largest values, descending (top-k merging input).
    topk: Mapping[float, Tuple[float, ...]] = field(default_factory=dict)
    #: phi -> k_s interval samples of the N(1-phi) largest, descending.
    samples: Mapping[float, Tuple[float, ...]] = field(default_factory=dict)
    #: phi -> per-sample representation counts (parallel to ``samples``);
    #: derivable from the sampling plan, so not counted as stored space.
    sample_weights: Mapping[float, Tuple[int, ...]] = field(default_factory=dict)

    def space_variables(self) -> int:
        """Variables retained by this summary."""
        tail = sum(len(v) for v in self.topk.values())
        tail += sum(len(v) for v in self.samples.values())
        return len(self.quantiles) + tail

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """All retained material as JSON-safe pair lists.

        Float-keyed mappings serialise as ``[[phi, payload], ...]`` pairs
        so quantile keys round-trip exactly (JSON objects would
        stringify them).
        """
        state = serde.header("subwindow_summary", SUMMARY_STATE_VERSION)
        state["count"] = int(self.count)
        state["quantiles"] = serde.pairs(self.quantiles)
        state["topk"] = serde.pairs(self.topk)
        state["samples"] = serde.pairs(self.samples)
        state["sample_weights"] = serde.pairs(self.sample_weights)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "SubWindowSummary":
        serde.check_state(
            state, "subwindow_summary", SUMMARY_STATE_VERSION, "sub-window summary"
        )
        serde.require_fields(
            state,
            ("count", "quantiles", "topk", "samples", "sample_weights"),
            "sub-window summary",
        )
        return cls(
            count=int(state["count"]),
            quantiles={
                phi: float(value)
                for phi, value in serde.mapping_from_pairs(state["quantiles"]).items()
            },
            topk={
                phi: tuple(float(v) for v in values)
                for phi, values in serde.mapping_from_pairs(state["topk"]).items()
            },
            samples={
                phi: tuple(float(v) for v in values)
                for phi, values in serde.mapping_from_pairs(state["samples"]).items()
            },
            sample_weights={
                phi: tuple(int(w) for w in weights)
                for phi, weights in serde.mapping_from_pairs(
                    state["sample_weights"]
                ).items()
            },
        )


class SubWindowBuilder:
    """Accumulates one sub-window and seals it into a summary."""

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        quantizer: Quantizer,
        fewk: FewKConfig | None = None,
        backend: str = "dict",
    ) -> None:
        self._phis = tuple(phis)
        self._window = window
        self._quantizer = quantizer
        self._backend = backend
        self._map = make_frequency_map(backend)
        # Telemetry values recur heavily (the paper's redundancy insight),
        # so quantization is memoised: the common case is one dict hit
        # instead of log10/floor arithmetic.  Bounded to keep memory sane
        # on adversarial streams.
        self._quantize_cache: dict[float, float] = {}
        self._quantize_cache_limit = 262_144
        # Pre-resolve per-phi tail requirements so seal() is cheap.
        self._tail_plan: List[Tuple[float, int, int]] = []
        if fewk is not None:
            for phi in self._phis:
                kt = fewk.resolve_kt(phi, window) if fewk.topk_active(phi, window) else 0
                ks = fewk.resolve_ks(phi, window)
                if kt > 0 or ks > 0:
                    self._tail_plan.append((phi, kt, ks))

    @property
    def count(self) -> int:
        """Elements accumulated into the in-flight sub-window."""
        return self._map.total

    @property
    def unique_count(self) -> int:
        """Distinct (quantized) values currently stored."""
        return self._map.unique_count

    def add(self, value: float) -> None:
        """Accumulate one element (quantized per the compression config)."""
        cache = self._quantize_cache
        quantized = cache.get(value)
        if quantized is None:
            quantized = self._quantizer(value)
            if len(cache) < self._quantize_cache_limit:
                cache[value] = quantized
        self._map.add(quantized)

    def extend(self, values: np.ndarray) -> None:
        """Accumulate a whole array of elements (the fused batched path).

        One fused numpy pass: the chunk is collapsed to ``(unique raw
        value, count)`` pairs in C, the distinct values are quantized with
        one vectorised call, pairs whose quantized keys collide are
        regrouped in C, and only the resulting distinct quantized keys pay
        a python-level dict insert.  High-redundancy streams win because
        ``np.unique`` collapses the chunk before any quantization;
        low-redundancy streams win because quantization is vectorised
        instead of interpreted per distinct value.  The resulting Level-1
        state is bit-identical to calling :meth:`add` per element
        (:meth:`extend_reference` keeps the pre-fusion loop as the
        equivalence oracle); values are assumed finite, as everywhere in
        the ingest path.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        uniques, counts = np.unique(values, return_counts=True)
        quantized = self._quantizer.apply(uniques)
        if quantized is not uniques:
            # Quantization aliases nearby raw values onto one key; regroup
            # so each distinct quantized key pays exactly one dict insert.
            # bincount's float64 weights are exact for counts < 2**53.
            quantized, inverse = np.unique(quantized, return_inverse=True)
            counts = np.bincount(inverse, weights=counts).astype(np.int64)
        add = self._map.add
        for value, count in zip(quantized.tolist(), counts.tolist()):
            add(value, count)

    def extend_reference(self, values: np.ndarray) -> None:
        """Pre-fusion batched path: per-distinct-value scalar quantization.

        Kept as the reference implementation for the fused-path
        equivalence gate (and for benchmarking the fusion win); produces
        the same map state as :meth:`extend` and :meth:`add`.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        uniques, counts = np.unique(values, return_counts=True)
        cache = self._quantize_cache
        limit = self._quantize_cache_limit
        quantizer = self._quantizer
        add = self._map.add
        for value, count in zip(uniques.tolist(), counts.tolist()):
            quantized = cache.get(value)
            if quantized is None:
                quantized = quantizer(value)
                if len(cache) < limit:
                    cache[value] = quantized
            add(quantized, count)

    def merge_from(self, other: "SubWindowBuilder") -> None:
        """Fold another builder's in-flight multiset into this one.

        Both builders quantize element-wise with the same deterministic
        rule, so the merged frequency map is identical to having
        accumulated every element into one builder — the property that
        makes sharded QLOVE ingestion shard-count-invariant.
        """
        self._map.merge_from(other._map)

    def reset(self) -> None:
        """Discard the in-flight state (the quantize cache survives)."""
        self._map = make_frequency_map(self._backend)

    def space_variables(self) -> int:
        """In-flight state: {value, count} per unique element."""
        return 2 * self._map.unique_count

    # ------------------------------------------------------------------
    # Durable state (the in-flight map; plan/quantizer are config-derived)
    # ------------------------------------------------------------------
    def map_state(self) -> dict:
        """The in-flight frequency map's state (all the builder's data).

        The quantize cache is a memo, not state — it rebuilds lazily and
        deterministically, so it is deliberately not persisted.
        """
        return self._map.to_state()

    def restore_map(self, state: dict) -> None:
        """Adopt a frequency map state captured by :meth:`map_state`."""
        self._map = frequency_map_from_state(state)

    def seal(self) -> SubWindowSummary:
        """Summarise and reset the in-flight sub-window.

        Empty sub-windows (possible with time-based windows) seal into a
        count-0 summary with no quantiles; Level 2 skips them.
        """
        count = self._map.total
        if count == 0:
            summary = SubWindowSummary(count=0, quantiles={})
        else:
            values = self._map.quantiles(list(self._phis))
            quantiles = dict(zip(self._phis, values))
            topk: Dict[float, Tuple[float, ...]] = {}
            samples: Dict[float, Tuple[float, ...]] = {}
            weights: Dict[float, Tuple[int, ...]] = {}
            for phi, kt, ks in self._tail_plan:
                if kt > 0:
                    topk[phi] = tuple(self._map.top_values(kt))
                if ks > 0:
                    population = exact_tail_size(phi, self._window.size)
                    # A sub-window shorter than the tail population (tiny
                    # periods) samples whatever it holds.
                    ranked = self._map.top_values(population)
                    ks_effective = min(ks, len(ranked))
                    samples[phi] = tuple(interval_sample(ranked, ks_effective))
                    weights[phi] = tuple(sample_weights(len(ranked), ks_effective))
            summary = SubWindowSummary(
                count=count,
                quantiles=quantiles,
                topk=topk,
                samples=samples,
                sample_weights=weights,
            )
        self._map = make_frequency_map(self._backend)
        return summary
