"""Benchmark harness configuration.

Every paper table/figure has one module here.  Each benchmark runs the
corresponding experiment from :mod:`repro.evalkit.experiments` once
(``benchmark.pedantic`` — the experiments are seconds-long composites, not
microseconds kernels), prints the regenerated table, and asserts the
paper's qualitative shape (who wins, direction of trends).  Scales are
reduced from paper size so the full suite stays in minutes; run
``python -m repro <name> --scale 1.0`` for paper-size numbers.

The ingest benchmarks additionally emit a machine-readable perf
artifact: pass ``--bench-json PATH`` (or set ``BENCH_INGEST_JSON=PATH``)
and each benchmark merges its section — events/s per policy, batched vs
sharded — into that one JSON file.  CI sets the env var and uploads the
file as the ``BENCH_ingest.json`` artifact, so the perf trajectory is
tracked per commit.
"""

import json
import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help=(
            "write machine-readable benchmark results (events/s per policy) "
            "to this JSON file; the BENCH_INGEST_JSON env var is the "
            "flag-less equivalent"
        ),
    )


@pytest.fixture
def bench_json_sink(request):
    """A ``record(section, payload)`` callable writing the perf artifact.

    Each call merges ``{section: payload}`` into the target JSON file
    (read-modify-write, so the batched and sharded benchmarks can share
    one artifact regardless of invocation order).  A no-op when neither
    ``--bench-json`` nor ``BENCH_INGEST_JSON`` is set.
    """
    path = request.config.getoption("--bench-json") or os.environ.get(
        "BENCH_INGEST_JSON"
    )

    def record(section: str, payload: dict) -> None:
        if not path:
            return
        document = {"schema": 1}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        document[section] = payload
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\n[bench-json] wrote section {section!r} to {path}")

    return record


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment once under pytest-benchmark and print its report."""

    def _run(name, **kwargs):
        from repro.evalkit.experiments import get_experiment

        result = benchmark.pedantic(
            lambda: get_experiment(name)(**kwargs), rounds=1, iterations=1
        )
        print()
        print(result.render())
        return result

    return _run
