"""Value compression: zero out insignificant low-order digits.

"To increase data duplicates, some insignificant low-order digits of
streamed values may be zeroed out.  Often, we consider only the three most
significant digits of the original value, which ensures the quantized
value within less than 1% relative error" (Section 3.1).

Quantization truncates toward zero (digits are *zeroed*, not rounded), so
for ``digits`` significant digits the relative error is below
``10^(1-digits)`` — under 1% at the default of three.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def quantize_significant(value: float, digits: int = 3) -> float:
    """Keep the ``digits`` most significant digits of ``value``.

    Examples: ``quantize_significant(74265) == 74200``,
    ``quantize_significant(1247) == 1240``, values below ``10**digits``
    pass through unchanged (they already have few digits).

    Delegates to the same arithmetic as :func:`quantize_array` so the
    scalar and vectorised paths are bit-identical by construction — the
    fused batched ingest path depends on that equivalence.
    """
    if digits < 1:
        raise ValueError("digits must be at least 1")
    if value == 0.0 or not math.isfinite(value):
        return value
    magnitude = _truncate_magnitudes(np.abs(np.array([value], dtype=np.float64)), digits)
    return math.copysign(float(magnitude[0]), value)


def _truncate_magnitudes(magnitude: np.ndarray, digits: int) -> np.ndarray:
    """Truncate an array of finite, non-zero magnitudes to ``digits``."""
    exponent = np.floor(np.log10(magnitude))
    scale = np.power(10.0, exponent - digits + 1)
    # Round away ~1e-13 binary-representation fuzz before truncating so
    # values like 8.2 / 0.01 == 819.999... do not floor to the wrong digit.
    ratio = np.round(magnitude / scale, 9)
    return np.floor(ratio) * scale


def quantize_array(values: np.ndarray, digits: int = 3) -> np.ndarray:
    """Vectorised :func:`quantize_significant` over a numpy array."""
    if digits < 1:
        raise ValueError("digits must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    out = values.copy()
    finite = np.isfinite(values) & (values != 0.0)
    if not np.any(finite):
        return out
    magnitude = np.abs(values[finite])
    out[finite] = np.sign(values[finite]) * _truncate_magnitudes(magnitude, digits)
    return out


class Quantizer:
    """Callable quantizer; ``digits=None`` disables compression."""

    __slots__ = ("digits",)

    def __init__(self, digits: Optional[int] = 3) -> None:
        if digits is not None and digits < 1:
            raise ValueError("digits must be at least 1 (or None to disable)")
        self.digits = digits

    def __call__(self, value: float) -> float:
        if self.digits is None:
            return value
        return quantize_significant(value, self.digits)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Vectorised application to an array."""
        if self.digits is None:
            return np.asarray(values, dtype=np.float64)
        return quantize_array(values, self.digits)

    @property
    def enabled(self) -> bool:
        """Whether compression is active."""
        return self.digits is not None
