"""``python -m repro`` — experiments plus the serving subcommands.

``python -m repro <experiment>`` regenerates a paper table/figure;
``python -m repro monitor specs.json`` streams a workload through the
:class:`~repro.service.monitor.Monitor` facade offline;
``python -m repro serve specs.json`` exposes a monitor over TCP
(newline-delimited JSON, bounded-queue backpressure, periodic
checkpoints); ``python -m repro loadgen`` drives such a server with a
deterministic seeded workload; ``python -m repro query`` answers
historical quantile questions from a ``--history`` segment store or a
live server's ``history`` op.  See ``<subcommand> --help``.
"""

import sys

from repro.evalkit.cli import main

sys.exit(main())
