"""Low-precision dataset derivation (Section 5.4 data-redundancy study).

"We discard two low-order digits from the original datasets for
low-precision datasets, thus resulting in the data precision of 100 us,
not 1 us."  Higher redundancy shrinks the Level-1 tree for both Exact and
QLOVE, which is where the 1.8x–4.6x throughput gains come from.
"""

from __future__ import annotations

import numpy as np


def reduce_precision(values: np.ndarray, drop_digits: int = 2) -> np.ndarray:
    """Zero out the ``drop_digits`` lowest decimal digits of each value."""
    if drop_digits < 0:
        raise ValueError("drop_digits must be non-negative")
    if drop_digits == 0:
        return np.asarray(values, dtype=np.float64).copy()
    scale = 10.0**drop_digits
    return np.floor(np.asarray(values, dtype=np.float64) / scale) * scale
