"""Section 5.4 data-skewness study: value error on Pareto data.

Pareto dataset (Q0.5=20, Q0.999=10,000, max capped at 1.1e9), 16K period,
128K window.  Shape: QLOVE's Q0.999 value error stays in single digits
while the rank-bound baselines (AM, Random) explode to ~30%.
"""

from __future__ import annotations

from typing import Dict

from repro.evalkit.experiments.common import (
    PAPER_PERIOD,
    PAPER_WINDOW,
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    percent,
    scaled_window,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.workloads import generate_pareto

EPSILON = 0.02
POLICIES = (
    ("qlove", {}),
    ("am", {"epsilon": EPSILON}),
    ("random", {"epsilon": EPSILON, "seed": 0}),
)


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 16) -> ExperimentResult:
    """Regenerate the Pareto skewness comparison."""
    window = scaled_window(PAPER_WINDOW, PAPER_PERIOD, scale)
    values = generate_pareto(stream_length(window, evaluations), seed=seed)
    table = Table(
        f"Pareto skewness: average relative value error %% "
        f"(window={window.size}, period={window.period}, eps={EPSILON})",
        ["Policy"] + [f"Q{phi}" for phi in QMONITOR_PHIS],
    )
    data: Dict[str, Dict[float, float]] = {}
    for name, params in POLICIES:
        report = run_accuracy(name, values, window, QMONITOR_PHIS, **params)
        errors = {
            phi: report.errors.mean_value_error(phi) for phi in QMONITOR_PHIS
        }
        data[name] = errors
        table.add_row(name.upper(), *(percent(errors[phi]) for phi in QMONITOR_PHIS))

    return ExperimentResult(
        name="pareto", tables=[table], data=data, notes=describe_scale(scale)
    )
