"""Table 3: top-k merging — error (and space) vs cache fraction.

NetMon, 128K window, Q0.999; per-sub-window top-k cache sized as a
fraction of the exact-guarantee tail (the paper's 132 entries), swept
over periods 8K..1K.  Shape: fraction 0.5 nearly optimal; fraction 0.1
lands around the 5% error target.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import FewKConfig, QLOVEConfig
from repro.evalkit.experiments.common import (
    PAPER_WINDOW,
    ExperimentResult,
    describe_scale,
    percent,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon

PAPER_PERIODS = (8_192, 4_096, 2_048, 1_024)
FRACTIONS = (0.1, 0.5)
PHI = 0.999


def run(
    scale: float = 1.0,
    seed: int = 0,
    evaluations: int = 16,
    periods: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Regenerate Table 3 (plus a no-few-k reference row)."""
    window_size = scaled(PAPER_WINDOW, scale)
    period_list = [scaled(p, scale) for p in (periods or PAPER_PERIODS)]
    table = Table(
        f"Table 3: Q0.999 value error %% (and tail-cache space) by top-k "
        f"fraction, window={window_size}",
        ["Fraction"] + [str(p) for p in period_list],
    )
    data: Dict[object, Dict[int, Dict[str, float]]] = {}

    def one_run(period: int, config: QLOVEConfig):
        n_sub = max(1, window_size // period)
        window = CountWindow(size=n_sub * period, period=period)
        values = generate_netmon(stream_length(window, evaluations), seed=seed)
        report = run_accuracy("qlove", values, window, [PHI], config=config)
        if config.fewk is not None:
            cache = config.fewk.resolve_kt(PHI, window) * window.subwindow_count
        else:
            cache = 0
        return report.errors.mean_value_error(PHI), cache

    rows = [("none", QLOVEConfig())]
    rows += [
        (fraction, QLOVEConfig(fewk=FewKConfig(topk_fraction=fraction)))
        for fraction in FRACTIONS
    ]
    for label, config in rows:
        cells = []
        data[label] = {}
        for period in period_list:
            error, cache = one_run(period, config)
            data[label][period] = {"error": error, "cache": cache}
            cells.append(f"{percent(error)} ({cache:,})")
        table.add_row(str(label), *cells)

    return ExperimentResult(
        name="table3", tables=[table], data=data, notes=describe_scale(scale)
    )
