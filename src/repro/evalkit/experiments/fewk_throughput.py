"""Section 5.3 few-k throughput study: cache fraction vs throughput.

"With all entries cached (i.e., fraction of 1), we see 21.2% throughput
penalty compared to QLOVE without few-k merging.  At a smaller fraction
of 0.2 ... throughput penalty is recovered to 9.0%."  NetMon, 1K period
(the paper's most resource-demanding query).
"""

from __future__ import annotations

from typing import Dict

from repro.core import FewKConfig, QLOVEConfig
from repro.evalkit.experiments.common import (
    ExperimentResult,
    describe_scale,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.throughput import measure_throughput
from repro.sketches.registry import make_policy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon

PAPER_WINDOW = 131_072
PAPER_PERIOD = 1_024
PHI = 0.999
FRACTIONS = (0.2, 1.0)


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 30) -> ExperimentResult:
    """Measure the few-k cache's throughput penalty."""
    period = scaled(PAPER_PERIOD, scale)
    n_sub = max(2, scaled(PAPER_WINDOW, scale) // period)
    window = CountWindow(size=n_sub * period, period=period)
    values = generate_netmon(stream_length(window, evaluations), seed=seed)

    configs = [("none", QLOVEConfig())]
    configs += [
        (f"fraction {f}", QLOVEConfig(fewk=FewKConfig(topk_fraction=f)))
        for f in FRACTIONS
    ]
    table = Table(
        f"Few-k throughput (NetMon, window={window.size}, period={period}, "
        f"Q{PHI})",
        ["Few-k cache", "M ev/s", "penalty vs none"],
    )
    data: Dict[str, float] = {}
    baseline = None
    outcomes = []
    for label, config in configs:
        outcome = measure_throughput(
            lambda config=config: make_policy("qlove", [0.5, PHI], window, config=config),
            values,
            window,
        )
        outcomes.append((label, outcome))
        data[label] = outcome.million_events_per_second
        if label == "none":
            baseline = outcome.events_per_second
    for label, outcome in outcomes:
        penalty = 1.0 - outcome.events_per_second / baseline if baseline else float("nan")
        table.add_row(label, f"{outcome.million_events_per_second:.3f}", f"{100 * penalty:.1f}%")

    return ExperimentResult(
        name="fewk_throughput", tables=[table], data=data, notes=describe_scale(scale)
    )
