"""Search: synthetic web-search ISN response times with SLA truncation.

The real Search dataset measures query response time of an index serving
node in microseconds.  The paper's footnote 1 is the key structural fact:
"Search ISN limits query execution to take up to the pre-defined response
time SLA, e.g., 200 ms.  The queries terminated by the SLA are
concentrated on Q0.9 and above, incurring high density in the tail of
data distribution" — which is why all Search value errors stay below 1%.

We model the untruncated response time as a lognormal (median 40 ms,
sigma 0.75) and clamp it to the 200 ms SLA, so a few percent of queries
pile up exactly at the cap; values are integer microseconds.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

_MEDIAN_US = 40_000.0
_SIGMA = 0.75
_SLA_US = 200_000.0
_FLOOR_US = 1_000.0


def generate_search(
    size: int,
    seed: Optional[int] = 0,
    sla_us: float = _SLA_US,
) -> np.ndarray:
    """Generate ``size`` ISN response times (integer us), clamped at the SLA."""
    if size <= 0:
        raise ValueError("size must be positive")
    if sla_us <= 0:
        raise ValueError("sla_us must be positive")
    rng = np.random.default_rng(seed)
    raw = rng.lognormal(mean=math.log(_MEDIAN_US), sigma=_SIGMA, size=size)
    values = np.clip(np.round(raw), _FLOOR_US, sla_us)
    return values.astype(np.float64)
