"""LINQ-like query builder mirroring the paper's ``Qmonitor`` query.

The paper's monitoring query (Section 5.1)::

    Qmonitor = Stream
        .Window(windowSize, period)
        .Where(e => e.errorCode != 0)
        .Aggregate(c => c.Quantile(0.5, 0.9, 0.99, 0.999))

translates to::

    query = (Query(stream)
             .window(window_size, period)
             .where(lambda e: e.error_code != 0)
             .aggregate(QuantileAggregate([0.5, 0.9, 0.99, 0.999])))
    for result in StreamEngine().run(query):
        ...

``Query`` objects are immutable; every builder method returns a new query,
so partially built queries can be shared and specialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Tuple, Union

import numpy as np

from repro.streaming.event import Event
from repro.streaming.operator import IncrementalOperator, SubWindowOperator
from repro.streaming.sources import Chunk
from repro.streaming.windows import CountWindow, TimeWindow

Predicate = Callable[[Event], bool]
Projector = Callable[[Event], float]
#: Vectorised Where: value array -> boolean mask (batched path only).
ChunkPredicate = Callable[[np.ndarray], np.ndarray]
#: Vectorised Select: value array -> transformed value array.
ChunkProjector = Callable[[np.ndarray], np.ndarray]
WindowSpec = Union[CountWindow, TimeWindow]
Operator = Union[IncrementalOperator, SubWindowOperator]


@dataclass(frozen=True)
class Query:
    """Immutable streaming query specification."""

    source: Iterable
    window_spec: Optional[WindowSpec] = None
    predicates: Tuple[Predicate, ...] = field(default=())
    projectors: Tuple[Projector, ...] = field(default=())
    chunk_predicates: Tuple[ChunkPredicate, ...] = field(default=())
    chunk_projectors: Tuple[ChunkProjector, ...] = field(default=())
    operator: Optional[Operator] = None

    # ------------------------------------------------------------------
    # Builder methods
    # ------------------------------------------------------------------
    def window(
        self,
        size: Union[int, float],
        period: Optional[Union[int, float]] = None,
        *,
        time_based: bool = False,
    ) -> "Query":
        """Scope evaluation to the last ``size`` elements (or seconds).

        ``period`` defaults to ``size`` (a tumbling window).  Pass
        ``time_based=True`` for a :class:`TimeWindow` over timestamps.
        """
        if period is None:
            period = size
        spec: WindowSpec
        if time_based:
            spec = TimeWindow(size=float(size), period=float(period))
        else:
            spec = CountWindow(size=int(size), period=int(period))
        return replace(self, window_spec=spec)

    def windowed_by(self, spec: WindowSpec) -> "Query":
        """Scope evaluation with a pre-built window specification."""
        return replace(self, window_spec=spec)

    def where(self, predicate: Predicate) -> "Query":
        """Keep only events satisfying ``predicate`` (applied in order)."""
        return replace(self, predicates=self.predicates + (predicate,))

    def select(self, projector: Projector) -> "Query":
        """Map the event value through ``projector`` before aggregation."""
        return replace(self, projectors=self.projectors + (projector,))

    def where_values(self, predicate: ChunkPredicate) -> "Query":
        """Vectorised Where for the batched path: ``values -> bool mask``.

        Only evaluated by :meth:`StreamEngine.run_chunked`; a query mixing
        chunk-level and event-level stages is rejected at run time so no
        filter is ever silently skipped.
        """
        return replace(self, chunk_predicates=self.chunk_predicates + (predicate,))

    def select_values(self, projector: ChunkProjector) -> "Query":
        """Vectorised Select for the batched path: ``values -> values``."""
        return replace(self, chunk_projectors=self.chunk_projectors + (projector,))

    def aggregate(self, operator: Operator) -> "Query":
        """Attach the aggregation operator evaluated once per period."""
        return replace(self, operator=operator)

    # ------------------------------------------------------------------
    # Validation / execution helpers
    # ------------------------------------------------------------------
    def validated(self) -> "Query":
        """Return self after checking the query is runnable."""
        if self.window_spec is None:
            raise ValueError("query has no window(); call .window(size, period)")
        if self.operator is None:
            raise ValueError("query has no aggregate(); call .aggregate(op)")
        return self

    def apply_event_pipeline(self, event: Event) -> Optional[Event]:
        """Run ``where``/``select`` stages; None when filtered out."""
        for predicate in self.predicates:
            if not predicate(event):
                return None
        for projector in self.projectors:
            event = event.with_value(projector(event))
        return event

    def apply_chunk_pipeline(self, chunk: Chunk) -> Chunk:
        """Run vectorised ``where_values``/``select_values`` stages."""
        for predicate in self.chunk_predicates:
            mask = np.asarray(predicate(chunk.values), dtype=bool)
            chunk = chunk.compress(mask)
        for projector in self.chunk_projectors:
            chunk = chunk.with_values(
                np.asarray(projector(chunk.values), dtype=np.float64)
            )
        return chunk
