"""CMQS — Continuously Maintaining Quantile Summaries (Lin et al. 2004).

The paper's description (Section 5.2): "each sub-window creates a data
structure, namely a sketch, and all active sketches are combined to compute
approximate quantiles over a sliding window.  The capacity of each
sub-window is floor(eps * P / 2) to ensure the rank error bound by
eps-approximation."

We build one Greenwald–Khanna summary with error ``eps / 2`` per
sub-window; expired sub-windows drop their whole sketch (no per-element
deaccumulation), and a query combines the weighted items of all live
sketches.  Rank error: eps/2 within every sub-window plus the combination
slack stays below ``eps * N`` deterministically.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional, Sequence

from repro import serde
from repro.sketches.base import QuantilePolicy
from repro.sketches.gk import GKSummary, combined_quantile
from repro.streaming.windows import CountWindow

#: Sub-window sketch capacity = ceil(CAPACITY_CALIBRATION / eps) tuples,
#: capped by the sub-window size.  The constant is calibrated so CMQS's
#: observed space at Table 1's configuration (eps=0.02, P=16K, 8
#: sub-windows) lands at the paper's ~31K variables (~13 elements per
#: tuple), and shrinks as eps grows — the Figure-4 accuracy/throughput
#: trade-off direction.
CAPACITY_CALIBRATION = 26.0


def subwindow_capacity(epsilon: float, period: int) -> int:
    """Tuples retained per sub-window sketch for a given epsilon."""
    return max(4, min(period, int(math.ceil(CAPACITY_CALIBRATION / epsilon))))


class CMQSPolicy(QuantilePolicy):
    """Per-sub-window GK sketches combined at query time."""

    name = "cmqs"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        epsilon: float = 0.02,
    ) -> None:
        super().__init__(phis, window)
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._capacity = subwindow_capacity(epsilon, window.period)
        self._in_flight = GKSummary(epsilon / 2.0, capacity=self._capacity)
        self._sealed: Deque[GKSummary] = deque()
        self._sealed_space = 0

    def accumulate(self, value: float) -> None:
        self._in_flight.insert(value)

    def seal_subwindow(self) -> None:
        self.record_space()
        self._sealed.append(self._in_flight)
        self._sealed_space += self._in_flight.space_variables()
        self._in_flight = GKSummary(self.epsilon / 2.0, capacity=self._capacity)

    def expire_subwindow(self) -> None:
        if not self._sealed:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        self._sealed_space -= self._sealed.popleft().space_variables()

    def merge(self, other: "CMQSPolicy") -> None:
        """Fold another CMQS policy's state into this one.

        Sealed sub-window sketches pool (queries already combine all live
        sketches); the in-flight summary absorbs the other's weighted
        items, whose rank uncertainty is the donor's own epsilon — the
        same budget the combine step accounts for.
        """
        self._require_compatible(other)
        if other.epsilon != self.epsilon:
            raise ValueError("merge requires the same epsilon")
        for sketch in other._sealed:
            self._sealed.append(sketch)
        self._sealed_space += other._sealed_space
        if other._in_flight.n:
            for value, weight in other._in_flight.weighted_items():
                self._in_flight.insert(value, weight)

    def reset(self) -> None:
        self._in_flight = GKSummary(self.epsilon / 2.0, capacity=self._capacity)
        self._sealed.clear()
        self._sealed_space = 0
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Epsilon plus every live GK sketch (in-flight and sealed)."""
        state = self._state_header()
        state["epsilon"] = float(self.epsilon)
        state["in_flight"] = self._in_flight.to_state()
        state["sealed"] = [sketch.to_state() for sketch in self._sealed]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "CMQSPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state, ("epsilon", "in_flight", "sealed"), "cmqs policy"
        )
        policy = cls(phis, window, epsilon=float(state["epsilon"]))
        policy._in_flight = GKSummary.from_state(state["in_flight"])
        policy._sealed = deque(
            GKSummary.from_state(entry) for entry in state["sealed"]
        )
        policy._sealed_space = sum(
            sketch.space_variables() for sketch in policy._sealed
        )
        policy._restore_header(state)
        return policy

    def query(self) -> Dict[float, float]:
        if not self._sealed:
            raise ValueError("query() before any sealed sub-window")
        values = combined_quantile(list(self._sealed), self.phis)
        return dict(zip(self.phis, values))

    def space_variables(self) -> int:
        return self._sealed_space + self._in_flight.space_variables()

    @classmethod
    def analytical_space(
        cls, window: CountWindow, epsilon: float = 0.02, **params: float
    ) -> Optional[int]:
        """Three variables per tuple, capacity tuples, N/P sub-windows."""
        per_subwindow = subwindow_capacity(epsilon, window.period)
        return 3 * per_subwindow * window.subwindow_count
