"""Merge-equivalence battery: every registered policy must merge correctly.

For each policy in the registry, a stream is split at random across k
shards (k = 1, 2, 4, 7; even and skewed occupancies; multiple seeds),
each shard is driven through its own policy instance, and the shards are
merged into one fresh policy.  The merged policy must answer quantile
queries within the sketch's own error bound of the unsplit reference:

- **exact** answers must be *identical* to the unsplit policy (frequency
  maps are multisets — partitioning cannot matter);
- **cmqs / am / random** must stay within their (deterministic or
  seeded-probabilistic) normalised rank-error budget against the pooled
  stream;
- **qlove / moment** must stay within a relative *value*-error budget —
  their guarantees are value-centric, not rank-centric.
"""

import numpy as np
import pytest

from repro.evalkit.metrics import exact_quantiles, rank_error, relative_value_error
from repro.sketches import available_policies, make_policy
from repro.streaming import CountWindow
from repro.workloads import get_dataset

WINDOW = CountWindow(size=2048, period=256)
STREAM_LENGTH = 1500  # < window size: every sealed sub-window stays live
PHIS = (0.5, 0.9, 0.99)

#: Per-policy battery configuration: dataset, constructor params, and the
#: error check matching the sketch's own guarantee.
CASES = {
    "exact": dict(dataset="netmon", params={}, check="identical"),
    # QLOVE's Level-2 guarantee is CLT-based: it holds where sub-windows
    # supply enough tail mass (P (1 - phi) >> 1).  At this battery's small
    # sub-windows that is 0.5 / 0.9; the 0.99 tail needs few-k merging,
    # which the distributed-coordinator tests cover with pooled tails.
    # The tolerance also absorbs the tiny remnant sub-windows a random
    # split produces (the engine itself only ever seals full periods).
    "qlove": dict(
        dataset="netmon", params={}, check="value", tol=0.10, check_phis=(0.5, 0.9)
    ),
    "cmqs": dict(dataset="netmon", params={"epsilon": 0.05}, check="rank", tol=0.05),
    "am": dict(dataset="netmon", params={"epsilon": 0.05}, check="rank", tol=0.10),
    "random": dict(
        dataset="netmon", params={"epsilon": 0.05, "seed": 7}, check="rank", tol=0.10
    ),
    "moment": dict(dataset="normal", params={"k": 8}, check="value", tol=0.05),
}

SEEDS = (0, 1)
SHARD_COUNTS = (1, 2, 4, 7)
SPLITS = ("even", "skewed")


def test_battery_covers_every_registered_policy():
    """A new policy cannot register without joining the battery."""
    assert set(CASES) == set(available_policies())


def shard_weights(kind: str, k: int) -> np.ndarray:
    if kind == "even":
        weights = np.ones(k)
    else:  # geometric occupancies: first shard dominates
        weights = 0.55 ** np.arange(k)
    return weights / weights.sum()


def drive(policy, values: np.ndarray) -> None:
    """Feed a shard's sub-stream, sealing every period (and the remnant).

    Sealing the final partial sub-window puts every element into sealed
    state, so policies that only answer at period boundaries (Exact) can
    be queried and nothing silently drops out of the comparison.
    """
    period = policy.window.period
    for start in range(0, len(values), period):
        policy.accumulate_batch(values[start : start + period])
        policy.seal_subwindow()


def build_merged(name, case, values, assignment, k):
    shards = []
    for shard_index in range(k):
        shard = make_policy(name, PHIS, WINDOW, **case["params"])
        drive(shard, values[assignment == shard_index])
        shards.append(shard)
    merged = make_policy(name, PHIS, WINDOW, **case["params"])
    for shard in shards:
        merged.merge(shard)
    return merged


@pytest.mark.parametrize("split", SPLITS)
@pytest.mark.parametrize("k", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(CASES))
def test_merge_matches_unsplit(name, seed, k, split):
    case = CASES[name]
    values = get_dataset(case["dataset"], STREAM_LENGTH, seed=seed)
    rng = np.random.default_rng(1000 * seed + k)
    assignment = rng.choice(k, size=STREAM_LENGTH, p=shard_weights(split, k))

    unsplit = make_policy(name, PHIS, WINDOW, **case["params"])
    drive(unsplit, values)
    merged = build_merged(name, case, values, assignment, k)

    merged_answer = merged.query()
    unsplit_answer = unsplit.query()
    if case["check"] == "identical":
        assert merged_answer == unsplit_answer
        truth = dict(zip(PHIS, exact_quantiles(values, PHIS)))
        assert merged_answer == truth
        return
    if case["check"] == "rank":
        ordered = np.sort(values)
        for phi in PHIS:
            assert rank_error(ordered, merged_answer[phi], phi) <= case["tol"]
            # ... and within the combined budget of the unsplit answer.
            assert rank_error(ordered, unsplit_answer[phi], phi) <= case["tol"]
        return
    truth = dict(zip(PHIS, exact_quantiles(values, PHIS)))
    for phi in case.get("check_phis", PHIS):
        assert relative_value_error(merged_answer[phi], truth[phi]) <= case["tol"]
        assert (
            relative_value_error(merged_answer[phi], unsplit_answer[phi])
            <= 2 * case["tol"]
        )


class TestMergeValidation:
    def test_rejects_different_type(self):
        a = make_policy("qlove", PHIS, WINDOW)
        b = make_policy("exact", PHIS, WINDOW)
        with pytest.raises(TypeError, match="cannot merge"):
            a.merge(b)

    def test_rejects_different_phis(self):
        a = make_policy("exact", [0.5], WINDOW)
        b = make_policy("exact", [0.9], WINDOW)
        with pytest.raises(ValueError, match="same quantiles"):
            a.merge(b)

    def test_rejects_different_window(self):
        a = make_policy("exact", PHIS, WINDOW)
        b = make_policy("exact", PHIS, CountWindow(size=1024, period=256))
        with pytest.raises(ValueError, match="same window shape"):
            a.merge(b)

    @pytest.mark.parametrize("name", ["cmqs", "am", "random"])
    def test_rejects_different_epsilon(self, name):
        a = make_policy(name, PHIS, WINDOW, epsilon=0.05)
        b = make_policy(name, PHIS, WINDOW, epsilon=0.02)
        with pytest.raises(ValueError, match="same epsilon"):
            a.merge(b)

    def test_rejects_different_moment_count(self):
        a = make_policy("moment", PHIS, WINDOW, k=8)
        b = make_policy("moment", PHIS, WINDOW, k=10)
        with pytest.raises(ValueError, match="same moment count"):
            a.merge(b)

    def test_rejects_different_qlove_config(self):
        from repro.core import QLOVEConfig

        a = make_policy("qlove", PHIS, WINDOW)
        b = make_policy("qlove", PHIS, WINDOW, config=QLOVEConfig(quantize_digits=None))
        with pytest.raises(ValueError, match="same QLOVE configuration"):
            a.merge(b)


class TestMergeAlgebra:
    def test_merge_is_order_insensitive_for_exact(self):
        values = get_dataset("netmon", STREAM_LENGTH, seed=3)
        rng = np.random.default_rng(3)
        assignment = rng.choice(4, size=STREAM_LENGTH)
        shards = []
        for i in range(4):
            shard = make_policy("exact", PHIS, WINDOW)
            drive(shard, values[assignment == i])
            shards.append(shard)
        forward = make_policy("exact", PHIS, WINDOW)
        backward = make_policy("exact", PHIS, WINDOW)
        for shard in shards:
            forward.merge(shard)
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.query() == backward.query()

    def test_merge_is_associative_for_qlove(self):
        """Fleet-of-fleets: merging pre-merged halves equals merging all."""
        values = get_dataset("netmon", STREAM_LENGTH, seed=4)
        rng = np.random.default_rng(4)
        assignment = rng.choice(4, size=STREAM_LENGTH)
        shards = []
        for i in range(4):
            shard = make_policy("qlove", PHIS, WINDOW)
            drive(shard, values[assignment == i])
            shards.append(shard)
        flat = make_policy("qlove", PHIS, WINDOW)
        for shard in shards:
            flat.merge(shard)
        left = make_policy("qlove", PHIS, WINDOW)
        left.merge(shards[0])
        left.merge(shards[1])
        right = make_policy("qlove", PHIS, WINDOW)
        right.merge(shards[2])
        right.merge(shards[3])
        nested = make_policy("qlove", PHIS, WINDOW)
        nested.merge(left)
        nested.merge(right)
        assert nested.query() == flat.query()

    def test_merging_empty_policy_is_identity(self):
        values = get_dataset("netmon", STREAM_LENGTH, seed=5)
        policy = make_policy("qlove", PHIS, WINDOW)
        drive(policy, values)
        before = policy.query()
        policy.merge(make_policy("qlove", PHIS, WINDOW))
        assert policy.query() == before


class TestReset:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_reset_restores_fresh_behaviour(self, name):
        case = CASES[name]
        values = get_dataset(case["dataset"], STREAM_LENGTH, seed=6)
        fresh = make_policy(name, PHIS, WINDOW, **case["params"])
        drive(fresh, values)
        reference = fresh.query()

        reused = make_policy(name, PHIS, WINDOW, **case["params"])
        drive(reused, values[: STREAM_LENGTH // 2])
        reused.reset()
        # Back to the fresh baseline (constant-space components remain).
        baseline = make_policy(name, PHIS, WINDOW, **case["params"])
        assert reused.space_variables() == baseline.space_variables()
        assert reused.peak_space_variables() == baseline.peak_space_variables()
        drive(reused, values)
        if name == "random":
            # The shared RNG advanced during the first pass, so the replay
            # is a different (equally valid) sample: check the bound, not
            # bit-identity.
            ordered = np.sort(values)
            for phi in PHIS:
                assert rank_error(ordered, reused.query()[phi], phi) <= case["tol"]
        else:
            assert reused.query() == reference
