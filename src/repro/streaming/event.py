"""Stream elements: a value with a timestamp and telemetry metadata.

"Each element e has its value associated with a timestamp t that captures
the order of e's occurrence" (Section 2).  The ``error_code`` field mirrors
the ``Where(e => e.errorCode != 0)`` predicate of the paper's ``Qmonitor``
query, and ``source`` identifies the emitting probe (e.g. a server pair in
the Pingmesh-like datacenter simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """One immutable telemetry measurement.

    Ordering compares ``(timestamp, value)`` so heterogeneous sources can be
    merged with ``heapq.merge``; metadata fields are excluded from ordering.
    """

    timestamp: float
    value: float
    error_code: int = field(default=0, compare=False)
    source: Optional[str] = field(default=None, compare=False)

    def with_value(self, value: float) -> "Event":
        """Copy of this event carrying a projected value (``Select``)."""
        return replace(self, value=value)

    @property
    def is_error(self) -> bool:
        """True when the probe reported a failure code."""
        return self.error_code != 0
