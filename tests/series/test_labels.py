"""Label validation, canonical series keys, and the length-cap contract.

Pins the naming layer's edge cases: every malformed schema or labelset
is rejected up front with an actionable message, reserved characters
survive percent-encoding round-trips, and over-long encodings degrade
deterministically into hashed keys.
"""

import numpy as np
import pytest

from repro.series import (
    MAX_ENCODED_LABELSET,
    canonical_labelset,
    deterministic_labelsets,
    encode_labelset,
    parse_series_key,
    series_key,
    series_slice,
    try_parse_series_key,
    validate_label_schema,
)
from repro.service.spec import MetricSpec


class TestSchemaValidation:
    def test_returns_sorted_name_tuple(self):
        assert validate_label_schema(["host", "region"], "m") == ("host", "region")
        assert validate_label_schema(["region", "host"], "m") == ("host", "region")

    def test_rejects_bare_string_schema(self):
        with pytest.raises(ValueError, match="list of label names"):
            validate_label_schema("region", "m")

    def test_rejects_empty_schema(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_label_schema([], "m")

    def test_rejects_non_string_name(self):
        with pytest.raises(ValueError, match="must be strings.*int"):
            validate_label_schema(["region", 7], "m")

    @pytest.mark.parametrize("bad", ["", "0day", "a b", "k=v", "a,b", "x{y}"])
    def test_rejects_invalid_name_with_the_rule(self, bad):
        with pytest.raises(ValueError, match=r"invalid label name.*A-Za-z_"):
            validate_label_schema(["ok", bad], "m")

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match=r"duplicate label name\(s\) \['a'\]"):
            validate_label_schema(["a", "b", "a"], "m")

    def test_duplicate_names_rejected_through_spec_from_dict(self):
        with pytest.raises(ValueError, match="duplicate label name"):
            MetricSpec.from_dict(
                {
                    "name": "m",
                    "quantiles": [0.5],
                    "window": {"size": 100, "period": 50},
                    "labels": ["region", "region"],
                }
            )

    def test_accepts_dots_dashes_underscores(self):
        assert validate_label_schema(["a.b", "c-d", "_e"], "m") == (
            "_e",
            "a.b",
            "c-d",
        )


class TestLabelsetValidation:
    SCHEMA = ("host", "region")

    def test_canonical_order_is_sorted_by_name(self):
        items = canonical_labelset(
            {"region": "eu", "host": "a"}, self.SCHEMA, "m"
        )
        assert items == (("host", "a"), ("region", "eu"))

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping, got list"):
            canonical_labelset([("region", "eu")], self.SCHEMA, "m")

    def test_missing_label_names_the_schema(self):
        with pytest.raises(ValueError, match=r"missing label\(s\) \['host'\]"):
            canonical_labelset({"region": "eu"}, self.SCHEMA, "m")

    def test_extra_label_names_the_schema(self):
        with pytest.raises(ValueError, match=r"unknown label\(s\) \['zone'\]"):
            canonical_labelset(
                {"region": "eu", "host": "a", "zone": "z"}, self.SCHEMA, "m"
            )

    def test_rejects_empty_value(self):
        with pytest.raises(ValueError, match="non-empty string, got ''"):
            canonical_labelset({"region": "", "host": "a"}, self.SCHEMA, "m")

    @pytest.mark.parametrize("bad", [7, None, 1.5, b"eu"])
    def test_rejects_non_string_value(self, bad):
        with pytest.raises(ValueError, match="non-empty string"):
            canonical_labelset({"region": bad, "host": "a"}, self.SCHEMA, "m")


class TestSeriesKeyEncoding:
    def test_reserved_characters_round_trip(self):
        labels = {"path": "a=b,c{d}e%f", "q": "x\ny"}
        items = canonical_labelset(labels, ("path", "q"), "m")
        key = series_key("m", items)
        parsed = parse_series_key(key)
        assert parsed.metric == "m"
        assert parsed.labels == labels
        assert not parsed.hashed

    def test_encoding_is_injective_across_structures(self):
        # Without percent-encoding these two would collide on "a=x,b=y".
        one = series_key("m", canonical_labelset({"a": "x,b=y"}, ("a",), "m"))
        two = series_key(
            "m", canonical_labelset({"a": "x", "b": "y"}, ("a", "b"), "m")
        )
        assert one != two

    def test_key_shape_and_determinism(self):
        items = canonical_labelset({"region": "eu"}, ("region",), "m")
        assert series_key("m", items) == "m{region=eu}"
        assert series_key("m", items) == series_key("m", items)

    def test_over_long_encoding_hashes_deterministically(self):
        labels = {"blob": "x" * (MAX_ENCODED_LABELSET + 1)}
        items = canonical_labelset(labels, ("blob",), "m")
        key = series_key("m", items)
        assert key.startswith("m{#") and key.endswith("}")
        assert len(key) == len("m{#}") + 32  # sha256 prefix, bounded
        assert key == series_key("m", items)
        other = canonical_labelset(
            {"blob": "y" * (MAX_ENCODED_LABELSET + 1)}, ("blob",), "m"
        )
        assert series_key("m", other) != key

    def test_hashed_key_parses_as_hashed_without_labels(self):
        labels = {"blob": "x" * 400}
        key = series_key("m", canonical_labelset(labels, ("blob",), "m"))
        parsed = parse_series_key(key)
        assert parsed.hashed and parsed.labels is None and parsed.metric == "m"

    def test_at_cap_encoding_stays_verbatim(self):
        # Exactly at the cap: stored verbatim, still decodable.
        value = "x" * (MAX_ENCODED_LABELSET - len("blob="))
        items = canonical_labelset({"blob": value}, ("blob",), "m")
        assert len(encode_labelset(items)) == MAX_ENCODED_LABELSET
        assert parse_series_key(series_key("m", items)).labels == {"blob": value}

    def test_parse_rejects_plain_metric_names(self):
        with pytest.raises(ValueError, match="not a series key"):
            parse_series_key("rtt")

    def test_parse_rejects_malformed_component(self):
        with pytest.raises(ValueError, match="malformed label component"):
            parse_series_key("m{noequals}")

    def test_try_parse_skips_non_series_keys(self):
        assert try_parse_series_key("rtt") is None
        assert try_parse_series_key("m{noequals}") is None
        parsed = try_parse_series_key("m{region=eu}")
        assert parsed is not None and parsed.labels == {"region": "eu"}


class TestDeterministicLabelsets:
    def test_pure_function_of_arguments(self):
        assert deterministic_labelsets(["region", "host"], 10, 3) == (
            deterministic_labelsets(["host", "region"], 10, 3)
        )

    def test_all_labelsets_distinct(self):
        sets = deterministic_labelsets(["region", "host"], 12, 3)
        assert len({tuple(sorted(ls.items())) for ls in sets}) == 12

    def test_first_sorted_label_cycles_fanout_values(self):
        sets = deterministic_labelsets(["region", "host"], 8, 3)
        hosts = {ls["host"] for ls in sets}
        assert hosts == {"host-000", "host-001", "host-002"}
        assert sets[0]["host"] == sets[3]["host"] == "host-000"

    def test_single_label_schema_fans_out_only(self):
        sets = deterministic_labelsets(["region"], 4, 2)
        assert [ls["region"] for ls in sets] == [
            "region-000", "region-001", "region-000", "region-001",
        ]

    @pytest.mark.parametrize("n_series,fanout", [(0, 1), (1, 0), (-3, 2)])
    def test_rejects_non_positive_arguments(self, n_series, fanout):
        with pytest.raises(ValueError, match=">= 1"):
            deterministic_labelsets(["region"], n_series, fanout)


class TestSeriesSlice:
    def test_slices_partition_the_block(self):
        values = np.arange(23, dtype=np.float64)
        slices = [series_slice(values, 0, 5, j) for j in range(5)]
        recombined = np.full(23, -1.0)
        for j, sub in enumerate(slices):
            recombined[j::5] = sub
        assert np.array_equal(recombined, values)

    def test_assignment_independent_of_block_boundaries(self):
        values = np.arange(40, dtype=np.float64)
        for j in range(3):
            whole = series_slice(values, 0, 3, j)
            split = np.concatenate(
                [series_slice(values[:17], 0, 3, j),
                 series_slice(values[17:], 17, 3, j)]
            )
            assert np.array_equal(whole, split)

    def test_offset_shifts_ownership(self):
        values = np.arange(6, dtype=np.float64)
        # Global positions 4..9: series 1 owns 4 and 7.
        assert series_slice(values, 4, 3, 1).tolist() == [0.0, 3.0]

    def test_rejects_non_positive_series_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            series_slice(np.arange(3, dtype=np.float64), 0, 0, 0)
