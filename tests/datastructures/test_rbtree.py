"""Unit and property tests for the red-black tree substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert tree.total == 0
        assert not tree
        assert list(tree.items()) == []

    def test_single_insert(self):
        tree = RedBlackTree()
        tree.insert(5.0)
        assert len(tree) == 1
        assert tree.total == 1
        assert tree.get(5.0) == 1
        assert 5.0 in tree

    def test_duplicate_inserts_compress(self):
        tree = RedBlackTree()
        for _ in range(10):
            tree.insert(3.0)
        assert len(tree) == 1
        assert tree.total == 10
        assert tree.get(3.0) == 10

    def test_insert_with_count(self):
        tree = RedBlackTree()
        tree.insert(1.0, count=7)
        assert tree.total == 7
        assert tree.get(1.0) == 7

    def test_insert_rejects_nonpositive_count(self):
        tree = RedBlackTree()
        with pytest.raises(ValueError):
            tree.insert(1.0, count=0)
        with pytest.raises(ValueError):
            tree.insert(1.0, count=-3)

    def test_items_sorted(self):
        tree = RedBlackTree()
        for v in [5, 1, 9, 3, 7]:
            tree.insert(float(v))
        assert [k for k, _ in tree.items()] == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_items_descending(self):
        tree = RedBlackTree()
        for v in [5, 1, 9, 3, 7]:
            tree.insert(float(v))
        assert [k for k, _ in tree.items_descending()] == [9.0, 7.0, 5.0, 3.0, 1.0]

    def test_min_max(self):
        tree = RedBlackTree()
        for v in [5, 1, 9]:
            tree.insert(float(v))
        assert tree.min_key() == 1.0
        assert tree.max_key() == 9.0

    def test_min_max_empty_raises(self):
        tree = RedBlackTree()
        with pytest.raises(KeyError):
            tree.min_key()
        with pytest.raises(KeyError):
            tree.max_key()

    def test_clear(self):
        tree = RedBlackTree()
        for v in range(100):
            tree.insert(float(v))
        tree.clear()
        assert len(tree) == 0
        assert tree.total == 0


class TestRemoval:
    def test_remove_decrements_frequency(self):
        tree = RedBlackTree()
        tree.insert(4.0, count=3)
        tree.remove(4.0)
        assert tree.get(4.0) == 2
        assert tree.total == 2

    def test_remove_deletes_node_at_zero(self):
        tree = RedBlackTree()
        tree.insert(4.0, count=2)
        tree.remove(4.0, count=2)
        assert 4.0 not in tree
        assert len(tree) == 0

    def test_remove_missing_raises(self):
        tree = RedBlackTree()
        with pytest.raises(KeyError):
            tree.remove(1.0)

    def test_remove_undercount_raises(self):
        tree = RedBlackTree()
        tree.insert(1.0, count=2)
        with pytest.raises(KeyError):
            tree.remove(1.0, count=5)

    def test_remove_nonpositive_count_raises(self):
        tree = RedBlackTree()
        tree.insert(1.0)
        with pytest.raises(ValueError):
            tree.remove(1.0, count=0)

    def test_interleaved_insert_remove(self):
        tree = RedBlackTree()
        rng = random.Random(7)
        shadow: dict[float, int] = {}
        for _ in range(2000):
            key = float(rng.randrange(50))
            if rng.random() < 0.6 or shadow.get(key, 0) == 0:
                tree.insert(key)
                shadow[key] = shadow.get(key, 0) + 1
            else:
                tree.remove(key)
                shadow[key] -= 1
                if shadow[key] == 0:
                    del shadow[key]
            if _ % 200 == 0:
                tree.check_invariants()
        assert dict(tree.items()) == shadow
        tree.check_invariants()


class TestOrderStatistics:
    def test_select_simple(self):
        tree = RedBlackTree()
        for v in [10, 20, 30]:
            tree.insert(float(v))
        assert tree.select(1) == 10.0
        assert tree.select(2) == 20.0
        assert tree.select(3) == 30.0

    def test_select_with_frequencies(self):
        tree = RedBlackTree()
        tree.insert(1.0, count=3)
        tree.insert(2.0, count=2)
        assert [tree.select(r) for r in range(1, 6)] == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_select_out_of_range(self):
        tree = RedBlackTree()
        tree.insert(1.0)
        with pytest.raises(IndexError):
            tree.select(0)
        with pytest.raises(IndexError):
            tree.select(2)

    def test_rank_of(self):
        tree = RedBlackTree()
        tree.insert(1.0, count=3)
        tree.insert(2.0, count=2)
        tree.insert(5.0, count=1)
        assert tree.rank_of(1.0) == 0
        assert tree.rank_of(2.0) == 3
        assert tree.rank_of(5.0) == 5
        assert tree.rank_of(3.0) == 5  # absent key: strictly-smaller count
        assert tree.rank_of(0.5) == 0

    def test_select_matches_sorted_list(self):
        rng = random.Random(3)
        values = [float(rng.randrange(100)) for _ in range(500)]
        tree = RedBlackTree()
        for v in values:
            tree.insert(v)
        expected = sorted(values)
        for rank in range(1, len(values) + 1):
            assert tree.select(rank) == expected[rank - 1]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300))
def test_property_inorder_is_sorted_multiset(values):
    tree = RedBlackTree()
    for v in values:
        tree.insert(float(v))
    tree.check_invariants()
    flattened = []
    for key, count in tree.items():
        flattened.extend([key] * count)
    assert flattened == sorted(float(v) for v in values)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
        max_size=400,
    )
)
def test_property_invariants_under_mixed_ops(ops):
    tree = RedBlackTree()
    shadow: dict[float, int] = {}
    for is_insert, raw in ops:
        key = float(raw)
        if is_insert or shadow.get(key, 0) == 0:
            tree.insert(key)
            shadow[key] = shadow.get(key, 0) + 1
        else:
            tree.remove(key)
            shadow[key] -= 1
            if shadow[key] == 0:
                del shadow[key]
    tree.check_invariants()
    assert tree.total == sum(shadow.values())
    assert len(tree) == len(shadow)
    assert dict(tree.items()) == shadow


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=200))
def test_property_select_agrees_with_sorted(values):
    tree = RedBlackTree()
    for v in values:
        tree.insert(v)
    expected = sorted(values)
    for rank in (1, len(values) // 2 + 1, len(values)):
        assert tree.select(rank) == expected[rank - 1]
