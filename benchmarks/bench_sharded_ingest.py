"""Sharded execution: merge-at-boundary correctness and scaling vs shards.

The sharded subsystem partitions a chunk stream across N shard policies
and merges their in-flight states into a master at every period boundary
(``streaming/sharded.py``).  This benchmark is its acceptance gate:

- ``n_shards=1`` must be **bit-identical** to ``StreamEngine.run_chunked``
  (the partition/merge machinery adds no semantic drift), and QLOVE/Exact
  answers must stay identical at every shard count (commutative merges);
- serial sharding must not cost more than the partition+merge overhead
  budget (it exists to feed the parallel backend, not to win serially);
- the multiprocessing backend must agree with the serial one.
"""

from functools import partial

import pytest

from repro.core import QLOVEPolicy
from repro.evalkit import Table, measure_throughput_batched, measure_throughput_sharded
from repro.sketches import make_policy
from repro.sketches.base import PolicyOperator
from repro.streaming import CountWindow, ExecutionPlan, Query, StreamEngine
from repro.workloads import generate_netmon

N = 200_000
WINDOW = CountWindow(size=32_000, period=8_000)
PHIS = [0.5, 0.9, 0.99, 0.999]
CHUNK_SIZE = 16_384
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def netmon_values():
    return generate_netmon(N, seed=0)


def _qlove_factory():
    return QLOVEPolicy(PHIS, WINDOW)


def test_sharded_ingest_scaling(benchmark, netmon_values, bench_json_sink):
    """Table: serial sharded M ev/s per shard count vs the batched path."""

    def run():
        batched = measure_throughput_batched(
            _qlove_factory, netmon_values, WINDOW, chunk_size=CHUNK_SIZE
        )
        sharded = {
            n: measure_throughput_sharded(
                _qlove_factory,
                netmon_values,
                WINDOW,
                n_shards=n,
                chunk_size=CHUNK_SIZE,
            )
            for n in SHARD_COUNTS
        }
        return batched, sharded

    batched, sharded = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_json_sink(
        "sharded",
        {
            "workload": "netmon",
            "events": N,
            "window": {"size": WINDOW.size, "period": WINDOW.period},
            "chunk_size": CHUNK_SIZE,
            "policy": "qlove",
            "batched_events_per_s": batched.events_per_second,
            "shards": {
                str(n): {
                    "events_per_s": outcome.events_per_second,
                    "vs_batched": outcome.events_per_second
                    / batched.events_per_second,
                }
                for n, outcome in sharded.items()
            },
        },
    )

    table = Table(
        f"Sharded QLOVE ingest, NetMon {N:,} elements, "
        f"window {WINDOW.size // 1000}K/{WINDOW.period // 1000}K, "
        f"chunks of {CHUNK_SIZE:,}",
        ["path", "M ev/s", "vs batched"],
    )
    table.add_row("batched (no shards)", f"{batched.million_events_per_second:.3f}", "1.00x")
    for n, outcome in sharded.items():
        ratio = outcome.events_per_second / batched.events_per_second
        table.add_row(
            f"sharded n={n}", f"{outcome.million_events_per_second:.3f}", f"{ratio:.2f}x"
        )
    print()
    print(table.render())

    # Every path must evaluate the same number of windows.
    for outcome in sharded.values():
        assert outcome.evaluations == batched.evaluations
    # Serial one-shard execution rides the same bulk-ingest path; the
    # partition/merge overhead must stay within a 2.5x envelope.
    one = sharded[1]
    assert one.events_per_second >= batched.events_per_second / 2.5, (
        f"single-shard overhead too high: {one.million_events_per_second:.3f} vs "
        f"{batched.million_events_per_second:.3f} M ev/s"
    )


def _sharded_plan(factory, n_shards, parallel=False):
    return ExecutionPlan(
        mode="sharded",
        n_shards=n_shards,
        parallel=parallel,
        chunk_size=CHUNK_SIZE,
        policy_factory=factory,
    )


def test_sharded_results_identical(netmon_values):
    """Sharding must not buy throughput with accuracy: same WindowResults."""
    engine = StreamEngine()
    reference = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(QLOVEPolicy(PHIS, WINDOW))),
        ExecutionPlan(mode="batched", chunk_size=CHUNK_SIZE),
    )
    for n in SHARD_COUNTS:
        sharded = engine.execute_to_list(
            Query(netmon_values).windowed_by(WINDOW),
            _sharded_plan(_qlove_factory, n),
        )
        assert sharded == reference, f"divergence at n_shards={n}"
    exact_reference = engine.execute_to_list(
        Query(netmon_values)
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(make_policy("exact", PHIS, WINDOW))),
        ExecutionPlan(mode="batched", chunk_size=CHUNK_SIZE),
    )
    exact_sharded = engine.execute_to_list(
        Query(netmon_values).windowed_by(WINDOW),
        _sharded_plan(partial(make_policy, "exact", PHIS, WINDOW), 4),
    )
    assert exact_sharded == exact_reference


def test_parallel_backend_agrees_with_serial(netmon_values):
    """Smoke the multiprocessing pool backend on a shortened stream."""
    short = netmon_values[:64_000]
    engine = StreamEngine()
    serial = engine.execute_to_list(
        Query(short).windowed_by(WINDOW), _sharded_plan(_qlove_factory, 2)
    )
    parallel = engine.execute_to_list(
        Query(short).windowed_by(WINDOW),
        _sharded_plan(_qlove_factory, 2, parallel=True),
    )
    assert parallel == serial
