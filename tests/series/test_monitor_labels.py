"""Monitor's labeled surface: registration, routing, checkpoints.

Pins the facade contract: labeled and unlabeled metrics share one
namespace and one registration order, every mis-routed observation is
rejected with the fix in the message, and a v2 checkpoint carries the
whole series index — while v1 (pre-labels) checkpoints still load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import serde
from repro.service.monitor import Monitor
from repro.service.spec import MetricSpec

from tests.series.conftest import (
    battery_labelsets,
    ingest_round_robin,
    make_family_spec,
    stream_values,
)

LS = battery_labelsets(fanout=2, hosts_per_region=1)  # two series


def labeled_spec(**kwargs):
    return make_family_spec(
        "exact", name="lat", window={"size": 40, "period": 10}, **kwargs
    )


def plain_spec(name="rtt"):
    return MetricSpec(
        name=name, quantiles=[0.5], window={"size": 40, "period": 10},
        policy="exact",
    )


def mixed_monitor() -> Monitor:
    monitor = Monitor()
    monitor.register(plain_spec())
    monitor.register(labeled_spec())
    return monitor


class TestRegistration:
    def test_labeled_spec_registers_a_family(self):
        monitor = mixed_monitor()
        assert monitor.metrics() == ["rtt", "lat"]
        assert monitor.labeled_metrics() == ["lat"]
        assert "lat" in monitor and len(monitor) == 2
        assert monitor.specs()[1].labels == ("host", "region")

    def test_dict_form_round_trips_labels_and_series_options(self):
        monitor = Monitor()
        spec = monitor.register(
            {
                "name": "lat",
                "quantiles": [0.5],
                "window": {"size": 40, "period": 10},
                "policy": "exact",
                "labels": ["region"],
                "series": {"max_active": 8},
            }
        )
        assert spec.labels == ("region",)
        assert spec.series == {"max_active": 8}
        assert MetricSpec.from_dict(spec.to_dict()) == spec

    def test_duplicate_name_across_kinds_rejected(self):
        monitor = Monitor()
        monitor.register(labeled_spec())
        with pytest.raises(ValueError, match="already registered"):
            monitor.register(plain_spec(name="lat"))

    def test_on_result_rejected_for_labeled_metrics(self):
        monitor = Monitor()
        with pytest.raises(ValueError, match="not\\s+supported on labeled"):
            monitor.register(labeled_spec(), on_result=lambda *a: None)
        monitor.register(labeled_spec())
        with pytest.raises(ValueError, match="group_by"):
            monitor.on_result("lat", lambda *a: None)

    def test_attach_recorder_points_to_series_history(self):
        monitor = Monitor()
        monitor.register(labeled_spec())
        with pytest.raises(ValueError, match="attach_series_history"):
            monitor.attach_recorder("lat", lambda *a: None)

    def test_series_options_without_labels_rejected(self):
        with pytest.raises(ValueError, match="only valid on\\s+a labeled"):
            MetricSpec(
                name="x", quantiles=[0.5], window={"size": 10, "period": 5},
                series={"shards": 2},
            )


class TestObservationRouting:
    def test_labeled_metric_requires_labels(self):
        monitor = mixed_monitor()
        with pytest.raises(ValueError, match=r"pass\s+labels="):
            monitor.observe("lat", 1.0)
        with pytest.raises(ValueError, match=r"pass\s+labels="):
            monitor.observe_batch("lat", np.ones(3))

    def test_unlabeled_metric_rejects_labels(self):
        monitor = mixed_monitor()
        with pytest.raises(ValueError, match="not labeled"):
            monitor.observe("rtt", 1.0, labels=LS[0])
        with pytest.raises(ValueError, match="not labeled"):
            monitor.observe_batch("rtt", np.ones(3), labels=LS[0])

    def test_labelset_must_match_schema(self):
        monitor = mixed_monitor()
        with pytest.raises(ValueError, match="missing label"):
            monitor.observe("lat", 1.0, labels={"region": "eu"})
        with pytest.raises(ValueError, match="unknown label"):
            monitor.observe(
                "lat", 1.0,
                labels={"region": "eu", "host": "a", "zone": "z"},
            )

    def test_unknown_metric_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown metric"):
            mixed_monitor().observe("nope", 1.0)

    def test_series_route_is_the_canonical_key(self):
        monitor = mixed_monitor()
        route = monitor.series_route("lat", {"host": "a", "region": "eu"})
        assert route == "lat{host=a,region=eu}"
        with pytest.raises(ValueError, match="missing label"):
            monitor.series_route("lat", {"region": "eu"})
        with pytest.raises(ValueError, match="not labeled"):
            monitor.series_route("rtt", {"region": "eu"})


class TestQuerySurface:
    def test_snapshot_nests_labeled_metrics_in_key_order(self):
        monitor = mixed_monitor()
        monitor.observe_batch("rtt", stream_values(0, 40))
        ingest_round_robin(monitor, "lat", stream_values(1, 80), LS)
        snapshot = monitor.snapshot()
        assert list(snapshot) == ["rtt", "lat"]
        assert isinstance(snapshot["rtt"], dict)  # {phi: estimate}
        keys = list(snapshot["lat"])
        assert keys == sorted(keys) and len(keys) == 2
        assert all(isinstance(v, dict) for v in snapshot["lat"].values())

    def test_results_routing_both_directions(self):
        monitor = mixed_monitor()
        # 160 events -> 80 per series; window 40/10 => evaluations at
        # elements 40, 50, 60, 70, 80 of each series.
        ingest_round_robin(monitor, "lat", stream_values(1, 160), LS)
        assert len(monitor.results("lat", labels=LS[0])) == 5
        with pytest.raises(ValueError, match="pass labels="):
            monitor.results("lat")
        with pytest.raises(ValueError, match="drop labels="):
            monitor.results("rtt", labels=LS[0])

    def test_group_by_on_unlabeled_metric_is_actionable(self):
        with pytest.raises(ValueError, match="not labeled"):
            mixed_monitor().group_by("rtt", "region")
        with pytest.raises(KeyError, match="unknown metric"):
            mixed_monitor().group_by("nope", "region")

    def test_seen_counts_and_len_cover_families(self):
        monitor = mixed_monitor()
        monitor.observe_batch("rtt", stream_values(0, 17))
        ingest_round_robin(monitor, "lat", stream_values(1, 23), LS)
        assert monitor.seen_counts() == {"rtt": 17, "lat": 23}

    def test_space_report_has_a_series_block(self):
        monitor = mixed_monitor()
        ingest_round_robin(monitor, "lat", stream_values(1, 30), LS)
        report = monitor.space_report()
        assert "series" not in report["rtt"]
        series = report["lat"]["series"]
        assert series["active"] == 2 and series["created"] == 2
        assert report["lat"]["labels"] == ["host", "region"]

    def test_series_stats_counters(self):
        monitor = Monitor()
        monitor.register(labeled_spec(series={"max_active": 1}))
        ingest_round_robin(monitor, "lat", stream_values(2, 40), LS)
        stats = monitor.series_stats("lat")
        assert stats["active"] == 1
        assert stats["evictions"] > 0 and stats["resurrections"] > 0
        with pytest.raises(ValueError, match="not labeled"):
            mixed_monitor().series_stats("rtt")


class TestMergeAndReset:
    def test_merge_folds_families(self):
        values = stream_values(3, 80)
        left, right, whole = mixed_monitor(), mixed_monitor(), mixed_monitor()
        ingest_round_robin(left, "lat", values[:40], LS)
        ingest_round_robin(right, "lat", values[40:], LS)
        ingest_round_robin(whole, "lat", values, LS)
        left.merge(right)
        assert left.seen_counts()["lat"] == 80
        # Exact policy: shard-and-merge reproduces the unsplit stream's
        # current-window answer (merge emits no evaluation of its own, so
        # the comparison reads the policies, not `latest`).
        assert (
            left.group_by("lat", ["host", "region"])["groups"]
            == whole.group_by("lat", ["host", "region"])["groups"]
        )

    def test_merge_missing_family_is_rejected(self):
        left = Monitor()
        left.register(plain_spec())
        with pytest.raises(ValueError, match="not registered"):
            left.merge(mixed_monitor())

    def test_reset_clears_series_but_keeps_registration(self):
        monitor = mixed_monitor()
        ingest_round_robin(monitor, "lat", stream_values(0, 20), LS)
        monitor.reset()
        assert monitor.seen_counts() == {"rtt": 0, "lat": 0}
        assert monitor.snapshot()["lat"] == {}
        assert monitor.labeled_metrics() == ["lat"]


class TestCheckpointRoundTrip:
    def fill(self, monitor):
        # Per-series streams stay period-aligned: Exact answers (which
        # group_by reads) exist only at period boundaries.
        monitor.observe_batch("rtt", stream_values(0, 55))
        ingest_round_robin(monitor, "lat", stream_values(1, 100), LS)

    def test_save_load_preserves_families_and_order(self, tmp_path):
        monitor = Monitor()
        monitor.register(labeled_spec(series={"max_active": 1}))
        monitor.register(plain_spec())
        self.fill(monitor)
        path = str(tmp_path / "ckpt.json")
        monitor.save(path)
        restored = Monitor.load(path)
        assert restored.metrics() == ["lat", "rtt"]
        assert restored.snapshot() == monitor.snapshot()
        assert restored.series_stats("lat") == monitor.series_stats("lat")
        assert restored.group_by("lat", "region") == monitor.group_by(
            "lat", "region"
        )

    def test_resumed_monitor_continues_bit_identically(self, tmp_path):
        monitor = mixed_monitor()
        self.fill(monitor)
        path = str(tmp_path / "ckpt.json")
        monitor.save(path)
        restored = Monitor.load(path)
        tail = stream_values(9, 60)
        for m in (monitor, restored):
            ingest_round_robin(m, "lat", tail, LS)
            m.observe_batch("rtt", tail)
        assert restored.snapshot() == monitor.snapshot()
        assert restored.results("lat", labels=LS[1]) == monitor.results(
            "lat", labels=LS[1]
        )

    def test_v1_checkpoint_without_families_still_loads(self):
        monitor = Monitor()
        monitor.register(plain_spec())
        monitor.observe_batch("rtt", stream_values(0, 45))
        state = monitor.to_state()
        del state["series_families"]
        del state["order"]
        state["version"] = 1
        restored = Monitor.from_state(state)
        assert restored.metrics() == ["rtt"]
        assert restored.snapshot() == monitor.snapshot()

    def test_corrupt_order_is_actionable(self):
        monitor = mixed_monitor()
        state = monitor.to_state()
        state["order"] = ["rtt"]
        with pytest.raises(serde.StateError, match="exactly once"):
            Monitor.from_state(state)
        state["order"] = ["rtt", "lat", "rtt"]
        with pytest.raises(serde.StateError, match="exactly once"):
            Monitor.from_state(state)
