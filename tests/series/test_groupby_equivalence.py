"""The group-by equivalence battery: merged answers vs offline streams.

The subsystem's acceptance property: for every composable policy, a
group's merged quantile answer — live over a :class:`SeriesIndex`, or
historical over per-series segment logs — is **bit-identical** to an
offline run that ingested the group's member streams concatenated in
canonical series-key order.  The battery crosses seeds, internal shard
counts and eviction on/off (LRU thrash included), because none of those
may influence a single answered byte.

Scope note: the contract is pinned in the no-expiry regime (the battery
window never fills).  An expiring window is inherently per-series — "the
last W events of each member" is not "the last W events of the
concatenation" — so equivalence there is not claimed, mirroring the
historical range-query battery's discipline.
"""

from __future__ import annotations

import pytest

from repro.service.monitor import Monitor
from repro.store import HistoryWriter, StoreError, group_by_store

from tests.series.conftest import (
    COMPOSABLE,
    SEEDS,
    as_wire,
    battery_labelsets,
    group_reference,
    ingest_round_robin,
    make_family_spec,
    stream_values,
)

#: 3 regions x 2 hosts; 600 events round-robin = 100 events (5 periods
#: of 20) per series — period-aligned, far below the no-expiry window.
LABELSETS = battery_labelsets(fanout=3, hosts_per_region=2)
EVENTS = 600
PERIODS_PER_SERIES = EVENTS // len(LABELSETS) // 20

#: Index configurations the answers must be invariant under.
CONFIGS = [
    pytest.param(None, id="shards-default"),
    pytest.param({"shards": 1}, id="shards-1"),
    pytest.param({"shards": 7, "max_active": 2}, id="sharded-lru-thrash"),
]


def ingested_monitor(policy: str, seed: int, series=None) -> Monitor:
    monitor = Monitor()
    monitor.register(make_family_spec(policy, name="lat", series=series))
    ingest_round_robin(monitor, "lat", stream_values(seed, EVENTS), LABELSETS)
    return monitor


class TestLiveGroupByBitIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_group_answer_matches_concatenated_offline_stream(
        self, policy, seed, config
    ):
        monitor = ingested_monitor(policy, seed, series=config)
        spec = monitor.specs()[0]
        result = monitor.group_by("lat", "region")
        reference = group_reference(
            spec, stream_values(seed, EVENTS), LABELSETS, "region"
        )
        assert result["by"] == ["region"]
        assert [g["key"]["region"] for g in result["groups"]] == sorted(reference)
        for group in result["groups"]:
            region = group["key"]["region"]
            assert group["quantiles"] == as_wire(reference[region]), (
                f"{policy} seed={seed} config={config} group={region}"
            )
            assert group["series"] == 2
            assert group["count"] == EVENTS // 3
        if config and config.get("max_active"):
            stats = monitor.series_stats("lat")
            assert stats["evictions"] > 0, "the thrash config must thrash"

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_full_schema_group_by_is_per_series(self, policy):
        monitor = ingested_monitor(policy, 0)
        spec = monitor.specs()[0]
        result = monitor.group_by("lat", ["region", "host"])
        assert len(result["groups"]) == len(LABELSETS)
        reference = group_reference(
            spec, stream_values(0, EVENTS), LABELSETS, "host"
        )
        for group in result["groups"]:
            assert group["series"] == 1
            assert group["quantiles"] == as_wire(reference[group["key"]["host"]])

    def test_eviction_cannot_change_any_answered_byte(self):
        # Non-period-aligned totals too: in-flight events ride along.
        # Only the 'evicted' bookkeeping field may differ across configs.
        values = stream_values(11, 613)
        results = []
        for series in (None, {"max_active": 1}, {"idle_ttl": 5, "shards": 3}):
            monitor = Monitor()
            monitor.register(
                make_family_spec("qlove", name="lat", series=series)
            )
            ingest_round_robin(monitor, "lat", values, LABELSETS)
            result = monitor.group_by("lat", "region")
            for group in result["groups"]:
                del group["evicted"]
            results.append((result, monitor.snapshot()))
        assert results[0] == results[1] == results[2]

    def test_evicted_members_are_counted_per_group(self):
        monitor = ingested_monitor("exact", 0, series={"max_active": 1})
        result = monitor.group_by("lat", "region")
        assert sum(g["evicted"] for g in result["groups"]) == len(LABELSETS) - 1

    def test_query_is_a_pure_read(self):
        monitor = ingested_monitor("qlove", 0)
        first = monitor.group_by("lat", "region")
        assert monitor.group_by("lat", "region") == first
        assert monitor.snapshot() == monitor.snapshot()


class TestQuantileSelection:
    def test_subset_selection(self):
        monitor = ingested_monitor("exact", 0)
        full = monitor.group_by("lat", "region")
        only99 = monitor.group_by("lat", "region", quantiles=[0.99])
        for got, want in zip(only99["groups"], full["groups"]):
            assert got["quantiles"] == {"0.99": want["quantiles"]["0.99"]}

    def test_untracked_quantile_is_actionable(self):
        monitor = ingested_monitor("exact", 0)
        with pytest.raises(ValueError, match="not tracked"):
            monitor.group_by("lat", "region", quantiles=[0.42])


class TestGroupByValidation:
    def test_unknown_label_names_the_schema(self):
        monitor = ingested_monitor("exact", 0)
        with pytest.raises(ValueError, match=r"unknown label\(s\) \['zone'\]"):
            monitor.group_by("lat", "zone")

    def test_empty_by_rejected(self):
        monitor = ingested_monitor("exact", 0)
        with pytest.raises(ValueError, match="non-empty list"):
            monitor.group_by("lat", [])

    def test_duplicate_by_rejected(self):
        monitor = ingested_monitor("exact", 0)
        with pytest.raises(ValueError, match="duplicate group-by"):
            monitor.group_by("lat", ["region", "region"])


class TestStoreGroupByBitIdentity:
    def write_labeled_history(self, tmp_path, policy, seed, series=None):
        monitor = Monitor()
        spec = monitor.register(
            make_family_spec(policy, name="lat", series=series)
        )
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        ingest_round_robin(
            monitor, "lat", stream_values(seed, EVENTS), LABELSETS
        )
        return writer.store, spec

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_full_range_matches_offline_reference(self, tmp_path, policy):
        store, spec = self.write_labeled_history(tmp_path, policy, 0)
        result = group_by_store(
            store, "lat", "region", 0, PERIODS_PER_SERIES
        )
        reference = group_reference(
            spec, stream_values(0, EVENTS), LABELSETS, "region"
        )
        for group in result["groups"]:
            region = group["key"]["region"]
            assert group["quantiles"] == as_wire(reference[region]), policy
            assert group["series"] == 2
            assert group["segments_merged"] == 2 * PERIODS_PER_SERIES

    def test_sub_range_matches_offline_reference(self, tmp_path):
        store, spec = self.write_labeled_history(tmp_path, "qlove", 7)
        result = group_by_store(store, "lat", "region", 1, 4)
        reference = group_reference(
            spec, stream_values(7, EVENTS), LABELSETS, "region", start=1, end=4
        )
        for group in result["groups"]:
            assert group["quantiles"] == as_wire(
                reference[group["key"]["region"]]
            )
            assert group["segments_merged"] == 2 * 3

    def test_eviction_thrash_writes_the_same_history(self, tmp_path):
        calm, _ = self.write_labeled_history(
            tmp_path, "exact", 3, series=None
        )
        thrash, _ = self.write_labeled_history(
            (tmp_path / "t"), "exact", 3, series={"max_active": 1}
        )

        def segment_map(store):
            return {
                key: [
                    (s.start_period, s.count, s.state)
                    for s in store.covering(key, 0, PERIODS_PER_SERIES)
                ]
                for key in store.metrics()
            }

        assert segment_map(calm) == segment_map(thrash)

    def test_store_group_by_answers_match_live(self, tmp_path):
        # Full-range historical == current-window live, same bytes.
        monitor = Monitor()
        monitor.register(make_family_spec("qlove", name="lat"))
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        ingest_round_robin(
            monitor, "lat", stream_values(0, EVENTS), LABELSETS
        )
        live = monitor.group_by("lat", "region")
        stored = group_by_store(
            writer.store, "lat", "region", 0, PERIODS_PER_SERIES
        )
        for lg, sg in zip(live["groups"], stored["groups"]):
            assert lg["key"] == sg["key"]
            assert lg["quantiles"] == sg["quantiles"]
            assert lg["count"] == sg["count"]

    def test_unlabeled_store_is_actionable(self, tmp_path):
        from tests.series.conftest import make_plain_spec
        from repro.service.monitor import Monitor as M

        monitor = M()
        monitor.register(
            make_plain_spec(make_family_spec("exact", name="lat"))
        )
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        monitor.observe_batch("lat", stream_values(0, 40))
        with pytest.raises(StoreError, match="no labeled series"):
            group_by_store(writer.store, "lat", "region", 0, 1)

    def test_hashed_keys_cannot_group_and_say_so(self, tmp_path):
        monitor = Monitor()
        monitor.register(
            make_family_spec(
                "exact", name="lat", labels=["region"], window={"size": 40, "period": 10}
            )
        )
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        long_labels = {"region": "x" * 400}
        for value in stream_values(0, 10):
            monitor.observe("lat", float(value), labels=long_labels)
        with pytest.raises(StoreError, match="length-capped"):
            group_by_store(writer.store, "lat", "region", 0, 1)

    def test_untracked_quantile_is_a_store_error(self, tmp_path):
        store, _ = self.write_labeled_history(tmp_path, "exact", 0)
        with pytest.raises(StoreError, match="not tracked"):
            group_by_store(
                store, "lat", "region", 0, 1, quantiles=[0.123]
            )
