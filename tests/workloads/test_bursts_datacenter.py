"""Burst injection, Figure-3 patterns, and the datacenter simulator."""

import math

import numpy as np
import pytest

from repro.core.config import exact_tail_size
from repro.streaming import CountWindow
from repro.workloads import (
    BurstPattern,
    Datacenter,
    DatacenterConfig,
    Incident,
    generate_netmon,
    inject_bursts,
    pattern_window,
)
from repro.workloads.datacenter import OK


class TestInjectBursts:
    def test_top_values_scaled_in_burst_subwindows(self):
        window = CountWindow(size=8000, period=1000)
        values = generate_netmon(16_000, seed=0)
        burst = inject_bursts(values, window, phi=0.999, factor=10.0)
        need = exact_tail_size(0.999, window.size)
        # First sub-window is a burst host: its top `need` values are 10x.
        original = np.sort(values[:1000])[-need:]
        modified = np.sort(burst[:1000])[-need:]
        np.testing.assert_allclose(modified, original * 10.0)
        # Second sub-window untouched.
        np.testing.assert_array_equal(burst[1000:2000], values[1000:2000])

    def test_burst_every_n_sub(self):
        window = CountWindow(size=4000, period=1000)
        values = np.ones(12_000)
        burst = inject_bursts(values, window, phi=0.999, factor=10.0)
        changed = np.where(burst != values)[0]
        # Bursts at sub-windows 0, 4, 8 (stride N/P = 4).
        hosts = sorted(set(changed // 1000))
        assert hosts == [0, 4, 8]

    def test_returns_copy(self):
        window = CountWindow(size=2000, period=1000)
        values = np.ones(4000)
        out = inject_bursts(values, window)
        assert out is not values
        assert values.max() == 1.0

    def test_validation(self):
        window = CountWindow(size=2000, period=1000)
        with pytest.raises(ValueError):
            inject_bursts(np.ones(4000), window, factor=0.0)


class TestPatternWindow:
    @pytest.mark.parametrize("pattern", list(BurstPattern))
    def test_window_shape(self, pattern):
        window = CountWindow(size=10_000, period=1000)
        values = pattern_window(pattern, window, phi=0.999)
        assert len(values) == window.size

    def test_e1_concentrates_in_first_subwindow(self):
        window = CountWindow(size=10_000, period=1000)
        values = pattern_window(BurstPattern.E1, window, phi=0.999)
        tail_threshold = 50_000.0
        hosts = set(np.where(values > tail_threshold)[0] // window.period)
        assert hosts == {0}

    def test_e4_spreads_evenly(self):
        window = CountWindow(size=10_000, period=1000)
        values = pattern_window(BurstPattern.E4, window, phi=0.999)
        hosts = set(np.where(values > 50_000.0)[0] // window.period)
        assert len(hosts) == window.subwindow_count


class TestDatacenter:
    def test_topology_naming(self):
        dc = Datacenter(DatacenterConfig(pods=2, racks_per_pod=2, servers_per_rack=4))
        assert dc.server_count == 16
        assert dc.server_name(0) == "pod0/rack0/srv00"
        assert dc.server_name(15) == "pod1/rack1/srv03"

    def test_stream_ordering_and_sources(self):
        dc = Datacenter(seed=0)
        events = list(dc.probe_stream(500, probes_per_second=1000.0))
        assert len(events) == 500
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        assert all("->" in e.source for e in events)

    def test_locality_tiers(self):
        config = DatacenterConfig(tail_probability=0.0, drop_probability=0.0)
        dc = Datacenter(config, seed=1)
        intra_rack, cross_pod = [], []
        for event in dc.probe_stream(20_000, probes_per_second=1e6):
            src, dst = event.source.split("->")
            if src.split("/")[:2] == dst.split("/")[:2]:
                intra_rack.append(event.value)
            elif src.split("/")[0] != dst.split("/")[0]:
                cross_pod.append(event.value)
        assert np.median(intra_rack) < np.median(cross_pod)

    def test_error_codes_present(self):
        config = DatacenterConfig(drop_probability=0.05)
        dc = Datacenter(config, seed=2)
        events = list(dc.probe_stream(5000, probes_per_second=1e6))
        errors = [e for e in events if e.error_code != OK]
        assert 100 < len(errors) < 500
        assert all(e.value == config.timeout_us for e in errors)

    def test_incident_inflates_latency(self):
        calm = Datacenter(DatacenterConfig(tail_probability=0.0), seed=3)
        stormy = Datacenter(
            DatacenterConfig(tail_probability=0.0),
            incidents=[Incident(pod=0, start=0.0, end=math.inf, factor=10.0)],
            seed=3,
        )
        calm_values = calm.rtt_array(5000, probes_per_second=1e6)
        storm_values = stormy.rtt_array(5000, probes_per_second=1e6)
        assert np.quantile(storm_values, 0.9) > 2 * np.quantile(calm_values, 0.9)

    def test_rtt_array_excludes_errors(self):
        dc = Datacenter(DatacenterConfig(drop_probability=0.2), seed=4)
        values = dc.rtt_array(2000, probes_per_second=1e6)
        assert len(values) < 2000
        assert values.max() < DatacenterConfig().timeout_us

    def test_validation(self):
        with pytest.raises(ValueError):
            DatacenterConfig(pods=0)
        dc = Datacenter(seed=0)
        with pytest.raises(ValueError):
            list(dc.probe_stream(0))
        with pytest.raises(ValueError):
            list(dc.probe_stream(10, probes_per_second=0.0))
