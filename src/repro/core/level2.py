"""Level 2: sliding aggregation of sub-window quantile summaries.

"The logic for aggregating all sub-window summaries is almost identical to
the incremental evaluation for the average ...  to answer l specified
quantiles, there are l instances of the average's state (i.e., sum and
count)" (Section 3.1).  Accumulate and deaccumulate are two additions per
quantile; compute is one division — the static-cost Level-2 stage that
gives QLOVE its scalability.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro import serde
from repro.core.summary import SubWindowSummary

#: State-format version written by :meth:`Level2Aggregator.to_state`.
LEVEL2_STATE_VERSION = 1


class Level2Aggregator:
    """Per-quantile running (sum, count) over live sub-window summaries."""

    __slots__ = ("_phis", "_sums", "_counts")

    def __init__(self, phis: Sequence[float]) -> None:
        self._phis = tuple(phis)
        self._sums: Dict[float, float] = {phi: 0.0 for phi in self._phis}
        self._counts: Dict[float, int] = {phi: 0 for phi in self._phis}

    def accumulate(self, summary: SubWindowSummary) -> None:
        """Fold a newly sealed sub-window's quantiles into the averages.

        Empty summaries (count 0) carry no quantiles and are skipped, so
        idle periods in time-based windows do not drag the average.
        """
        for phi, value in summary.quantiles.items():
            self._sums[phi] += value
            self._counts[phi] += 1

    def deaccumulate(self, summary: SubWindowSummary) -> None:
        """Remove an expiring sub-window's quantiles from the averages."""
        for phi, value in summary.quantiles.items():
            self._sums[phi] -= value
            self._counts[phi] -= 1

    def result(self, phi: float) -> float:
        """Aggregated estimate ``y_a = mean(y_i)`` for one quantile."""
        count = self._counts[phi]
        if count == 0:
            return math.nan
        return self._sums[phi] / count

    def results(self) -> Dict[float, float]:
        """Aggregated estimates for every configured quantile."""
        return {phi: self.result(phi) for phi in self._phis}

    def live_subwindows(self, phi: float) -> int:
        """Number of non-empty summaries currently aggregated for ``phi``."""
        return self._counts[phi]

    def space_variables(self) -> int:
        """Two accumulators (sum, count) per quantile."""
        return 2 * len(self._phis)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The per-quantile running sums/counts, JSON-safe.

        Sums are the literal accumulated floats (shortest-round-trip
        serialised), so a restored aggregator's averages — and every
        future accumulate/deaccumulate — are bit-identical.
        """
        state = serde.header("level2", LEVEL2_STATE_VERSION)
        state["phis"] = [float(phi) for phi in self._phis]
        state["sums"] = serde.pairs(self._sums)
        state["counts"] = serde.pairs(self._counts)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "Level2Aggregator":
        serde.check_state(state, "level2", LEVEL2_STATE_VERSION, "Level-2 state")
        serde.require_fields(state, ("phis", "sums", "counts"), "Level-2 state")
        aggregator = cls([float(phi) for phi in state["phis"]])
        aggregator._sums = {
            phi: float(value)
            for phi, value in serde.mapping_from_pairs(state["sums"]).items()
        }
        aggregator._counts = {
            phi: int(value)
            for phi, value in serde.mapping_from_pairs(state["counts"]).items()
        }
        return aggregator
